"""Prefix-sharing KV cache: radix-tree block index over ref-counted pages.

Production LLM traffic is dominated by shared prefixes — system prompts,
few-shot templates, multi-turn chat histories — and modern engines (vLLM's
automatic prefix caching, SGLang's RadixAttention) skip the prefill of any
prompt prefix whose KV state is already resident.  This module brings that
reuse to the simulator:

* Prompts carry *content* as ``Request.prompt_segments`` — a sequence of
  ``(content_id, length)`` pairs.  :func:`prompt_block_keys` folds them into
  one chained hash per complete ``page_size``-token block, so two prompts
  that share an identical token prefix share identical leading block keys
  (and requests without segments never alias each other).
* :class:`PrefixCache` keeps a radix tree of those blocks.  Each node is one
  KV page held in the :class:`~repro.serving.kv_cache_manager.\
PagedKVCacheManager`'s *shared pool*: a shared page counts once toward
  capacity no matter how many requests reference it, and carries a refcount
  so reclamation can never pull a page out from under a running request.
* Cached-but-unreferenced blocks are reclaimed **LRU, leaves first** under
  page pressure (:meth:`PrefixCache.evict`), which preserves the radix
  invariant that every cached block's prefix chain is also cached.
* With ``demotion=True`` (and a KV precision above 4 bits), eviction gets a
  cheaper first resort: cold unreferenced blocks are **demoted** to the
  4-bit tier (:data:`repro.serving.precision.DEMOTED_KV_BITS`) LRU-first,
  reclaiming most of their footprint while keeping their contents hittable.
  Only when demotion cannot cover the shortfall does true LRU eviction run.
  A hit on a demoted block costs a dequantization pass (charged by the
  engine via ``Request.demoted_hit_tokens``) and promotes the block back to
  full precision when capacity allows; demotion never applies to referenced
  or protected blocks, so running requests always attend over the pages
  they pinned.

Lifecycle, as driven by the scheduler:

1. *Admission* — :meth:`match` walks the tree for the request's longest
   cached prefix (capped at ``prompt_len - 1``: the final prompt token is
   always recomputed to produce the first output logits), and
   :meth:`acquire` pins the matched blocks.  Only the cold suffix is
   prefilled and only its pages are privately allocated.
2. *Prefill completion* — :meth:`insert` publishes the request's complete
   prompt blocks into the tree, converting private pages to shared ones (or
   deduplicating against blocks another request published first).
3. *Finish / preemption* — :meth:`release` drops the request's references.
   The blocks stay cached for future hits; preemption therefore reclaims
   only private pages and can never free a block another request still
   references.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.serving.kv_cache_manager import PagedKVCacheManager
from repro.serving.request import Request

__all__ = ["prompt_block_keys", "PrefixCacheStats", "PrefixCache"]

#: Hash-chain seed for the first block of every prompt (the radix root).
_ROOT_KEY = 0


def prompt_block_keys(request: Request, page_size: int,
                      namespace: Optional[str] = None) -> List[int]:
    """Chained content hashes of the request's *complete* prompt blocks.

    Block ``i`` covers prompt tokens ``[i * page_size, (i + 1) * page_size)``
    and its key hashes the block's content slices together with the previous
    block's key, so equal keys imply equal full prefixes (vLLM-style chained
    block hashing).  The trailing partial block, and requests without
    ``prompt_segments``, produce no keys — their KV state is never shared.
    Content ids and offsets are plain integers, so keys are deterministic
    across processes (no string-hash randomization; namespaces are hashed
    through the same integer chain via their characters' code points).

    ``namespace`` salts the chain's root: multi-model serving passes the
    model name so byte-identical prompts produce disjoint key chains per
    model — KV state encodes model activations, so cross-model block
    adoption would be silently wrong.  ``None`` (the default) keeps the
    historical unsalted chain.
    """
    if request.prompt_segments is None:
        return []
    n_complete = request.prompt_len // page_size
    if n_complete == 0:
        return []
    blocks: List[Tuple[Tuple[int, int, int], ...]] = []
    current: List[Tuple[int, int, int]] = []
    filled = 0
    for content_id, length in request.prompt_segments:
        offset = 0
        while offset < length and len(blocks) < n_complete:
            take = min(page_size - filled, length - offset)
            current.append((content_id, offset, offset + take))
            filled += take
            offset += take
            if filled == page_size:
                blocks.append(tuple(current))
                current = []
                filled = 0
        if len(blocks) >= n_complete:
            break
    keys: List[int] = []
    parent = _ROOT_KEY
    if namespace is not None:
        parent = hash((_ROOT_KEY, tuple(ord(c) for c in namespace)))
    for block in blocks:
        parent = hash((parent, block))
        keys.append(parent)
    return keys


@dataclass
class PrefixCacheStats:
    """Counters of one serving run's prefix-cache behaviour.

    ``hit_tokens`` / ``miss_tokens`` partition every admitted prompt's tokens
    into served-from-cache and cold-prefilled (recompute of generated tokens
    after a preemption is not cache-eligible and is excluded); the ratio is
    the token hit rate.  ``inserted`` / ``deduped`` / ``evicted_pages`` trace
    the shared pool's churn.
    """

    lookups: int = 0
    hit_tokens: int = 0
    miss_tokens: int = 0
    inserted_pages: int = 0
    deduped_pages: int = 0
    evicted_pages: int = 0
    peak_cached_pages: int = 0
    #: Demoted-tier churn: pages squeezed to 4-bit under pressure, pages
    #: restored to full precision, and hit tokens served from demoted blocks
    #: (each of which cost a dequantization pass).
    demoted_pages_total: int = 0
    promoted_pages_total: int = 0
    demoted_hit_tokens: int = 0
    peak_demoted_pages: int = 0

    @property
    def saved_prefill_tokens(self) -> int:
        """Prefill tokens the engine skipped thanks to cache hits."""
        return self.hit_tokens

    @property
    def hit_rate(self) -> float:
        """Token hit rate over all admitted prompt tokens."""
        total = self.hit_tokens + self.miss_tokens
        return 0.0 if total == 0 else self.hit_tokens / total


class _RadixNode:
    """One cached KV block: a node of the prefix radix tree."""

    __slots__ = ("key", "parent", "children", "ref_count", "last_used",
                 "demoted")

    def __init__(self, key: Optional[int], parent: Optional["_RadixNode"]) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "_RadixNode"] = {}
        self.ref_count = 0
        self.last_used = 0
        self.demoted = False


class PrefixCache:
    """Radix-tree index of shared KV blocks over one paged KV manager.

    The cache and the scheduler share one
    :class:`~repro.serving.kv_cache_manager.PagedKVCacheManager`: shared
    pages live in the manager's shared pool and private (per-request) pages
    keep their existing semantics, so ``used_pages`` and the lifetime
    conservation counters cover both populations at all times.
    """

    def __init__(self, kv_manager: PagedKVCacheManager,
                 demotion: bool = False,
                 namespace: Optional[str] = None) -> None:
        self.kv_manager = kv_manager
        self.page_size = kv_manager.page_size
        #: Key-chain salt (see :func:`prompt_block_keys`); multi-model
        #: serving sets it to the model name so no two models' caches can
        #: ever produce — let alone adopt — each other's block keys.
        self.namespace = namespace
        #: Demote cold blocks to 4-bit before evicting.  Silently off on
        #: systems where the demoted tier saves no bytes (native KV4) or
        #: that lack paged KV — demotion would be a pure no-op there.
        self.demotion = demotion and kv_manager.demotion_supported
        self._root = _RadixNode(key=None, parent=None)
        self._nodes: Dict[int, _RadixNode] = {}
        self._request_blocks: Dict[int, List[_RadixNode]] = {}
        self._tick = 0
        self.stats = PrefixCacheStats()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def cached_pages(self) -> int:
        """Blocks currently cached (referenced or not)."""
        return len(self._nodes)

    @property
    def unreferenced_pages(self) -> int:
        """Cached blocks no running request references (eviction candidates)."""
        return sum(1 for node in self._nodes.values() if node.ref_count == 0)

    def evictable_pages(self, protect: Iterable["_RadixNode"] = ()) -> int:
        """Pages :meth:`evict` could reclaim right now, leaves-first.

        A block is reclaimable only if its entire subtree is unreferenced
        (and unprotected) — evicting it must not orphan a referenced
        descendant.  Callers use this to avoid flushing the cache for a
        request that could not be admitted even after a full eviction pass.
        """
        protected = {id(node) for node in protect}

        def count(node: _RadixNode) -> Tuple[int, bool]:
            # (reclaimable pages in subtree, whole subtree reclaimable?)
            total, all_free = 0, True
            for child in node.children.values():
                below, free = count(child)
                total += below
                all_free = all_free and free
            pinned = node.ref_count > 0 or id(node) in protected
            if pinned or not all_free:
                return total, False
            return total + 1, True

        return sum(count(child)[0] for child in self._root.children.values())

    @property
    def total_ref_count(self) -> int:
        """Sum of all block refcounts; zero once every request drained."""
        return sum(node.ref_count for node in self._nodes.values())

    def _touch(self, node: _RadixNode) -> None:
        self._tick += 1
        node.last_used = self._tick

    def _keys(self, request: Request) -> List[int]:
        """Block keys of ``request``, memoized on the request object.

        ``prompt_segments`` is immutable after construction, so the chain
        only needs hashing once per request — cache-aware admission and the
        affinity router probe the same request many times per run.
        """
        cached = getattr(request, "_block_keys_cache", None)
        if cached is not None and cached[0] == (self.page_size, self.namespace):
            return cached[1]
        keys = prompt_block_keys(request, self.page_size, self.namespace)
        request._block_keys_cache = ((self.page_size, self.namespace), keys)
        return keys

    def _walk(self, keys: List[int]) -> List[_RadixNode]:
        nodes: List[_RadixNode] = []
        node = self._root
        for key in keys:
            child = node.children.get(key)
            if child is None:
                break
            nodes.append(child)
            node = child
        return nodes

    @staticmethod
    def _cap_full_match(nodes: List[_RadixNode], prompt_len: int,
                        page_size: int) -> List[_RadixNode]:
        # Never serve the entire prompt from cache: the final prompt token
        # must be recomputed to produce the first output logits, so a fully
        # block-aligned full match gives back its last block.
        while nodes and len(nodes) * page_size >= prompt_len:
            nodes = nodes[:-1]
        return nodes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def match(self, request: Request) -> Tuple[List[_RadixNode], int]:
        """Longest cached prefix of ``request``: (blocks, covered tokens).

        Marks the matched blocks as recently used.  The caller must
        :meth:`acquire` (or abandon) the returned blocks before any eviction
        it triggers itself — :meth:`evict` takes a ``protect`` list for the
        window between match and acquire.
        """
        keys = self._keys(request)
        nodes = self._cap_full_match(self._walk(keys), request.prompt_len,
                                     self.page_size)
        for node in nodes:
            self._touch(node)
        return nodes, len(nodes) * self.page_size

    def lookup_tokens(self, request: Request) -> int:
        """Non-mutating probe: cached prefix tokens a request would hit now.

        Used by the cache-aware admission policy and the prefix-affinity
        router; does not update recency.
        """
        keys = self._keys(request)
        nodes = self._cap_full_match(self._walk(keys), request.prompt_len,
                                     self.page_size)
        return len(nodes) * self.page_size

    # ------------------------------------------------------------------
    # Reference lifecycle
    # ------------------------------------------------------------------
    def acquire(self, request: Request, nodes: List[_RadixNode],
                count_stats: bool = True) -> None:
        """Pin ``nodes`` (the blocks :meth:`match` returned) for ``request``.

        Records the admission in the hit/miss token statistics and stamps the
        request's ``cached_tokens`` / ``shared_kv_pages`` bookkeeping fields.
        ``count_stats=False`` pins without touching the hit/miss counters —
        used for migrated requests, whose uncached tokens arrive via KV
        transfer rather than a cold local prefill and would otherwise skew
        the replica's hit rate.
        """
        for node in nodes:
            node.ref_count += 1
        self._request_blocks[request.request_id] = list(nodes)
        request.cached_tokens = len(nodes) * self.page_size
        request.shared_kv_pages = len(nodes)
        demoted = [node for node in nodes if node.demoted]
        if demoted:
            # Every demoted hit pays a dequantization pass (charged by the
            # engine when the request's prefill starts), whether or not the
            # block can be promoted back to full precision right now.
            request.demoted_hit_tokens = len(demoted) * self.page_size
            self.stats.demoted_hit_tokens += request.demoted_hit_tokens
            self._promote(demoted)
        if count_stats:
            self.stats.lookups += 1
            self.stats.hit_tokens += request.cached_tokens
            self.stats.miss_tokens += request.prompt_len - request.cached_tokens

    def insert(self, request: Request) -> int:
        """Publish the request's (fully prefilled) complete prompt blocks.

        Each block beyond the request's matched prefix either becomes a new
        tree node — one of the request's private pages converts into a shared
        page — or already exists because another request published the same
        content first, in which case the private duplicate page is dropped
        and the shared copy referenced (``deduped_pages``).  Returns the
        number of blocks newly referenced.
        """
        keys = self._keys(request)
        if not keys:
            return 0
        refs = self._request_blocks.setdefault(request.request_id, [])
        node = refs[-1] if refs else self._root
        published = 0
        for index in range(len(refs), len(keys)):
            key = keys[index]
            child = node.children.get(key)
            if child is not None:
                self.kv_manager.drop_private_page(request.request_id)
                self.stats.deduped_pages += 1
                if child.demoted:
                    # The request just prefilled this block at full
                    # precision; the drop above freed a whole page, so the
                    # (at most one-page) promotion always fits.
                    self._promote([child])
            else:
                child = _RadixNode(key=key, parent=node)
                node.children[key] = child
                self._nodes[key] = child
                self.kv_manager.convert_private_to_shared(request.request_id)
                self.stats.inserted_pages += 1
            child.ref_count += 1
            self._touch(child)
            refs.append(child)
            node = child
            published += 1
        request.shared_kv_pages = len(refs)
        self.stats.peak_cached_pages = max(self.stats.peak_cached_pages,
                                           len(self._nodes))
        return published

    def is_pinned(self, request_id: int) -> bool:
        """Whether ``request_id`` already holds block references.

        True for requests whose prefix was pinned ahead of admission (an
        in-flight migration); admission must then reuse those references
        instead of matching again, or the refcounts would double.
        """
        return request_id in self._request_blocks

    def release(self, request_id: int) -> None:
        """Drop the request's block references (finish or preemption).

        The blocks stay cached — unreferenced blocks are exactly the LRU
        eviction candidates — so a departing request costs nothing to its
        prefix siblings.
        """
        for node in self._request_blocks.pop(request_id, []):
            node.ref_count -= 1

    # ------------------------------------------------------------------
    # Demoted tier
    # ------------------------------------------------------------------
    def promotion_page_need(self, nodes: Iterable[_RadixNode]) -> int:
        """Free pages that promoting the demoted blocks in ``nodes`` costs.

        The admission path budgets this alongside the cold suffix's private
        pages so :meth:`acquire`'s promotions are pre-funded.  Zero whenever
        demotion is off or no matched block is demoted.
        """
        count = sum(1 for node in nodes if node.demoted)
        return self.kv_manager.promotion_page_need(count)

    def _promote(self, nodes: List[_RadixNode]) -> None:
        """Restore demoted ``nodes`` to full precision, as capacity allows.

        Promotion consumes the fractional capacity demotion reclaimed; a
        block whose marginal page cost exceeds the free pool simply stays
        demoted (still hittable, still priced as a demoted hit next time).
        """
        for node in nodes:
            if not node.demoted:
                continue
            if self.kv_manager.promotion_page_need(1) > self.kv_manager.free_pages:
                continue
            self.kv_manager.promote_shared_page()
            node.demoted = False
            self.stats.promoted_pages_total += 1

    def _demote(self, pages_needed: int, protected: set) -> int:
        """Demote cold unreferenced blocks, LRU first; returns pages freed.

        Any unreferenced block qualifies, interior or leaf — demotion keeps
        the node in the tree, so the radix invariant is untouched (and a
        referenced block's ancestors are always referenced themselves, so
        no running request can ever attend over a block demoted here).
        Page gains are measured as the allocator's ``free_pages`` delta:
        the demoted tier's savings are fractional and only whole reclaimed
        pages count.
        """
        heap = [(node.last_used, key) for key, node in self._nodes.items()
                if node.ref_count == 0 and not node.demoted
                and id(node) not in protected]
        heapq.heapify(heap)
        reclaimed = 0
        while heap and reclaimed < pages_needed:
            _, key = heapq.heappop(heap)
            node = self._nodes[key]
            if node.ref_count > 0 or node.demoted:
                continue  # stale heap entry
            before = self.kv_manager.free_pages
            self.kv_manager.demote_shared_page()
            node.demoted = True
            self.stats.demoted_pages_total += 1
            reclaimed += self.kv_manager.free_pages - before
        self.stats.peak_demoted_pages = max(self.stats.peak_demoted_pages,
                                            self.kv_manager.demoted_pages)
        return reclaimed

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(self, pages_needed: int,
              protect: Iterable[_RadixNode] = (), *,
              demote_first: bool = True) -> int:
        """Reclaim up to ``pages_needed`` pages from unreferenced blocks.

        With demotion enabled (and ``demote_first``), cold blocks are first
        squeezed to the 4-bit tier LRU-first — they stay hittable — and true
        eviction only covers whatever shortfall remains.  Eviction itself is
        LRU over childless nodes (radix invariant: a cached block's whole
        prefix chain stays cached); evicting a leaf may expose its parent,
        which joins the candidate heap with its own recency.  ``protect``
        shields blocks matched-but-not-yet-acquired during the current
        admission.  Returns the number of pages reclaimed (for a demoted
        block, the whole pages its eviction actually returns).
        """
        if pages_needed <= 0:
            return 0
        protected = {id(node) for node in protect}
        reclaimed = 0
        if self.demotion and demote_first:
            reclaimed = self._demote(pages_needed, protected)
            if reclaimed >= pages_needed:
                return reclaimed

        def evictable(node: _RadixNode) -> bool:
            return (node.ref_count == 0 and not node.children
                    and id(node) not in protected)

        heap = [(node.last_used, key) for key, node in self._nodes.items()
                if evictable(node)]
        heapq.heapify(heap)
        while heap and reclaimed < pages_needed:
            last_used, key = heapq.heappop(heap)
            node = self._nodes.get(key)
            if node is None or node.last_used != last_used or not evictable(node):
                continue  # stale heap entry
            parent = node.parent
            before = self.kv_manager.free_pages
            self._evict_node(node)
            reclaimed += self.kv_manager.free_pages - before
            if parent is not None and parent is not self._root and evictable(parent):
                heapq.heappush(heap, (parent.last_used, parent.key))
        return reclaimed

    def _evict_node(self, node: _RadixNode) -> None:
        node.parent.children.pop(node.key)
        del self._nodes[node.key]
        self.kv_manager.release_shared_page(demoted=node.demoted)
        self.stats.evicted_pages += 1

    def clear(self) -> int:
        """Evict every unreferenced block (e.g. to drain after a run).

        Bypasses the demotion tier — draining means the pages must actually
        come back, not shrink.
        """
        return self.evict(len(self._nodes), demote_first=False)
