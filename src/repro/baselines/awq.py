"""AWQ-style activation-aware weight scaling (Lin et al., 2024).

AWQ protects *salient* weight channels — the columns multiplied by large
activations — by scaling them up before quantization (and scaling the
activation down correspondingly), searching the migration strength ``α`` per
layer to minimise the layer output error.  The paper's Table 2 uses AWQ both
as the W4A16 g128 baseline and as a weight quantizer inside the W4A8KV4
setting; both are supported here through ``act_bits``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.quantized import ActQuantSpec, FakeQuantLinear, W4A8Linear
from repro.model.transformer import ForwardConfig, TransformerModel
from repro.quant.dtypes import UINT4
from repro.quant.kv_quant import KVQuantConfig
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["search_awq_scales", "quantize_awq"]

_EPS = 1e-5


def _group_fake_quant(weight: np.ndarray, group_size: Optional[int]) -> np.ndarray:
    granularity = Granularity.PER_GROUP if group_size else Granularity.PER_CHANNEL
    return fake_quantize(weight, UINT4, granularity=granularity, symmetric=False,
                         group_size=group_size)


def search_awq_scales(
    weight: np.ndarray,
    calib_inputs: np.ndarray,
    group_size: Optional[int] = 128,
    grid: int = 8,
) -> tuple[np.ndarray, float]:
    """Search the AWQ migration strength ``α`` and return the best scales.

    ``s_j = act_absmax_j^α`` (normalised to geometric mean 1); the layer output
    error ``‖X W^T − (X/s) Q(W·s)^T‖²`` is minimised over a grid of α.
    Returns ``(scales, best_alpha)``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    calib_inputs = np.asarray(calib_inputs, dtype=np.float64)
    act_absmax = np.maximum(np.max(np.abs(calib_inputs), axis=0), _EPS)
    ref = calib_inputs @ weight.T

    best_scales = np.ones(weight.shape[1])
    best_alpha = 0.0
    best_err = np.inf
    for alpha in np.linspace(0.0, 1.0, grid):
        scales = act_absmax ** alpha
        scales = scales / np.exp(np.mean(np.log(np.maximum(scales, _EPS))))
        scales = np.maximum(scales, _EPS)
        w_q = _group_fake_quant(weight * scales[None, :], group_size)
        out = (calib_inputs / scales[None, :]) @ w_q.T
        err = float(np.mean((ref - out) ** 2))
        if err < best_err:
            best_err, best_alpha, best_scales = err, float(alpha), scales
    return best_scales, best_alpha


def quantize_awq(
    model: TransformerModel,
    calibration_batches: List[np.ndarray],
    act_bits: int = 16,
    kv_bits: int = 16,
    group_size: Optional[int] = 128,
    grid: int = 8,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize weights to 4 bits with AWQ scaling.

    ``act_bits=16`` reproduces the W4A16 g128 row of Table 2; ``act_bits=8``
    with ``kv_bits=4`` reproduces the "W4A8KV4 AWQ" row (AWQ used as the
    weight quantizer in QServe's precision).
    """
    work = model.clone()
    recorder = work.run_calibration(calibration_batches)
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=True))

    for name, layer in work.named_linears().items():
        weight = np.asarray(layer.weight, dtype=np.float64)
        in_features = weight.shape[1]
        g = group_size if (group_size and in_features % group_size == 0) else None
        samples = recorder.input_samples(name)
        scales, _ = search_awq_scales(weight, samples, group_size=g, grid=grid)
        scaled_weight = weight * scales[None, :]
        if act_bits == 8:
            new_layer = W4A8Linear(scaled_weight, name=name, group_size=g,
                                   input_scale=scales)
        else:
            w_q = _group_fake_quant(scaled_weight, g)
            new_layer = FakeQuantLinear(w_q, name=name,
                                        act_spec=ActQuantSpec(bits=act_bits),
                                        input_scale=scales)
        work.set_linear(name, new_layer)
    return work, fwd
