"""End-to-end QoQ quantization pipeline.

``QoQQuantizer`` composes the techniques of Section 4 into the W4A8KV4
recipe:

1. calibrate the FP model (activation statistics, post-RoPE Keys);
2. **SmoothAttention** — fold per-channel Key smoothing into the Q/K
   projections;
3. per linear layer:
   a. **block-input rotation** (Hadamard) for input modules,
   b. **block-output smoothing** for output modules,
   c. **activation-aware channel reordering** (group quantization only),
   d. **weight clipping** by output-MSE grid search (block-output objective
      for the query/key projections),
   e. **progressive group quantization** and replacement of the layer with an
      integer-arithmetic :class:`~repro.model.quantized.W4A8Linear`
      (or :class:`~repro.model.quantized.W8A8Linear` for 8-bit stages);
4. return the quantized model together with the
   :class:`~repro.model.transformer.ForwardConfig` that enables per-head
   dynamic KV4 quantization at inference time.

Every step can be disabled through :class:`QoQConfig`, which is how the
Figure 16 ablation is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.model.layers import Linear
from repro.model.quantized import ActQuantSpec, FakeQuantLinear, W4A8Linear, W8A8Linear
from repro.model.transformer import (
    ForwardConfig,
    INPUT_MODULE_SUFFIXES,
    OUTPUT_MODULE_SUFFIXES,
    TransformerModel,
)
from repro.qoq.clipping import clip_candidates, search_clip_ratio
from repro.qoq.reorder import compute_reorder_permutation
from repro.qoq.rotation import rotation_matrix_for
from repro.qoq.smooth_attention import apply_smooth_attention, compute_smooth_attention_scales
from repro.qoq.smoothing import compute_smoothing_scales
from repro.quant.kv_quant import KVQuantConfig
from repro.quant.progressive import (
    legacy_two_level_dequantize,
    legacy_two_level_quantize,
    progressive_quantize,
)

__all__ = ["QoQConfig", "QoQResult", "QoQQuantizer", "quantize_model_qoq"]


@dataclass(frozen=True)
class QoQConfig:
    """Configuration of the QoQ pipeline.

    The defaults correspond to the paper's "QoQ W4A8KV4 g128" setting (adjust
    ``group_size`` to the model width when quantizing the CPU-scale presets).
    """

    weight_bits: int = 4
    act_bits: int = 8
    kv_bits: int = 4
    group_size: Optional[int] = 128
    enable_rotation: bool = True
    enable_smoothing: bool = True
    enable_smooth_attention: bool = True
    enable_reorder: bool = True
    enable_clipping: bool = True
    #: Use progressive (two-level integer) group quantization; disabling falls
    #: back to the legacy FP16-group-scale scheme (Figure 6, bottom), used only
    #: for comparison.
    enable_progressive: bool = True
    protective_range: bool = True
    smooth_attention_alpha: float = 0.5
    smoothing_alpha: float = 0.1
    clip_min_ratio: float = 0.75
    clip_grid_points: int = 5
    rotation_seed: int = 0

    def __post_init__(self) -> None:
        if self.weight_bits not in (4, 8, 16):
            raise ValueError("weight_bits must be 4, 8 or 16")
        if self.act_bits not in (8, 16):
            raise ValueError("QoQ activations are 8-bit (or 16 for debugging)")
        if self.kv_bits not in (4, 8, 16):
            raise ValueError("kv_bits must be 4, 8 or 16")

    @property
    def precision_name(self) -> str:
        tag = f"W{self.weight_bits}A{self.act_bits}KV{self.kv_bits}"
        if self.group_size:
            tag += f" g{self.group_size}"
        return tag


@dataclass
class QoQResult:
    """Quantized model plus the calibration artefacts the pipeline produced."""

    model: TransformerModel
    forward_config: ForwardConfig
    config: QoQConfig
    clip_ratios: Dict[str, float] = field(default_factory=dict)
    smoothing_scales: Dict[str, np.ndarray] = field(default_factory=dict)
    reorder_permutations: Dict[str, np.ndarray] = field(default_factory=dict)
    smooth_attention_scales: Dict[int, np.ndarray] = field(default_factory=dict)

    def weight_memory_bytes(self) -> int:
        """Total quantized-weight footprint of the transformer blocks."""
        total = 0
        for layer in self.model.named_linears().values():
            if isinstance(layer, W4A8Linear):
                total += layer.pqw.memory_bytes()
            elif isinstance(layer, W8A8Linear):
                total += layer.qweight.size + layer.weight_scales.size * 2
            else:
                weight = layer.weight
                total += weight.size * 2
        return total


def _is_input_module(name: str) -> bool:
    return name.endswith(INPUT_MODULE_SUFFIXES)


def _is_output_module(name: str) -> bool:
    return name.endswith(OUTPUT_MODULE_SUFFIXES)


class QoQQuantizer:
    """Calibrates and quantizes a :class:`TransformerModel` with QoQ."""

    def __init__(self, config: Optional[QoQConfig] = None) -> None:
        self.config = config or QoQConfig()

    # ------------------------------------------------------------------
    def _effective_group_size(self, in_features: int) -> Optional[int]:
        """Clamp the configured group size to the layer width."""
        g = self.config.group_size
        if g is None:
            return None
        if in_features % g == 0:
            return g
        # Fall back to the largest divisor of in_features that is <= g.
        for candidate in range(min(g, in_features), 0, -1):
            if in_features % candidate == 0:
                return candidate
        return None

    def _quantize_weight_fn(self, group_size: Optional[int]):
        """Return ``f(weight, clip_ratio) -> dequantized weight`` for clip search."""
        cfg = self.config

        def quantize(weight: np.ndarray, clip_ratio: float) -> np.ndarray:
            clipped = _clip_weight(weight, clip_ratio, group_size)
            if cfg.weight_bits == 8:
                layer = W8A8Linear(clipped)
                return layer.weight
            if cfg.enable_progressive:
                pqw = progressive_quantize(clipped, group_size=group_size,
                                           protective_range=cfg.protective_range)
                from repro.quant.progressive import progressive_dequantize
                return progressive_dequantize(pqw)
            tlw = legacy_two_level_quantize(clipped, group_size=group_size or clipped.shape[1])
            return legacy_two_level_dequantize(tlw)

        return quantize

    # ------------------------------------------------------------------
    def quantize(self, model: TransformerModel,
                 calibration_batches: List[np.ndarray]) -> QoQResult:
        cfg = self.config
        work = model.clone()
        result = QoQResult(
            model=work,
            forward_config=ForwardConfig(
                kv_quant=KVQuantConfig(bits=cfg.kv_bits, per_head=True)),
            config=cfg,
        )

        # Step 1: calibration on the FP model.
        recorder = work.run_calibration(calibration_batches)

        # Step 2: SmoothAttention — fold Key smoothing into Q/K projections.
        if cfg.enable_smooth_attention and cfg.kv_bits < 16:
            for layer_idx, block in enumerate(work.blocks):
                keys = recorder.stacked_keys(layer_idx)
                scales = compute_smooth_attention_scales(
                    keys, alpha=cfg.smooth_attention_alpha)
                new_q, new_k = apply_smooth_attention(
                    block.q_proj.weight, block.k_proj.weight, scales,
                    gqa_ratio=work.config.gqa_ratio)
                block.q_proj = block.q_proj.replace_weight(new_q)
                block.k_proj = block.k_proj.replace_weight(new_k)
                result.smooth_attention_scales[layer_idx] = scales

        # Step 3: per-linear transforms + weight quantization.
        candidates = np.linspace(1.0, cfg.clip_min_ratio, cfg.clip_grid_points)
        for layer_idx, block in enumerate(work.blocks):
            block_linears = block.linears()
            for suffix, layer in block_linears.items():
                full_name = f"layers.{layer_idx}.{suffix}"
                weight = np.asarray(layer.weight, dtype=np.float64)
                samples = recorder.input_samples(full_name)

                rotation = None
                input_scale = None
                permutation = None

                if cfg.enable_rotation and _is_input_module(suffix):
                    rotation = rotation_matrix_for(weight.shape[1],
                                                   seed=cfg.rotation_seed)
                    weight = weight @ rotation
                    samples = samples @ rotation

                if cfg.enable_smoothing and _is_output_module(suffix):
                    act_absmax = np.max(np.abs(samples), axis=0)
                    input_scale = compute_smoothing_scales(
                        act_absmax, weight, alpha=cfg.smoothing_alpha)
                    weight = weight * input_scale[None, :]
                    samples = samples / input_scale[None, :]
                    result.smoothing_scales[full_name] = input_scale

                group_size = self._effective_group_size(weight.shape[1])
                if cfg.enable_reorder and group_size is not None:
                    act_absmax = np.max(np.abs(samples), axis=0)
                    permutation = compute_reorder_permutation(act_absmax)
                    weight = weight[:, permutation]
                    samples = samples[:, permutation]
                    result.reorder_permutations[full_name] = permutation

                clip_ratio = 1.0
                if cfg.enable_clipping and cfg.weight_bits < 16:
                    objective = None
                    if suffix in ("q_proj", "k_proj"):
                        # Block-output objective: error of the attention scores
                        # produced with the partner projection held fixed.
                        partner = block_linears["k_proj" if suffix == "q_proj"
                                                else "q_proj"]
                        partner_out = recorder.input_samples(full_name) @ partner.weight.T
                        objective = _score_objective(partner_out,
                                                     work.config.head_dim)
                    clip_ratio, _ = search_clip_ratio(
                        weight, samples,
                        candidates=candidates,
                        objective=objective,
                        quantizer=self._quantize_weight_fn(group_size),
                    )
                result.clip_ratios[full_name] = clip_ratio

                new_layer = self._build_layer(
                    full_name, weight, clip_ratio, group_size,
                    rotation=rotation, input_scale=input_scale,
                    permutation=permutation)
                work.set_linear(full_name, new_layer)

        return result

    # ------------------------------------------------------------------
    def _build_layer(self, name: str, weight: np.ndarray, clip_ratio: float,
                     group_size: Optional[int],
                     rotation: Optional[np.ndarray],
                     input_scale: Optional[np.ndarray],
                     permutation: Optional[np.ndarray]):
        cfg = self.config
        clipped = _clip_weight(weight, clip_ratio, group_size)
        act_spec = ActQuantSpec(bits=cfg.act_bits)

        if cfg.weight_bits == 16:
            return FakeQuantLinear(weight, name=name, act_spec=act_spec,
                                   input_scale=input_scale, rotation=rotation,
                                   permutation=permutation)
        if cfg.weight_bits == 8:
            return W8A8Linear(clipped, name=name, input_scale=input_scale,
                              rotation=rotation, permutation=permutation)
        if cfg.enable_progressive:
            pqw = progressive_quantize(clipped, group_size=group_size,
                                       protective_range=cfg.protective_range)
            return W4A8Linear(pqw=pqw, name=name, input_scale=input_scale,
                              rotation=rotation, permutation=permutation)
        tlw = legacy_two_level_quantize(clipped,
                                        group_size=group_size or clipped.shape[1])
        return FakeQuantLinear(legacy_two_level_dequantize(tlw), name=name,
                               act_spec=act_spec, input_scale=input_scale,
                               rotation=rotation, permutation=permutation)


def _clip_weight(weight: np.ndarray, clip_ratio: float,
                 group_size: Optional[int]) -> np.ndarray:
    """Clamp each quantization group's range to ``clip_ratio * [min, max]``."""
    if clip_ratio >= 1.0:
        return weight
    weight = np.asarray(weight, dtype=np.float64)
    out_ch, in_ch = weight.shape
    if group_size and in_ch % group_size == 0:
        grouped = weight.reshape(out_ch, in_ch // group_size, group_size)
        lo = grouped.min(axis=2, keepdims=True) * clip_ratio
        hi = grouped.max(axis=2, keepdims=True) * clip_ratio
        return np.clip(grouped, lo, hi).reshape(out_ch, in_ch)
    lo = weight.min(axis=1, keepdims=True) * clip_ratio
    hi = weight.max(axis=1, keepdims=True) * clip_ratio
    return np.clip(weight, lo, hi)


def _score_objective(partner_out: np.ndarray, head_dim: int):
    """Objective on attention scores (block-output MSE proxy for q/k projections).

    ``partner_out`` holds the partner projection's outputs on the calibration
    samples.  The error of a candidate quantization is measured on the
    per-head dot products ``q_h · k_h`` between every pair of calibration
    tokens, which is the part of the block output the query/key projections
    control.  Head counts may differ (GQA); the KV heads are expanded to match.
    """
    partner_out = np.asarray(partner_out, dtype=np.float64)
    n_samples = partner_out.shape[0]
    partner_heads = partner_out.shape[1] // head_dim
    partner = partner_out.reshape(n_samples, partner_heads, head_dim)

    def objective(ref: np.ndarray, got: np.ndarray) -> float:
        diff = (ref - got).reshape(n_samples, -1, head_dim)
        ref_heads = diff.shape[1]
        if ref_heads != partner_heads:
            ratio = max(ref_heads, partner_heads) // min(ref_heads, partner_heads)
            if ref_heads < partner_heads:
                diff = np.repeat(diff, ratio, axis=1)
            else:
                expanded = np.repeat(partner, ratio, axis=1)
                return float(np.mean(
                    np.einsum("nhd,mhd->nmh", diff, expanded) ** 2))
        return float(np.mean(np.einsum("nhd,mhd->nmh", diff, partner) ** 2))

    return objective


def quantize_model_qoq(model: TransformerModel,
                       calibration_batches: List[np.ndarray],
                       config: Optional[QoQConfig] = None) -> QoQResult:
    """Convenience wrapper: quantize ``model`` with the QoQ pipeline."""
    return QoQQuantizer(config).quantize(model, calibration_batches)
