"""Multi-replica cluster simulator: routers + aggregated serving results.

One :class:`repro.serving.engine.ServingEngine` models a single model
replica (possibly tensor-parallel across several GPUs).  Production
deployments run many such replicas behind a load balancer; this module
simulates that tier.  :class:`ClusterEngine` drives N replica
:class:`~repro.serving.engine.EngineStepper` loops against one shared clock:
requests are dispatched in arrival order, every replica is advanced to the
arrival instant first, and the pluggable :class:`Router` then picks a
replica using the queue state *at that moment* — exactly the information a
real load balancer has.

Routers shipped by default:

* ``round-robin`` — cyclic assignment, blind to load.  The baseline every
  cluster study compares against.
* ``least-outstanding`` — the replica with the fewest unfinished requests;
  the classic least-outstanding-requests (LOR) balancer.
* ``shortest-queue`` — the replica owing the fewest pending prefill tokens,
  a length-aware refinement of LOR for LLM serving where a single 3k-token
  prompt costs far more than several short ones.
* ``prefix-affinity`` — cache-locality routing for prefix-cached clusters:
  probe every replica's prefix cache for the request's prompt and prefer the
  warmest one (load-penalized), keeping same-prefix sessions on the replica
  that already holds their KV blocks; cold requests stick by session so a
  conversation lands on one replica from its first turn.

Per-replica :class:`~repro.serving.engine.ServingResult`s are aggregated
into a :class:`ClusterResult` with cluster-level throughput (makespan-based),
merged latency percentiles and SLO goodput.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.gpu.specs import GPUSpec
from repro.model.config import ModelConfig
from repro.serving.engine import EngineStepper, ServingEngine, ServingResult
from repro.serving.metrics import ServingMetrics
from repro.serving.parallel import ParallelConfig
from repro.serving.policies import SchedulingConfig
from repro.serving.precision import SystemConfig
from repro.serving.request import Request, Workload

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "ShortestQueueRouter",
    "PrefixAffinityRouter",
    "ROUTERS",
    "get_router",
    "ClusterResult",
    "ClusterEngine",
]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class Router(abc.ABC):
    """Chooses the replica each arriving request is dispatched to.

    ``route`` sees the replica steppers with their simulation advanced to
    the request's arrival time, so queue-state views
    (:attr:`EngineStepper.outstanding_requests`,
    :attr:`EngineStepper.pending_prefill_tokens`) reflect what a load
    balancer would observe at that instant.  Ties break toward the lowest
    replica index, keeping every router deterministic.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        """Index of the replica that should serve ``request``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cyclic assignment, blind to per-replica load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastOutstandingRouter(Router):
    """Send to the replica with the fewest unfinished requests."""

    name = "least-outstanding"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].outstanding_requests, i))


class ShortestQueueRouter(Router):
    """Send to the replica owing the fewest pending prefill tokens.

    Counting tokens instead of requests makes the router robust to
    heavy-tailed prompt lengths: one 3k-token prompt weighs as much as many
    short chats.  Outstanding requests break ties so decode-heavy backlogs
    still register.
    """

    name = "shortest-queue"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_prefill_tokens,
                                  replicas[i].outstanding_requests, i))


class PrefixAffinityRouter(Router):
    """Send same-prefix sessions to the replica holding their KV cache.

    Each arriving request probes every replica's prefix cache
    (:meth:`EngineStepper.cached_prefix_tokens`) and is routed to the
    replica with the best ``hit_tokens - load_penalty_tokens * outstanding``
    score, so cache affinity wins until the warm replica's queue grows
    ``load_penalty_tokens`` worth of backlog per waiting request.  Requests
    that hit nowhere (first turns, caching disabled) are routed
    least-outstanding but *stick* by session key — the first two prompt
    segments, i.e. (system prompt, first user message) — so a session's
    later turns find their history where the first turn built it.
    """

    name = "prefix-affinity"

    def __init__(self, load_penalty_tokens: int = 512) -> None:
        if load_penalty_tokens < 0:
            raise ValueError("load_penalty_tokens must be non-negative")
        self.load_penalty_tokens = load_penalty_tokens
        self._sticky: Dict[tuple, int] = {}

    @staticmethod
    def _session_key(request: Request) -> Optional[tuple]:
        if not request.prompt_segments:
            return None
        return tuple(request.prompt_segments[:2])

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        probes = [replica.cached_prefix_tokens(request) for replica in replicas]
        key = self._session_key(request)
        if max(probes) > 0:
            index = min(range(len(replicas)),
                        key=lambda i: (-(probes[i] - self.load_penalty_tokens
                                         * replicas[i].outstanding_requests), i))
        elif key is not None and key in self._sticky:
            index = self._sticky[key]
        else:
            index = min(range(len(replicas)),
                        key=lambda i: (replicas[i].outstanding_requests, i))
        if key is not None:
            self._sticky[key] = index
        return index


ROUTERS: Dict[str, Type[Router]] = {
    cls.name: cls
    for cls in (RoundRobinRouter, LeastOutstandingRouter, ShortestQueueRouter,
                PrefixAffinityRouter)
}


def get_router(name: str) -> Router:
    """Instantiate a router by registry name."""
    try:
        return ROUTERS[name]()
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise KeyError(f"unknown router {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Cluster result
# ----------------------------------------------------------------------
@dataclass
class ClusterResult:
    """Aggregate outcome of serving one workload on an N-replica cluster."""

    replica_results: List[ServingResult]
    #: Number of requests each replica was routed.
    requests_per_replica: List[int]
    #: Cluster-wide latency metrics (union of all replicas' finished requests).
    metrics: ServingMetrics = field(default_factory=ServingMetrics)

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def total_time_s(self) -> float:
        """Cluster makespan: the clock of the last replica to finish."""
        return max((r.total_time_s for r in self.replica_results), default=0.0)

    @property
    def generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.replica_results)

    @property
    def prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.replica_results)

    @property
    def num_finished(self) -> int:
        return sum(r.num_finished for r in self.replica_results)

    @property
    def num_unserved(self) -> int:
        return sum(r.num_unserved for r in self.replica_results)

    @property
    def num_preemptions(self) -> int:
        return sum(r.num_preemptions for r in self.replica_results)

    @property
    def generation_throughput(self) -> float:
        """Cluster generated tokens per second over the makespan."""
        total = self.total_time_s
        return 0.0 if total == 0 else self.generated_tokens / total

    @property
    def saved_prefill_tokens(self) -> int:
        """Prefill tokens skipped via prefix-cache hits across all replicas."""
        return sum(r.saved_prefill_tokens for r in self.replica_results)

    @property
    def cache_hit_rate(self) -> float:
        """Cluster-wide prefix-cache token hit rate (0 when caching is off)."""
        hits = sum(r.prefix_stats.hit_tokens for r in self.replica_results
                   if r.prefix_stats is not None)
        misses = sum(r.prefix_stats.miss_tokens for r in self.replica_results
                     if r.prefix_stats is not None)
        total = hits + misses
        return 0.0 if total == 0 else hits / total

    def slo_goodput(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """Cluster requests per second completed within the latency SLO."""
        return self.metrics.slo_goodput(ttft_slo_s, tpot_slo_s,
                                        self.total_time_s)


# ----------------------------------------------------------------------
# Cluster engine
# ----------------------------------------------------------------------
class ClusterEngine:
    """N identical replica engines behind a pluggable router.

    Every replica shares the same (model, GPU, system, parallel) engine —
    the cost model is stateless — but owns its scheduler, KV cache and
    clock.  Replicas are independent once requests are assigned, so the
    shared-clock simulation only has to synchronise at routing decisions:
    before each dispatch all replicas advance to the request's arrival time,
    giving the router an honest view of queue depths at that instant.
    """

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 num_replicas: int, max_seq_len: int = 2048,
                 parallel: Optional[ParallelConfig] = None) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self.engine = ServingEngine(model, gpu, system, max_seq_len=max_seq_len,
                                    parallel=parallel)

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster (replicas x TP degree)."""
        return self.num_replicas * self.engine.tp_degree

    def serve(self, workload: Workload,
              router: Union[str, Router] = "least-outstanding",
              max_num_seqs: Optional[int] = None,
              scheduling: Optional[SchedulingConfig] = None) -> ClusterResult:
        """Serve ``workload`` across the cluster and aggregate the results.

        ``router`` is a registry name or a :class:`Router` instance (fresh
        instances keep round-robin state per run).  ``max_num_seqs`` and
        ``scheduling`` apply per replica, exactly as in
        :meth:`ServingEngine.serve`.
        """
        if isinstance(router, str):
            router = get_router(router)
        replicas = [EngineStepper(self.engine, scheduling=scheduling,
                                  max_num_seqs=max_num_seqs)
                    for _ in range(self.num_replicas)]
        assignments: List[List[Request]] = [[] for _ in replicas]

        for request in sorted(workload.requests,
                              key=lambda r: (r.arrival_time, r.request_id)):
            for replica in replicas:
                replica.run_until(request.arrival_time)
            index = router.route(request, replicas)
            replicas[index].submit(request)
            assignments[index].append(request)
        for replica in replicas:
            replica.run()

        results = [replica.result(Workload(requests=assigned))
                   for replica, assigned in zip(replicas, assignments)]
        merged = ServingMetrics(
            requests=[m for r in results if r.metrics is not None
                      for m in r.metrics.requests])
        return ClusterResult(
            replica_results=results,
            requests_per_replica=[len(a) for a in assignments],
            metrics=merged,
        )
