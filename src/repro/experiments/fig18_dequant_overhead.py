"""Figure 18 — main-loop dequantization overhead of quantized GEMMs.

For W8A8, W4A16, W4A4 (Atom) and QServe's per-group W4A8, reports the fraction
of main-loop compute time spent on CUDA-core dequantization as the batch size
grows, plus the achieved speed relative to an ideal kernel without any
dequantization — the two quantities plotted in Figure 18.  Also exposes the
per-iteration instruction accounting behind Figure 5.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import A100, GEMM_PRECISIONS, GPUSpec, gemm_latency

__all__ = ["run", "run_mainloop_composition"]

_CONFIGS = ("w8a8", "w4a16", "w4a4-atom", "w4a8-qserve-grp")


def run(gpu: GPUSpec = A100, n: int = 4096, k: int = 4096,
        batches: Sequence[int] = (8, 16, 32, 64, 128)) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig18",
        title=f"Dequantization overhead in the GEMM main loop ({gpu.name}, {n}x{k})",
        headers=["Batch", *[f"{c} overhead %" for c in _CONFIGS]],
        notes="Overhead = CUDA-core dequantization time / total main-loop compute time.",
    )
    for m in batches:
        row = []
        for config in _CONFIGS:
            lat = gemm_latency(gpu, m, n, k, GEMM_PRECISIONS[config])
            row.append(100.0 * lat.dequant_overhead)
        report.add_row(m, *row)
    return report


def run_mainloop_composition(gpu: GPUSpec = A100, m: int = 64, n: int = 4096,
                             k: int = 4096) -> ExperimentReport:
    """Figure 5 companion: absolute latency breakdown of each GEMM dataflow."""
    report = ExperimentReport(
        experiment_id="fig5",
        title=f"GEMM latency breakdown at m={m} ({gpu.name}, {n}x{k})",
        headers=["Dataflow", "Tensor core (us)", "CUDA core dequant (us)",
                 "Memory (us)", "Total (us)"],
    )
    for config in ("fp16", "w8a8", "w4a16", "w4a4-atom", "w4a8-qserve-chn",
                   "w4a8-qserve-grp"):
        lat = gemm_latency(gpu, m, n, k, GEMM_PRECISIONS[config])
        report.add_row(config, lat.tensor_core * 1e6, lat.cuda_core * 1e6,
                       lat.memory * 1e6, lat.total * 1e6)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.1f}"))
    print(run_mainloop_composition().to_text("{:.1f}"))
