"""Benchmark regenerating Figure 16 (QoQ technique ablation)."""

from repro.experiments import fig16_ablation


def test_fig16_ablation(benchmark, accuracy_setup):
    report = benchmark.pedantic(fig16_ablation.run,
                                kwargs={"setup": accuracy_setup},
                                rounds=1, iterations=1)
    print()
    print(report.to_text("{:.3f}"))
    throughput = report.column("Throughput (tok/s)")
    kv_mem = report.column("KV mem/token (KB)")
    weight_mem = report.column("Weight mem (GB)")
    # 4-bit weights shrink weight memory and raise throughput; 4-bit KV halves
    # the per-token KV footprint and raises throughput again.
    assert weight_mem[1] < weight_mem[0] / 1.8
    assert throughput[1] > throughput[0]
    assert kv_mem[4] < kv_mem[3] / 1.9
    assert throughput[4] > throughput[3]
