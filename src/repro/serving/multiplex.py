"""Multi-model multiplexing: model residency and swap pricing on shared fleets.

A production fleet rarely serves one model.  The JSONL trace schema
(:mod:`repro.serving.traffic`) already tags each request with a ``model``
name; this module supplies the missing layers that let several models share
one replica pool:

* :class:`MultiplexConfig` declares the model set a fleet serves, the host
  link weights cross when a model is swapped in, and how many models one
  replica may keep resident at once.
* :class:`ModelResidency` is the per-replica residency manager: it accounts
  weight memory (plus activation workspace) for every resident
  :class:`~repro.model.config.ModelConfig` against GPU HBM, evicts the
  least-recently-used model when a swap-in would not fit, and prices each
  swap-in exactly like an autoscaler cold start
  (:func:`repro.serving.autoscaler.weight_transfer_s`: weights over
  ``host_link``, charged on the shared clock as a replica-busy window).
* :class:`MultiplexReport` aggregates what happened — per-replica swap
  counts and busy-seconds, final resident sets and the HBM accounting the
  invariant tests check.

The memory model is a static carve: the residency budget reserves room for
the ``max_resident_models`` largest models (weights + activation
workspace), and the remaining HBM is split evenly into one KV page pool per
model.  A swapped-out model's KV pool (and therefore its prefix cache)
stays reserved and warm — only the weights leave the GPU — so at every
instant ``resident weights + workspace + all KV pools <= HBM capacity``
holds by construction.

The routing and serving side lives in :mod:`repro.serving.cluster`
(``ModelAwareRouter`` and ``ClusterEngine.serve(multiplex=...)``): this
module holds only the residency/accounting state so the cluster can import
it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.specs import GPUSpec, InterconnectSpec, PCIE_GEN4
from repro.model.config import ModelConfig
from repro.serving.autoscaler import weight_transfer_s

__all__ = [
    "MultiplexConfig",
    "ModelResidency",
    "ResidencySnapshot",
    "MultiplexReport",
]


@dataclass(frozen=True)
class MultiplexConfig:
    """Policy knobs of a multi-model shared fleet.

    ``models`` is the full set a fleet may serve (requests naming anything
    else are rejected at submit time).  ``max_resident_models`` caps how
    many of them one replica keeps resident simultaneously; ``None`` means
    all of them.  ``preload`` names the models warm on every replica at
    time zero (default: the first model, matching a fleet booted for its
    primary model); preloaded weights are not charged.

    A swap-in costs ``provision_s`` plus the model's weights over
    ``host_link`` — the same formula as an autoscaler cold start.
    Swap-*out* is free: serving weights are read-only, so eviction just
    drops them.

    ``queue_cost_s`` is the router's exchange rate between swap cost and
    queue delay: a candidate replica's score is its swap-in cost plus
    ``queue_cost_s`` per outstanding request, and the lowest score wins
    (see ``ModelAwareRouter``).
    """

    models: Tuple[ModelConfig, ...]
    max_resident_models: Optional[int] = None
    preload: Optional[Tuple[str, ...]] = None
    host_link: InterconnectSpec = PCIE_GEN4
    provision_s: float = 0.0
    queue_cost_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("multiplex needs at least one model")
        names = [m.name for m in self.models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names: {names}")
        if self.max_resident_models is not None \
                and not 1 <= self.max_resident_models <= len(self.models):
            raise ValueError("max_resident_models must be in "
                             f"[1, {len(self.models)}]")
        if self.provision_s < 0:
            raise ValueError("provision_s must be non-negative")
        if self.queue_cost_s < 0:
            raise ValueError("queue_cost_s must be non-negative")
        if self.preload is not None:
            unknown = [n for n in self.preload if n not in names]
            if unknown:
                raise ValueError(f"preload names unknown models: {unknown}")
            if len(self.preload) > self.resident_limit:
                raise ValueError("preload exceeds max_resident_models")

    @property
    def resident_limit(self) -> int:
        """Models one replica may keep resident at once."""
        if self.max_resident_models is None:
            return len(self.models)
        return self.max_resident_models

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.models)

    @property
    def default_model(self) -> str:
        """Model served to requests without a ``model`` tag."""
        if self.preload:
            return self.preload[0]
        return self.models[0].name

    def preload_names(self) -> Tuple[str, ...]:
        return self.preload if self.preload is not None \
            else (self.models[0].name,)


@dataclass
class ResidencySnapshot:
    """Final state of one replica's residency manager (JSON-friendly)."""

    resident: List[str]
    swap_ins: int
    swap_outs: int
    swap_in_s: float
    swap_ins_by_model: Dict[str, int]
    weight_budget_bytes: float
    peak_resident_bytes: float
    kv_pool_bytes: float

    def to_json(self) -> Dict:
        return {
            "resident": list(self.resident),
            "swap_ins": self.swap_ins,
            "swap_outs": self.swap_outs,
            "swap_in_s": self.swap_in_s,
            "swap_ins_by_model": dict(self.swap_ins_by_model),
            "weight_budget_bytes": self.weight_budget_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "kv_pool_bytes": self.kv_pool_bytes,
        }


class ModelResidency:
    """Weight-memory residency of one replica's model set.

    Tracks which models' weights are on the GPU, in least-recently-used
    order.  :meth:`ensure_resident` is the one mutating entry point: it
    returns the swap-in cost in seconds (zero when the model is already
    warm), evicting LRU models first if the resident set is full.  The
    caller charges that cost on the replica's clock as a busy window —
    the GPU's copy engines and the host link are occupied by the weight
    transfer, so no iteration of any co-resident model runs meanwhile.

    Memory accounting (all byte figures are aggregated across the
    replica's tensor-parallel group):

    * per model, ``footprint = weights + weights * workspace_factor +
      1 GiB * tp`` — the same workspace formula as
      :meth:`repro.serving.engine.ServingEngine.kv_capacity_bytes`;
    * the **weight budget** reserves the ``resident_limit`` largest
      footprints;
    * what remains of HBM is split evenly into one KV page pool per model
      (:meth:`kv_pool_bytes`), reserved whether or not the model is
      currently resident — swapping drops weights, never KV state.
    """

    def __init__(self, config: MultiplexConfig, gpu: GPUSpec,
                 weight_bytes: Dict[str, float],
                 workspace_bytes: Dict[str, float],
                 tp_degree: int = 1) -> None:
        self.config = config
        self.gpu = gpu
        self.tp_degree = tp_degree
        self.weight_bytes = dict(weight_bytes)
        self.workspace_bytes = dict(workspace_bytes)
        self.hbm_capacity_bytes = float(gpu.memory_bytes) * tp_degree
        footprints = sorted((self.footprint_bytes(name)
                             for name in config.model_names), reverse=True)
        self.weight_budget_bytes = float(
            sum(footprints[:config.resident_limit]))
        kv_total = self.hbm_capacity_bytes - self.weight_budget_bytes
        if kv_total <= 0:
            raise ValueError(
                f"{config.resident_limit} resident models "
                f"({self.weight_budget_bytes / (1 << 30):.1f} GiB of weights "
                f"+ workspace) leave no KV memory on "
                f"{gpu.name} x{tp_degree}")
        self._kv_pool_bytes = kv_total / len(config.models)
        #: Resident models in LRU order (index 0 = least recently used).
        self.resident: List[str] = list(config.preload_names())
        self.swap_ins = 0
        self.swap_outs = 0
        self.swap_in_s = 0.0
        self.swap_ins_by_model: Dict[str, int] = {}
        self.peak_resident_bytes = self.resident_bytes()

    # ------------------------------------------------------------------
    def footprint_bytes(self, model: str) -> float:
        """HBM footprint of one resident model (weights + workspace)."""
        return self.weight_bytes[model] + self.workspace_bytes[model]

    def resident_bytes(self) -> float:
        """HBM currently held by resident weights + workspace."""
        return float(sum(self.footprint_bytes(m) for m in self.resident))

    def kv_pool_bytes(self) -> float:
        """Per-model KV page-pool capacity under the static carve."""
        return self._kv_pool_bytes

    def is_resident(self, model: str) -> bool:
        return model in self.resident

    def swap_cost_s(self, model: str) -> float:
        """Seconds a swap-in of ``model`` would cost now (0 when warm)."""
        if model in self.resident:
            return 0.0
        return weight_transfer_s(self.weight_bytes[model],
                                 self.config.host_link,
                                 self.config.provision_s)

    # ------------------------------------------------------------------
    def ensure_resident(self, model: str) -> float:
        """Make ``model`` resident; returns the swap-in cost in seconds.

        Already-warm models cost zero and move to the most-recently-used
        end.  Otherwise LRU models are evicted until the set has room, the
        swap is counted, and the priced transfer time is returned for the
        caller to charge on the replica clock.
        """
        if model not in self.weight_bytes:
            raise KeyError(f"unknown model {model!r}; fleet serves "
                           f"{sorted(self.weight_bytes)}")
        if model in self.resident:
            self.resident.remove(model)
            self.resident.append(model)
            return 0.0
        while len(self.resident) >= self.config.resident_limit:
            self.resident.pop(0)
            self.swap_outs += 1
        cost = weight_transfer_s(self.weight_bytes[model],
                                 self.config.host_link,
                                 self.config.provision_s)
        self.resident.append(model)
        self.swap_ins += 1
        self.swap_in_s += cost
        self.swap_ins_by_model[model] = \
            self.swap_ins_by_model.get(model, 0) + 1
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes())
        return cost

    # ------------------------------------------------------------------
    def reserved_bytes(self) -> float:
        """Peak HBM claim: resident weights + every model's KV pool.

        The invariant tests assert this never exceeds
        :attr:`hbm_capacity_bytes` — weight residency composes with the KV
        carve instead of double-booking memory.
        """
        return (self.peak_resident_bytes
                + self._kv_pool_bytes * len(self.config.models))

    def snapshot(self) -> ResidencySnapshot:
        return ResidencySnapshot(
            resident=list(self.resident),
            swap_ins=self.swap_ins,
            swap_outs=self.swap_outs,
            swap_in_s=self.swap_in_s,
            swap_ins_by_model=dict(sorted(self.swap_ins_by_model.items())),
            weight_budget_bytes=self.weight_budget_bytes,
            peak_resident_bytes=self.peak_resident_bytes,
            kv_pool_bytes=self._kv_pool_bytes,
        )


@dataclass
class MultiplexReport:
    """Fleet-level summary of a multiplexed serving run."""

    #: One snapshot per replica, in replica order.
    replicas: List[ResidencySnapshot] = field(default_factory=list)
    #: Requests routed to each model across the fleet.
    requests_by_model: Dict[str, int] = field(default_factory=dict)

    @property
    def swap_ins(self) -> int:
        return sum(r.swap_ins for r in self.replicas)

    @property
    def swap_outs(self) -> int:
        return sum(r.swap_outs for r in self.replicas)

    @property
    def swap_in_s(self) -> float:
        return float(sum(r.swap_in_s for r in self.replicas))

    def to_json(self) -> Dict:
        return {
            "swap_ins": self.swap_ins,
            "swap_outs": self.swap_outs,
            "swap_in_s": self.swap_in_s,
            "requests_by_model": dict(sorted(self.requests_by_model.items())),
            "replicas": [r.to_json() for r in self.replicas],
        }
