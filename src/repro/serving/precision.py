"""Serving-system presets.

Each :class:`SystemConfig` binds a weight/activation/KV precision to the GPU
cost model's GEMM dataflow and attention kernel, plus the system-level
properties that affect achievable batch size (paged attention support,
activation workspace overhead).  The presets mirror the systems compared in
Table 4 / Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SystemConfig", "SYSTEM_PRESETS", "get_system"]


@dataclass(frozen=True)
class SystemConfig:
    """One serving system / precision configuration.

    Attributes
    ----------
    gemm_precision:
        Key into :data:`repro.gpu.gemm.GEMM_PRECISIONS` used for all linear
        layers of the transformer blocks.
    attention_kernel:
        Key into :data:`repro.gpu.attention_kernel.KV_KERNELS` used for the
        decoding-stage attention.
    weight_bits / kv_bits:
        Storage precision used for memory accounting.
    paged_kv:
        Whether the system supports paged KV caches.  Systems without it
        (QuaRot) must reserve contiguous KV memory for the full maximum
        sequence length up front, which shrinks the achievable batch.
    activation_workspace_factor:
        Fraction of weight memory reserved for activations / workspace.
    kv_param_overhead:
        Extra bytes per token per KV head for dynamically stored scales and
        zero points (QServe's per-head dynamic quantization).
    runtime_efficiency:
        Fraction of the cost-model latency the system's runtime actually
        achieves.  TensorRT-LLM and QServe are tuned production runtimes
        (1.0); the Atom and QuaRot research prototypes are substantially less
        efficient — the paper attributes part of their Figure 2b gap to "the
        inefficient runtime in these two systems".  The factors are calibrated
        against Figure 2b (Atom 817 and QuaRot 986 tok/s vs 2104 for
        TRT-W8A8 on Llama-2-7B/A100).
    """

    name: str
    gemm_precision: str
    attention_kernel: str
    weight_bits: float
    kv_bits: float
    paged_kv: bool = True
    activation_workspace_factor: float = 0.10
    kv_param_overhead: float = 0.0
    runtime_efficiency: float = 1.0

    @property
    def is_qserve(self) -> bool:
        return self.name.startswith("qserve")


#: Per-head FP16 scale + zero point for K and V (4 x 2 bytes per token per head).
_DYNAMIC_KV_PARAM_BYTES = 8.0

SYSTEM_PRESETS: Dict[str, SystemConfig] = {
    "trt-fp16": SystemConfig(
        name="trt-fp16", gemm_precision="fp16", attention_kernel="kv16",
        weight_bits=16, kv_bits=16),
    "trt-w8a8": SystemConfig(
        name="trt-w8a8", gemm_precision="w8a8", attention_kernel="kv8-trt",
        weight_bits=8, kv_bits=8),
    "trt-w4a16": SystemConfig(
        name="trt-w4a16", gemm_precision="w4a16", attention_kernel="kv16",
        weight_bits=4, kv_bits=16),
    "atom-w4a4": SystemConfig(
        name="atom-w4a4", gemm_precision="w4a4-atom", attention_kernel="kv4-naive",
        weight_bits=4.5, kv_bits=4,  # mixed-precision salient channels
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES, runtime_efficiency=0.40),
    "quarot-w4a4": SystemConfig(
        name="quarot-w4a4", gemm_precision="w4a4-quarot", attention_kernel="kv4-naive",
        weight_bits=4, kv_bits=4, paged_kv=False,
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES, runtime_efficiency=0.45),
    "qserve-w4a8kv4-chn": SystemConfig(
        name="qserve-w4a8kv4-chn", gemm_precision="w4a8-qserve-chn",
        attention_kernel="kv4-qserve", weight_bits=4, kv_bits=4,
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES),
    "qserve-w4a8kv4-grp": SystemConfig(
        name="qserve-w4a8kv4-grp", gemm_precision="w4a8-qserve-grp",
        attention_kernel="kv4-qserve", weight_bits=4.25,  # group scales/zeros
        kv_bits=4, kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES),
}


def get_system(name: str) -> SystemConfig:
    """Look up a serving-system preset by name."""
    try:
        return SYSTEM_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SYSTEM_PRESETS))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
