"""Kernel-level analysis: why W4A8KV4 wins on GPUs.

Walks through the paper's system-design arguments with the GPU cost model:

1. the A100 roofline and the W4A16/W8A8 crossover (Figure 3);
2. main-loop dequantization overhead of the four GEMM dataflows (Figures 5/18);
3. decode-attention latency for KV8 vs naive KV4 vs QServe's KV4 (Table 1);
4. the register-level-parallelism dequantization trick, demonstrated
   bit-exactly on a progressive-group-quantized weight (Figures 13/14).

Run with:  python examples/kernel_analysis.py
"""

import numpy as np

from repro.experiments import (
    fig3_roofline,
    fig18_dequant_overhead,
    table1_kv4_attention,
)
from repro.gpu import (
    dequantize_subtract_after_multiply,
    dequantize_subtract_before_multiply,
)
from repro.quant import interleave_for_rlp, pack_int4, rlp_unpack_uint4x8
from repro.quant.progressive import progressive_dequantize_level1, progressive_quantize


def main() -> None:
    print(fig3_roofline.run().to_text("{:.0f}"), "\n")
    print(fig18_dequant_overhead.run().to_text("{:.1f}"), "\n")
    print(fig18_dequant_overhead.run_mainloop_composition().to_text("{:.1f}"), "\n")
    print(table1_kv4_attention.run().to_text("{:.2f}"), "\n")
    print(table1_kv4_attention.run_breakdown().to_text("{:.2f}"), "\n")

    # Register-level parallelism demo on a real progressive-quantized weight.
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.2, size=(1, 32))
    weight[0, 3] *= 15  # an outlier the protective range must absorb
    pqw = progressive_quantize(weight, group_size=8)
    int8_reference = progressive_dequantize_level1(pqw)[0, :4]

    packed = pack_int4(interleave_for_rlp(pqw.qweight[0]))
    low, high, ops = rlp_unpack_uint4x8(packed.view(np.uint32))
    print(f"UINT4 unpacking of 32 weights took {ops} logical ops "
          f"(3 per 8 weights, Figure 13).")

    codes = pqw.qweight[0, :4].astype(np.int64)[None, :]
    zero, scale = int(pqw.zeros[0, 0]), int(pqw.scales_l2[0, 0])
    after = dequantize_subtract_after_multiply(codes, zero, scale)
    before = dequantize_subtract_before_multiply(codes, zero, scale)
    print(f"INT8 reference for the first group:        {int8_reference.tolist()}")
    print(f"subtract-after-multiply (QServe, 2 ops):   {after.values[0].tolist()} "
          f"overflow={after.overflowed}")
    print(f"subtract-before-multiply (naive):          {before.values[0].tolist()} "
          f"overflow={before.overflowed}")


if __name__ == "__main__":
    main()
