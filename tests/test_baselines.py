"""Tests for the baseline quantization methods."""

import numpy as np
import pytest

from repro.baselines import (
    gptq_quantize_weight,
    quantize_atom,
    quantize_awq,
    quantize_gptq,
    quantize_quarot,
    quantize_rtn,
    quantize_smoothquant,
    search_awq_scales,
)
from repro.data import evaluate_perplexity
from repro.quant import Granularity, UINT4, fake_quantize, quantization_error


@pytest.fixture(scope="module")
def fp_ppl(tiny_model, tiny_eval_sequences):
    return evaluate_perplexity(tiny_model, tiny_eval_sequences)


def test_rtn_w8a8_nearly_lossless(tiny_model, tiny_eval_sequences, fp_ppl):
    model, fwd = quantize_rtn(tiny_model, weight_bits=8, act_bits=8, kv_bits=8)
    ppl = evaluate_perplexity(model, tiny_eval_sequences, fwd)
    assert abs(ppl - fp_ppl) / fp_ppl < 0.05


def test_rtn_w4a4_worse_than_w4a8(tiny_model, tiny_eval_sequences):
    m48, f48 = quantize_rtn(tiny_model, weight_bits=4, act_bits=8, kv_bits=4,
                            group_size=32)
    m44, f44 = quantize_rtn(tiny_model, weight_bits=4, act_bits=4, kv_bits=4,
                            group_size=32)
    ppl48 = evaluate_perplexity(m48, tiny_eval_sequences, f48)
    ppl44 = evaluate_perplexity(m44, tiny_eval_sequences, f44)
    assert ppl44 > ppl48


def test_smoothquant_close_to_fp16(tiny_model, tiny_calibration,
                                   tiny_eval_sequences, fp_ppl):
    model, fwd = quantize_smoothquant(tiny_model, tiny_calibration)
    ppl = evaluate_perplexity(model, tiny_eval_sequences, fwd)
    assert abs(ppl - fp_ppl) / fp_ppl < 0.05


def test_awq_scale_search_not_worse_than_rtn():
    rng = np.random.default_rng(0)
    weight = rng.normal(0, 0.1, size=(32, 64))
    inputs = rng.normal(size=(128, 64))
    inputs[:, :4] *= 20  # salient channels
    weight[:, :4] *= 2
    scales, alpha = search_awq_scales(weight, inputs, group_size=16)
    w_awq = fake_quantize(weight * scales, UINT4, Granularity.PER_GROUP,
                          symmetric=False, group_size=16)
    w_rtn = fake_quantize(weight, UINT4, Granularity.PER_GROUP,
                          symmetric=False, group_size=16)
    ref = inputs @ weight.T
    err_awq = np.mean((ref - (inputs / scales) @ w_awq.T) ** 2)
    err_rtn = np.mean((ref - inputs @ w_rtn.T) ** 2)
    assert err_awq <= err_rtn + 1e-12
    assert 0.0 <= alpha <= 1.0


def test_gptq_beats_rtn_on_layer_output_error():
    rng = np.random.default_rng(1)
    weight = rng.normal(0, 0.1, size=(24, 64))
    inputs = rng.normal(size=(256, 64))
    inputs[:, :6] *= 8
    w_gptq = gptq_quantize_weight(weight, inputs, group_size=16)
    w_rtn = fake_quantize(weight, UINT4, Granularity.PER_GROUP,
                          symmetric=False, group_size=16)
    ref = inputs @ weight.T
    err_gptq = np.mean((ref - inputs @ w_gptq.T) ** 2)
    err_rtn = np.mean((ref - inputs @ w_rtn.T) ** 2)
    assert err_gptq < err_rtn
    # The quantized weight must still be close to the original.
    assert quantization_error(weight, w_gptq) / np.mean(weight ** 2) < 0.2


def test_w4a16_baselines_close_to_fp(tiny_model, tiny_calibration,
                                     tiny_eval_sequences, fp_ppl):
    for quantizer in (quantize_gptq, quantize_awq):
        model, fwd = quantizer(tiny_model, tiny_calibration, group_size=32)
        ppl = evaluate_perplexity(model, tiny_eval_sequences, fwd)
        assert ppl < fp_ppl * 1.25


def test_w4a4_baselines_degrade_more_than_w8a8(tiny_model, tiny_calibration,
                                               tiny_eval_sequences, fp_ppl):
    quarot, fwd_q = quantize_quarot(tiny_model, tiny_calibration, group_size=32)
    atom, fwd_a = quantize_atom(tiny_model, tiny_calibration, group_size=32)
    sq, fwd_s = quantize_smoothquant(tiny_model, tiny_calibration)
    ppl_quarot = evaluate_perplexity(quarot, tiny_eval_sequences, fwd_q)
    ppl_atom = evaluate_perplexity(atom, tiny_eval_sequences, fwd_a)
    ppl_sq = evaluate_perplexity(sq, tiny_eval_sequences, fwd_s)
    assert ppl_quarot > ppl_sq
    assert ppl_atom > ppl_sq
    assert ppl_quarot < fp_ppl * 2  # degraded but not catastrophically broken
    assert ppl_atom < fp_ppl * 2


def test_rtn_validation(tiny_model):
    with pytest.raises(ValueError):
        quantize_rtn(tiny_model, weight_bits=3)
    with pytest.raises(ValueError):
        quantize_rtn(tiny_model, act_bits=2)
