"""Benchmark for precision-aware serving: the SLO-goodput frontier of
heterogeneous mixed-precision fleets, and demote-before-evict under memory
pressure.

``test_mixed_fleet_goodput_frontier`` is the headline acceptance run for
claim (a): on mixed traffic — a latency/quality-floored interactive tier
plus long-prompt batch traffic — a 2+2 FP16 + W4A8KV4 fleet behind the
precision-aware router beats *both* homogeneous 4-replica fleets on SLO
goodput at every swept arrival rate.  The homogeneous fleets lose for dual
reasons: all-FP16 saturates on batch decode (latency violations), all-KV4
serves the quality-floored tier below its precision floor (precision
violations), and the mixed fleet escapes both.

``test_demote_before_evict_under_pressure`` is claim (b): at equal HBM, a
prefix cache that demotes cold blocks to the 4-bit tier before LRU-evicting
them keeps more prefixes resident (higher hit rate, fewer evictions) on a
multi-turn chat workload, with the dequant cost of re-hitting demoted
blocks charged to the serving clock.
"""

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    get_system,
    make_chat_workload,
    make_mixed_precision_workload,
)

TTFT_SLO_S = 0.5
TPOT_SLO_S = 0.05

FLEETS = {
    "fp16 x4": ["trt-fp16"] * 4,
    "w4a8kv4 x4": ["qserve-w4a8kv4-chn"] * 4,
    "mixed 2+2": ["trt-fp16", "trt-fp16",
                  "qserve-w4a8kv4-chn", "qserve-w4a8kv4-chn"],
}


def _fleet(systems):
    return ClusterEngine(get_config("llama-2-7b"), A100,
                         get_system("trt-fp16"), num_replicas=4,
                         systems=systems)


def test_mixed_fleet_goodput_frontier(benchmark, serving_json):
    """Acceptance (claim a): the mixed fleet dominates the goodput frontier."""

    def run():
        frontier = {}
        for rate in (4.0, 8.0, 12.0, 16.0, 20.0):
            for name, systems in FLEETS.items():
                workload = make_mixed_precision_workload(
                    num_requests=120, arrival_rate=rate, seed=1)
                router = ("precision-aware" if name == "mixed 2+2"
                          else "least-outstanding")
                frontier[(rate, name)] = _fleet(systems).serve(
                    workload, router=router)
        return frontier

    frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("mixed_fleet_goodput_frontier",
                        {f"{rate:g} req/s, {name}": result
                         for (rate, name), result in frontier.items()})
    print()
    print(f"{'rate':>6s}  " + "".join(f"{name:>14s}" for name in FLEETS)
          + "  (SLO goodput, req/s)")
    rates = sorted({rate for rate, _ in frontier})
    for rate in rates:
        row = [frontier[(rate, name)].slo_goodput(TTFT_SLO_S, TPOT_SLO_S)
               for name in FLEETS]
        print(f"{rate:6.1f}  " + "".join(f"{g:14.2f}" for g in row))
    for rate in rates:
        goodputs = {name: frontier[(rate, name)].slo_goodput(
            TTFT_SLO_S, TPOT_SLO_S) for name in FLEETS}
        assert goodputs["mixed 2+2"] > goodputs["fp16 x4"]
        assert goodputs["mixed 2+2"] > goodputs["w4a8kv4 x4"]
        # The homogeneous KV4 fleet fails the quality-floored tier; the
        # precision-aware mixed fleet serves every floor.
        assert frontier[(rate, "w4a8kv4 x4")].metrics.precision_violations > 0
        assert frontier[(rate, "mixed 2+2")].metrics.precision_violations == 0
        assert all(frontier[(rate, name)].num_finished == 120
                   for name in FLEETS)


def test_demote_before_evict_under_pressure(benchmark, monkeypatch):
    """Acceptance (claim b): higher hit rate than plain LRU at equal HBM,
    dequant priced in."""
    engine = ServingEngine(get_config("llama-2-7b"), A100,
                           SYSTEM_PRESETS["trt-fp16"], max_seq_len=4096)
    capacity = 96 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: capacity)
    workload = make_chat_workload(num_sessions=8, turns_per_session=4,
                                  system_prompt_len=192, user_len=32,
                                  assistant_len=64, think_time_s=6.0, seed=11)

    def run():
        return {preset: engine.serve(workload.copy_fresh(), max_num_seqs=3,
                                     scheduling=SCHEDULING_PRESETS[preset])
                for preset in ("prefix", "prefix-demote")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for preset, result in results.items():
        stats = result.prefix_stats
        print(f"{preset:14s} hit {result.cache_hit_rate * 100:5.1f}%  "
              f"evicted {stats.evicted_pages:4d}  "
              f"demoted {stats.demoted_pages_total:4d}  "
              f"demoted-hit {stats.demoted_hit_tokens:5d} tok  "
              f"TTFT mean {result.metrics.ttft.mean * 1e3:7.1f} ms")
    lru, demote = results["prefix"], results["prefix-demote"]
    assert lru.num_finished == demote.num_finished == len(workload)
    assert demote.cache_hit_rate > lru.cache_hit_rate
    assert demote.prefix_stats.evicted_pages < lru.prefix_stats.evicted_pages
    assert demote.prefix_stats.demoted_pages_total > 0
    # Re-hits of demoted blocks exist and their dequant cost was charged.
    assert demote.prefix_stats.demoted_hit_tokens > 0
