"""Tests for progressive group quantization (QoQ core, Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    INT8,
    legacy_two_level_dequantize,
    legacy_two_level_quantize,
    progressive_dequantize,
    progressive_dequantize_level1,
    progressive_quantize,
    quantization_error,
)


def _weight(rows=16, cols=64, seed=0, outliers=False):
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.1, size=(rows, cols))
    if outliers:
        w[:, rng.choice(cols, 3, replace=False)] *= 20
    return w


def test_shapes_per_group():
    w = _weight()
    pqw = progressive_quantize(w, group_size=16)
    assert pqw.qweight.shape == (16, 64)
    assert pqw.zeros.shape == (16, 4)
    assert pqw.scales_l2.shape == (16, 4)
    assert pqw.scales_l1.shape == (16, 1)
    assert pqw.qweight.dtype == np.uint8
    assert pqw.scales_l1.dtype == np.float16


def test_codes_are_uint4_and_scales_uint8():
    pqw = progressive_quantize(_weight(outliers=True), group_size=16)
    assert pqw.qweight.min() >= 0 and pqw.qweight.max() <= 15
    assert pqw.zeros.min() >= 0 and pqw.zeros.max() <= 15
    assert pqw.scales_l2.min() >= 1 and pqw.scales_l2.max() <= 255


def test_level1_intermediate_is_int8(rng=None):
    pqw = progressive_quantize(_weight(outliers=True), group_size=16)
    q0 = progressive_dequantize_level1(pqw)
    assert q0.dtype == np.int8
    assert q0.min() >= INT8.qmin and q0.max() <= INT8.qmax


def test_protective_range_prevents_overflow():
    """Without the protective range the INT8 intermediate can overflow."""
    rng = np.random.default_rng(7)
    overflow_seen = False
    for seed in range(20):
        w = _weight(seed=seed, outliers=True) * rng.uniform(0.5, 2.0)
        unsafe = progressive_quantize(w, group_size=16, protective_range=False)
        try:
            progressive_dequantize_level1(unsafe)
        except OverflowError:
            overflow_seen = True
        safe = progressive_quantize(w, group_size=16, protective_range=True)
        progressive_dequantize_level1(safe)  # must never raise
    assert overflow_seen, "expected at least one overflow without the protective range"


def test_reconstruction_error_reasonable():
    w = _weight()
    pqw = progressive_quantize(w, group_size=16)
    rel = quantization_error(w, progressive_dequantize(pqw)) / np.mean(w ** 2)
    assert rel < 0.05


def test_group_quant_more_accurate_than_per_channel():
    w = _weight(outliers=True, seed=3)
    per_channel = progressive_quantize(w, group_size=None)
    per_group = progressive_quantize(w, group_size=16)
    err_pc = quantization_error(w, progressive_dequantize(per_channel))
    err_pg = quantization_error(w, progressive_dequantize(per_group))
    assert err_pg <= err_pc


def test_per_channel_variant_has_degenerate_level2():
    pqw = progressive_quantize(_weight(), group_size=None)
    assert pqw.is_per_channel
    assert np.all(pqw.scales_l2 == 1)
    assert pqw.zeros.shape == (16, 1)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        progressive_quantize(np.zeros((4, 30)), group_size=16)
    with pytest.raises(ValueError):
        progressive_quantize(np.zeros(8), group_size=4)


def test_memory_accounting_counts_packed_nibbles():
    pqw = progressive_quantize(_weight(), group_size=16)
    # 16x64 weights at 0.5 byte = 512, plus zeros/scales/fp16 level-1 scales.
    assert pqw.memory_bytes() >= 512
    assert pqw.memory_bytes() < 512 + 16 * 4 + 16 * 4 + 16 * 2 + 64


def test_legacy_two_level_roundtrip():
    w = _weight()
    tlw = legacy_two_level_quantize(w, group_size=16)
    w_hat = legacy_two_level_dequantize(tlw)
    rel = quantization_error(w, w_hat) / np.mean(w ** 2)
    assert rel < 0.1


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 8), st.floats(0.01, 10.0))
def test_property_protective_range_invariant(seed, rows, scale):
    """Property: the INT8 intermediate of progressive quantization never
    escapes [-128, 127], for any weight distribution."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, scale, size=(rows, 32))
    w[rng.integers(0, rows), rng.integers(0, 32)] *= 30  # plant an outlier
    pqw = progressive_quantize(w, group_size=8)
    q0 = progressive_dequantize_level1(pqw)
    assert q0.min() >= -128 and q0.max() <= 127
