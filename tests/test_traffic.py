"""Tests for the production traffic layer: diurnal and flash-crowd arrival
processes, the JSONL trace format, multi-tenant SLO tiers with tier-aware
admission (deferral, aging floor, load shedding), the reactive autoscaler,
and the determinism guarantees of traced autoscaled multi-tenant runs."""

import io
import json

import pytest

from repro.gpu import A100, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    AutoscaleReport,
    AutoscalerConfig,
    ClusterEngine,
    ContinuousBatchingScheduler,
    FleetSnapshot,
    PagedKVCacheManager,
    ReactiveAutoscaler,
    Request,
    RequestState,
    SCHEDULING_PRESETS,
    ScalingEvent,
    ServingEngine,
    TIERS,
    TenantSpec,
    Workload,
    assign_tenants,
    get_system,
    load_trace,
    make_diurnal_workload,
    make_flash_crowd_workload,
    make_tenant_pool,
    save_trace,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


@pytest.fixture(scope="module")
def system():
    return get_system("qserve-w4a8kv4-chn")


def _manager(model, capacity_gib=10.0):
    return PagedKVCacheManager(model=model,
                               system=get_system("qserve-w4a8kv4-chn"),
                               capacity_bytes=capacity_gib * (1 << 30),
                               page_size=16, max_seq_len=1536)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def test_diurnal_workload_basics():
    wl = make_diurnal_workload(200, base_rate=10.0, amplitude=0.8,
                               period_s=20.0, seed=3)
    arrivals = [r.arrival_time for r in wl.requests]
    assert len(wl) == 200
    assert arrivals == sorted(arrivals)
    assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
    assert [r.request_id for r in wl.requests] == list(range(200))


def test_diurnal_workload_is_seeded():
    a = make_diurnal_workload(100, seed=1)
    b = make_diurnal_workload(100, seed=1)
    c = make_diurnal_workload(100, seed=2)
    assert [r.arrival_time for r in a.requests] == \
           [r.arrival_time for r in b.requests]
    assert [r.arrival_time for r in a.requests] != \
           [r.arrival_time for r in c.requests]


def test_diurnal_rate_actually_modulates():
    # With a strong amplitude the peak half-period must hold clearly more
    # arrivals than the trough half-period, across full cycles.
    period = 40.0
    wl = make_diurnal_workload(2000, base_rate=10.0, amplitude=0.9,
                               period_s=period, seed=5)
    peak = trough = 0
    for r in wl.requests:
        phase = (r.arrival_time % period) / period
        if phase < 0.5:      # sin > 0: above-base rate
            peak += 1
        else:
            trough += 1
    assert peak > 2 * trough


def test_diurnal_validation():
    with pytest.raises(ValueError):
        make_diurnal_workload(0)
    with pytest.raises(ValueError):
        make_diurnal_workload(10, amplitude=1.5)
    with pytest.raises(ValueError):
        make_diurnal_workload(10, base_rate=0.0)


def test_flash_crowd_spike_density():
    # A 10x spike over [10, 20) should hold roughly 10x the arrivals per
    # second of the surrounding baseline.
    wl = make_flash_crowd_workload(1500, base_rate=4.0,
                                   spikes=((10.0, 10.0, 10.0),), seed=9)
    in_spike = sum(1 for r in wl.requests if 10.0 <= r.arrival_time < 20.0)
    before = sum(1 for r in wl.requests if r.arrival_time < 10.0)
    assert before > 0 and in_spike > 0
    per_s_spike = in_spike / 10.0
    per_s_base = before / 10.0
    assert 5.0 < per_s_spike / per_s_base < 20.0
    arrivals = [r.arrival_time for r in wl.requests]
    assert arrivals == sorted(arrivals)


def test_flash_crowd_validation():
    with pytest.raises(ValueError):
        make_flash_crowd_workload(10, spikes=((0.0, -1.0, 2.0),))
    with pytest.raises(ValueError):
        make_flash_crowd_workload(10, spikes=((0.0, 1.0, 0.0),))
    with pytest.raises(ValueError):
        make_flash_crowd_workload(10, base_rate=0.0)


# ----------------------------------------------------------------------
# Tenants and tiers
# ----------------------------------------------------------------------
def test_tenant_pool_mix():
    pool = make_tenant_pool(4, free_fraction=0.5)
    assert [t.tier for t in pool] == ["paid", "paid", "free", "free"]
    assert make_tenant_pool(3, free_fraction=0.0) == tuple(
        TenantSpec(name=f"tenant-{i:02d}", tier="paid") for i in range(3))
    with pytest.raises(ValueError):
        make_tenant_pool(0)
    with pytest.raises(ValueError):
        TenantSpec(name="x", tier="vip")
    with pytest.raises(ValueError):
        TenantSpec(name="x", weight=0.0)


def test_assign_tenants_deterministic_and_weighted():
    wl = make_diurnal_workload(400, seed=1)
    assign_tenants(wl, tenants=4, free_fraction=0.5, seed=7)
    tags_a = [(r.tenant, r.tier) for r in wl.requests]
    wl2 = make_diurnal_workload(400, seed=1)
    assign_tenants(wl2, tenants=4, free_fraction=0.5, seed=7)
    assert tags_a == [(r.tenant, r.tier) for r in wl2.requests]
    assert {tier for _, tier in tags_a} == set(TIERS)
    # A heavily weighted tenant dominates the draw.
    wl3 = make_diurnal_workload(400, seed=1)
    assign_tenants(wl3, tenants=[TenantSpec("whale", weight=50.0),
                                 TenantSpec("minnow", tier="free")], seed=7)
    whale = sum(1 for r in wl3.requests if r.tenant == "whale")
    assert whale > 350


def test_tenant_stamping_does_not_change_arrivals():
    plain = make_diurnal_workload(50, seed=4)
    tagged = make_diurnal_workload(50, tenants=4, seed=4)
    assert [(r.arrival_time, r.prompt_len, r.output_len)
            for r in plain.requests] == \
           [(r.arrival_time, r.prompt_len, r.output_len)
            for r in tagged.requests]
    assert all(r.tenant is None and r.tier == "paid" for r in plain.requests)
    assert all(r.tenant is not None for r in tagged.requests)


def test_copy_fresh_preserves_tenant_and_tier():
    wl = make_flash_crowd_workload(20, tenants=4, seed=2)
    fresh = wl.copy_fresh()
    assert [(r.tenant, r.tier) for r in fresh.requests] == \
           [(r.tenant, r.tier) for r in wl.requests]


# ----------------------------------------------------------------------
# JSONL trace format
# ----------------------------------------------------------------------
def test_trace_round_trip(tmp_path):
    wl = make_flash_crowd_workload(40, tenants=4, free_fraction=0.5, seed=6)
    wl.requests[0].model = "llama-2-7b"
    path = tmp_path / "trace.jsonl"
    save_trace(wl, path)
    back = load_trace(path)
    assert [(r.request_id, r.arrival_time, r.prompt_len, r.output_len,
             r.tenant, r.tier, r.model) for r in back.requests] == \
           [(r.request_id, r.arrival_time, r.prompt_len, r.output_len,
             r.tenant, r.tier, r.model) for r in wl.requests]
    # Loaded requests are pristine: no engine-side progress carried over.
    assert all(r.state is RequestState.WAITING and r.generated == 0
               for r in back.requests)


def test_trace_load_sorts_and_renumbers():
    lines = [
        json.dumps({"arrival_s": 5.0, "prompt_tokens": 32,
                    "output_tokens": 4, "tier": "free"}),
        json.dumps({"arrival_s": 1.0, "prompt_tokens": 16,
                    "output_tokens": 8, "tenant": "acme"}),
    ]
    wl = load_trace(lines)
    assert [r.request_id for r in wl.requests] == [0, 1]
    assert [r.arrival_time for r in wl.requests] == [1.0, 5.0]
    assert wl.requests[0].tenant == "acme"
    assert wl.requests[0].tier == "paid"       # default
    assert wl.requests[1].tier == "free"


def test_trace_load_validates():
    with pytest.raises(ValueError, match="line 1.*missing 'arrival_s'"):
        load_trace([json.dumps({"prompt_tokens": 1, "output_tokens": 1})])
    with pytest.raises(ValueError, match="line 2.*unknown tier"):
        load_trace([
            json.dumps({"arrival_s": 0, "prompt_tokens": 1,
                        "output_tokens": 1}),
            json.dumps({"arrival_s": 1, "prompt_tokens": 1,
                        "output_tokens": 1, "tier": "platinum"}),
        ])
    with pytest.raises(ValueError, match="line 1.*invalid JSON"):
        load_trace(["{not json"])


def test_trace_replay_reproducible(llama7b, system):
    wl = make_diurnal_workload(60, base_rate=20.0, period_s=10.0,
                               tenants=4, seed=8)
    buf = io.StringIO()
    save_trace(wl, buf)
    engine = ServingEngine(llama7b, A100, system, max_seq_len=2048)

    def replay():
        trace = load_trace(io.StringIO(buf.getvalue()))
        r = engine.serve(trace, max_num_seqs=16,
                         scheduling=SCHEDULING_PRESETS["tiered"])
        return json.dumps(r.to_json(), sort_keys=True)

    assert replay() == replay()


# ----------------------------------------------------------------------
# Tier-aware admission
# ----------------------------------------------------------------------
def _tiered_scheduler(llama7b, max_num_seqs=4, **kwargs):
    return ContinuousBatchingScheduler(
        kv_manager=_manager(llama7b), max_num_seqs=max_num_seqs,
        tier_admission=True, **kwargs)


def _mk(request_id, tier="paid", arrival=0.0, prompt=64, output=8):
    r = Request(request_id=request_id, prompt_len=prompt, output_len=output,
                arrival_time=arrival)
    r.tier = tier
    return r


def test_free_tier_deferred_under_seq_pressure(llama7b):
    # max_num_seqs=4 with the default 25% headroom: free-tier requests are
    # deferred once <= 1 slot stays open.
    sched = _tiered_scheduler(llama7b)
    paid = [_mk(i) for i in range(3)]
    free = [_mk(10 + i, tier="free") for i in range(2)]
    sched.submit(free + paid)
    admitted = sched.admit(now=0.0)
    assert [r.request_id for r in admitted] == [0, 1, 2]   # paid first
    assert sched.tier_deferrals == 2
    assert all(r.tier == "free" for r in sched.waiting)
    # Regression: deferrals are a constant-time pre-screen, not admission
    # scans — only the 3 paid requests were examined.
    assert sched.admission_scanned_requests == 3


def test_free_tier_admitted_without_pressure(llama7b):
    sched = _tiered_scheduler(llama7b, max_num_seqs=16)
    sched.submit([_mk(0, tier="free"), _mk(1)])
    admitted = sched.admit(now=0.0)
    # No pressure: both admit, paid still ranked first.
    assert [r.request_id for r in admitted] == [1, 0]
    assert sched.tier_deferrals == 0


def test_aging_floor_promotes_deferred_free_tier(llama7b):
    sched = _tiered_scheduler(llama7b)   # tier_aging_s = 5.0
    sched.submit([_mk(i) for i in range(3)] + [_mk(9, tier="free")])
    sched.admit(now=0.0)
    assert sched.admit(now=4.0) == []            # still deferred
    deferred_before = sched.tier_deferrals
    admitted = sched.admit(now=6.0)              # waited past tier_aging_s
    assert [r.request_id for r in admitted] == [9]
    assert sched.tier_deferrals == deferred_before


def test_free_tier_shedding(llama7b):
    sched = _tiered_scheduler(llama7b, free_tier_drop_after_s=1.0)
    paid = [_mk(i) for i in range(4)]
    sched.submit(paid)
    sched.admit(now=0.0)                          # fleet saturated
    late_free = _mk(20, tier="free", arrival=0.0)
    sched.submit([late_free])
    sched.admit(now=0.5)                          # not yet past the cutoff
    assert late_free.state is not RequestState.DROPPED
    sched.admit(now=2.0)
    assert late_free.state is RequestState.DROPPED
    assert late_free.drop_time == 2.0
    assert sched.dropped == [late_free]
    assert sched.drops_by_tier == {"free": 1}
    assert late_free not in sched.waiting


def test_paid_tier_never_shed(llama7b):
    sched = _tiered_scheduler(llama7b, free_tier_drop_after_s=1.0)
    sched.submit([_mk(i) for i in range(4)])
    sched.admit(now=0.0)
    late_paid = _mk(20, arrival=0.0)
    sched.submit([late_paid])
    sched.admit(now=50.0)
    assert late_paid.state is not RequestState.DROPPED
    assert sched.dropped == []


def test_tier_admission_off_is_bitwise_identical(llama7b, system):
    # Stamping tenants must not change a default-scheduling run at all.
    engine = ServingEngine(llama7b, A100, system, max_seq_len=2048)
    plain = make_diurnal_workload(60, base_rate=15.0, period_s=10.0, seed=2)
    tagged = make_diurnal_workload(60, base_rate=15.0, period_s=10.0,
                                   tenants=4, seed=2)
    ra = engine.serve(plain, max_num_seqs=16,
                      scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    rb = engine.serve(tagged, max_num_seqs=16,
                      scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert ra.total_time_s == rb.total_time_s
    assert ra.generated_tokens == rb.generated_tokens
    assert ra.num_finished == rb.num_finished
    assert ra.num_dropped == rb.num_dropped == 0


def test_tiered_serving_favours_paid_ttft(llama7b, system):
    # Under sustained overload, tier-aware admission must buy paid requests
    # a better TTFT than free ones.
    engine = ServingEngine(llama7b, A100, system, max_seq_len=2048)
    wl = make_diurnal_workload(150, base_rate=40.0, amplitude=0.5,
                               period_s=10.0, prompt_len=256, output_len=32,
                               tenants=4, free_fraction=0.5, seed=3)
    r = engine.serve(wl, max_num_seqs=8,
                     scheduling=SCHEDULING_PRESETS["tiered"])
    by_tier = r.metrics.by_tier()
    assert set(by_tier) == {"paid", "free"}
    assert by_tier["paid"].ttft.mean < by_tier["free"].ttft.mean
    payload = r.to_json()
    assert set(payload["metrics"]["by_tier"]) == {"paid", "free"}


def test_tiered_shedding_serving_counters(llama7b, system):
    engine = ServingEngine(llama7b, A100, system, max_seq_len=2048)
    # Enough backlog that late free-tier requests queue past the preset's
    # 20 s shed cutoff while the sequence cap stays saturated.
    wl = make_diurnal_workload(500, base_rate=80.0, amplitude=0.3,
                               period_s=10.0, prompt_len=512, output_len=64,
                               tenants=4, free_fraction=0.5, seed=3)
    r = engine.serve(wl, max_num_seqs=4,
                     scheduling=SCHEDULING_PRESETS["tiered-shed"],
                     telemetry=True)
    assert r.num_dropped > 0
    assert r.num_dropped <= r.num_unserved    # dropped is a subset
    counters = r.counters.as_dict()
    assert counters["scheduler_dropped_requests_total"] == r.num_dropped
    assert counters["scheduler_dropped_tier_free_total"] == r.num_dropped
    assert counters["scheduler_tier_deferrals_total"] > 0
    # Dropped requests carry an instant marker in the Chrome trace and
    # close their span at the drop.
    events = r.telemetry.chrome_trace()["traceEvents"]
    drops = [e for e in events if e.get("name") == "dropped"]
    assert len(drops) == r.num_dropped


# ----------------------------------------------------------------------
# Autoscaler unit behaviour
# ----------------------------------------------------------------------
def test_autoscaler_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(min_replicas=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_replicas=3, max_replicas=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(slo_floor=0.0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(AutoscalerConfig(min_replicas=2), max_replicas=1)


def test_cold_start_prices_weight_transfer():
    cfg = AutoscalerConfig(provision_s=2.0)
    bytes_ = 13 * (1 << 30)
    assert cfg.cold_start_s(bytes_) == \
        2.0 + PCIE_GEN4.transfer_latency(bytes_)
    assert cfg.cold_start_s(0) == pytest.approx(2.0 + PCIE_GEN4.latency_s)


def _snap(now, active=1, starting=0, queue=0, outstanding=0,
          finished=0, ok=0):
    return FleetSnapshot(now=now, num_active=active, num_starting=starting,
                         queue_depth=queue, outstanding=outstanding,
                         recent_finished=finished, recent_slo_ok=ok)


def test_autoscaler_scales_up_on_queue_depth():
    cfg = AutoscalerConfig(scale_up_queue_depth=4.0, up_cooldown_s=10.0)
    scaler = ReactiveAutoscaler(cfg, max_replicas=4)
    assert scaler.decide(_snap(0.0, queue=5, outstanding=5)) == \
        ("up", "queue-depth")
    assert scaler.decide(_snap(0.0, queue=4, outstanding=4)) is None
    # Per provisioned replica: 2 active + 1 starting need > 12 queued.
    assert scaler.decide(
        _snap(0.0, active=2, starting=1, queue=12, outstanding=12)) is None


def test_autoscaler_up_cooldown():
    cfg = AutoscalerConfig(scale_up_queue_depth=1.0, up_cooldown_s=10.0)
    scaler = ReactiveAutoscaler(cfg, max_replicas=4)
    assert scaler.decide(_snap(5.0, queue=9)) is not None
    scaler.commit(ScalingEvent(5.0, "up", 1, 1, "queue-depth"))
    assert scaler.decide(_snap(9.0, queue=9)) is None       # cooling down
    assert scaler.decide(_snap(15.0, queue=9)) is not None


def test_autoscaler_respects_max_replicas():
    cfg = AutoscalerConfig(scale_up_queue_depth=1.0, up_cooldown_s=0.0)
    scaler = ReactiveAutoscaler(cfg, max_replicas=2)
    assert scaler.decide(_snap(0.0, active=2, queue=100)) is None
    assert scaler.decide(_snap(0.0, active=1, starting=1, queue=100)) is None


def test_autoscaler_slo_signal():
    cfg = AutoscalerConfig(scale_up_queue_depth=100.0, up_cooldown_s=0.0,
                           ttft_slo_s=0.2, slo_floor=0.9, slo_min_samples=5)
    scaler = ReactiveAutoscaler(cfg, max_replicas=4)
    assert scaler.decide(_snap(0.0, finished=10, ok=8)) == \
        ("up", "slo-attainment")
    assert scaler.decide(_snap(0.0, finished=10, ok=9)) is None
    assert scaler.decide(_snap(0.0, finished=4, ok=0)) is None  # too few


def test_autoscaler_scale_down_hysteresis():
    cfg = AutoscalerConfig(min_replicas=1, up_cooldown_s=0.0,
                           down_cooldown_s=30.0, scale_down_outstanding=1.0)
    scaler = ReactiveAutoscaler(cfg, max_replicas=4)
    idle = lambda t, n: _snap(t, active=n, queue=0, outstanding=0)
    assert scaler.decide(idle(0.0, 2)) == ("down", "idle")
    scaler.commit(ScalingEvent(0.0, "down", 1, 1, "idle"))
    assert scaler.decide(idle(10.0, 2)) is None     # down cooldown
    assert scaler.decide(idle(31.0, 2)) is not None
    # A recent scale-up also blocks scale-down for down_cooldown_s.
    scaler.commit(ScalingEvent(40.0, "up", 2, 2, "queue-depth"))
    assert scaler.decide(idle(50.0, 3)) is None
    assert scaler.decide(idle(71.0, 3)) is not None
    # Never below the floor; never while a replica is starting.
    assert scaler.decide(idle(100.0, 1)) is None
    assert scaler.decide(_snap(100.0, active=2, starting=1)) is None


def test_autoscale_report_accounting():
    report = AutoscaleReport(
        windows=[[(0.0, 10.0)], [(2.0, 6.0), (8.0, 10.0)]],
        gpus_per_replica=2, makespan_s=10.0)
    assert report.replica_seconds == pytest.approx(16.0)
    assert report.gpu_seconds == pytest.approx(32.0)
    assert report.peak_replicas == 2
    payload = report.to_json()
    assert payload["gpu_seconds"] == pytest.approx(32.0)
    assert payload["peak_replicas"] == 2


# ----------------------------------------------------------------------
# Autoscaled cluster serving
# ----------------------------------------------------------------------
def _flash_workload(n=220):
    return make_flash_crowd_workload(
        n, base_rate=2.0, spikes=((5.0, 30.0, 6.0),),
        prompt_len=512, output_len=200, tenants=4, free_fraction=0.5, seed=7)


def _autoscaler_config():
    return AutoscalerConfig(min_replicas=1, max_replicas=4, interval_s=2.0,
                            scale_up_queue_depth=2.0, up_cooldown_s=2.0,
                            down_cooldown_s=4.0, scale_down_outstanding=6.0,
                            ttft_slo_s=0.5)


def _autoscaled_cluster(llama7b, system):
    return ClusterEngine(llama7b, A100, system, num_replicas=4,
                         max_seq_len=2048)


def test_autoscaled_serving_lifecycle(llama7b, system):
    cluster = _autoscaled_cluster(llama7b, system)
    r = cluster.serve(_flash_workload(), max_num_seqs=8,
                      scheduling=SCHEDULING_PRESETS["tiered"],
                      autoscaler=_autoscaler_config())
    assert r.num_finished + r.num_unserved == 220
    assert r.num_unserved == 0
    report = r.autoscale
    assert report is not None
    assert report.num_scale_ups > 0
    assert report.num_scale_downs > 0
    assert 1 <= report.peak_replicas <= 4
    # Windows are well-formed and the fleet never exceeds the pool.
    for slot in report.windows:
        for start, end in slot:
            assert 0.0 <= start <= end
    # The autoscaled fleet must cost less than holding the whole pool for
    # the makespan.
    assert r.gpu_seconds < 4 * r.total_time_s
    payload = r.to_json()
    assert payload["autoscale"]["num_scale_ups"] == report.num_scale_ups
    assert payload["gpu_seconds"] == r.gpu_seconds


def test_autoscaled_drain_migrates_decodes(llama7b, system):
    # The drain path must move in-flight decodes (not kill them): with
    # aggressive scale-down thresholds some scale-down happens while
    # requests are still decoding, producing priced migrations.
    cluster = _autoscaled_cluster(llama7b, system)
    r = cluster.serve(_flash_workload(), max_num_seqs=8,
                      scheduling=SCHEDULING_PRESETS["tiered"],
                      autoscaler=_autoscaler_config())
    assert r.autoscale.num_scale_downs > 0
    assert r.num_unserved == 0
    if r.num_migrations:
        migrated = [m for m in r.metrics.requests if m.migrations > 0]
        assert migrated
        assert all(m.transfer_delay_s >= 0.0 for m in migrated)


def test_autoscaler_rejects_disaggregation(llama7b, system):
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=2,
                            max_seq_len=2048, roles=["prefill", "decode"])
    with pytest.raises(ValueError, match="mutually exclusive"):
        cluster.serve(_flash_workload(40), autoscaler=AutoscalerConfig())


def test_autoscaler_rejects_oversized_pool_request(llama7b, system):
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=2,
                            max_seq_len=2048)
    with pytest.raises(ValueError, match="exceeds the replica pool"):
        cluster.serve(_flash_workload(40),
                      autoscaler=AutoscalerConfig(max_replicas=8))


def test_autoscaled_beats_static_peak_fleet_on_gpu_seconds(llama7b, system):
    # The capacity-planning claim at test scale: same SLO attainment class,
    # strictly fewer GPU-seconds than the equal-peak static fleet.
    wl = _flash_workload()
    cluster = _autoscaled_cluster(llama7b, system)
    auto = cluster.serve(wl.copy_fresh(), max_num_seqs=8,
                         scheduling=SCHEDULING_PRESETS["tiered"],
                         autoscaler=_autoscaler_config())
    static = cluster.serve(wl.copy_fresh(), max_num_seqs=8,
                           scheduling=SCHEDULING_PRESETS["tiered"])
    assert auto.num_unserved == static.num_unserved == 0
    assert auto.gpu_seconds < static.gpu_seconds
    slo_auto = auto.metrics.slo_attainment(1.0, 0.05)
    slo_static = static.metrics.slo_attainment(1.0, 0.05)
    assert slo_auto >= slo_static - 0.1


# ----------------------------------------------------------------------
# Determinism of traced autoscaled multi-tenant runs
# ----------------------------------------------------------------------
def test_autoscaled_multitenant_run_is_deterministic(llama7b, system):
    def run():
        cluster = _autoscaled_cluster(llama7b, system)
        return cluster.serve(_flash_workload(), max_num_seqs=8,
                             scheduling=SCHEDULING_PRESETS["tiered-shed"],
                             autoscaler=_autoscaler_config(),
                             telemetry=True)

    a, b = run(), run()
    # Hex-exact result identity (json.dumps floats round-trip exactly).
    assert json.dumps(a.to_json(), sort_keys=True) == \
        json.dumps(b.to_json(), sort_keys=True)
    # Byte-identical Chrome traces.
    buf_a, buf_b = io.StringIO(), io.StringIO()
    write_chrome_trace(buf_a, a.chrome_trace())
    write_chrome_trace(buf_b, b.chrome_trace())
    assert buf_a.getvalue() == buf_b.getvalue()
