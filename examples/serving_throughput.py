"""Serving-throughput study: reproduce the headline Table 4 comparison.

Measures the maximum achievable generation throughput (1024-token prompts,
512-token outputs, device memory budget respected) of TensorRT-LLM-style
FP16 / W4A16 / W8A8, Atom, QuaRot and QServe W4A8KV4 for a chosen model on
A100 and L40S, and prints the cost-efficiency claim of Figure 1 (QServe on
L40S vs TensorRT-LLM on A100).

A second section looks past throughput at serving *latency*: the same engine
is driven under a Poisson arrival load with the legacy stall-prefill loop and
with chunked prefill + preemption enabled, reporting per-request TTFT/TPOT
percentiles and SLO goodput for each scheduling preset.

Run with:  python examples/serving_throughput.py [model-name]
           (model-name from: llama-3-8b, llama-2-7b, mistral-7b, llama-2-13b,
            llama-30b, yi-34b, llama-2-70b, qwen1.5-72b)
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100, L40S
from repro.model import get_config
from repro.serving import (
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    make_uniform_workload,
    max_achievable_throughput,
)

SYSTEMS = ["trt-fp16", "trt-w4a16", "trt-w8a8", "atom-w4a4", "quarot-w4a4",
           "qserve-w4a8kv4-chn", "qserve-w4a8kv4-grp"]

#: Scheduling presets compared in the latency study.
SCHEDULERS = ["legacy", "chunked", "chunked-preempt"]

#: Latency SLO used for the goodput column: 500 ms TTFT, 50 ms/token TPOT.
TTFT_SLO_S, TPOT_SLO_S = 0.5, 0.05


def throughput_study(model_name: str) -> None:
    cfg = get_config(model_name)
    rows = []
    results = {}
    for gpu in (A100, L40S):
        for system in SYSTEMS:
            result = max_achievable_throughput(cfg, gpu, SYSTEM_PRESETS[system])
            results[(gpu.name, system)] = result
            rows.append([gpu.name, system,
                         result.batch if result.batch else "OOM",
                         round(result.tokens_per_second, 1)])
    print(f"Maximum achievable throughput for {model_name} "
          f"(1024 in / 512 out, tokens/s):\n")
    print(format_table(["GPU", "System", "Max batch", "Throughput"], rows))

    best_trt_a100 = max(results[("A100", s)].tokens_per_second
                        for s in ("trt-fp16", "trt-w4a16", "trt-w8a8"))
    qserve_l40s = results[("L40S", "qserve-w4a8kv4-grp")].tokens_per_second
    cost_ratio = A100.price_kusd / L40S.price_kusd
    print(f"\nQServe on L40S reaches {qserve_l40s:.0f} tok/s vs "
          f"{best_trt_a100:.0f} tok/s for the best TensorRT-LLM config on A100 "
          f"({qserve_l40s / best_trt_a100:.2f}x) — on a GPU that costs "
          f"{cost_ratio:.1f}x less (Figure 1).")


def latency_study(model_name: str, num_requests: int = 64,
                  arrival_rate: float = 48.0) -> None:
    """Same engine, Poisson load: compare scheduling presets on latency."""
    cfg = get_config(model_name)
    engine = ServingEngine(cfg, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    workload = make_uniform_workload(num_requests, 1024, 512,
                                     arrival_rate=arrival_rate, seed=1)
    rows = []
    for preset in SCHEDULERS:
        result = engine.serve(workload.copy_fresh(), max_num_seqs=num_requests,
                              scheduling=SCHEDULING_PRESETS[preset])
        m = result.metrics
        rows.append([
            preset,
            round(result.generation_throughput, 1),
            round(m.ttft.mean * 1e3, 1), round(m.ttft.p95 * 1e3, 1),
            round(m.tpot.mean * 1e3, 2), round(m.tpot.p99 * 1e3, 2),
            round(m.slo_goodput(TTFT_SLO_S, TPOT_SLO_S, result.total_time_s), 2),
            result.num_preemptions,
        ])
    print(f"\nScheduler comparison for {model_name} on A100 "
          f"(QServe W4A8KV4, Poisson {arrival_rate:.0f} req/s, "
          f"SLO: TTFT<{TTFT_SLO_S * 1e3:.0f}ms, TPOT<{TPOT_SLO_S * 1e3:.0f}ms):\n")
    print(format_table(
        ["Scheduler", "Tok/s", "TTFT mean (ms)", "TTFT p95 (ms)",
         "TPOT mean (ms)", "TPOT p99 (ms)", "Goodput (req/s)", "Preempt"],
        rows))


def main(model_name: str = "llama-2-7b") -> None:
    throughput_study(model_name)
    latency_study(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
