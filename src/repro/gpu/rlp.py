"""Register-level-parallelism dequantization simulation (Figures 13/14).

The level-2 dequantization of progressive group quantization computes
``(q_u4 - zero) * scale`` for every weight.  NVIDIA GPUs expose ``vadd4`` —
four packed INT8 additions in one INT32 ALU instruction — but no packed INT8
multiply, so the multiply must be *simulated* by multiplying the whole 32-bit
register by a scale padded into the low byte.  That trick only produces the
right answer if every intermediate byte stays inside the signed 8-bit range:

* **subtraction before multiplication** (Figure 14a) computes
  ``(q - zero) * scale`` whose product can reach ±240 and overflow the byte,
  corrupting the packed result;
* **subtraction after multiplication** (Figure 14b) computes
  ``q * scale - zero * scale``; the protective range of progressive
  quantization guarantees ``q * scale`` never leaves INT8, so register-level
  parallelism applies to both the multiply and the ``vadd4`` subtraction.

The functions below emulate the packed arithmetic byte-by-byte so tests can
demonstrate the overflow and the fix, and count the ALU instructions each
order needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "simulate_vadd4",
    "simulate_rlp_dequant",
    "dequantize_subtract_before_multiply",
    "dequantize_subtract_after_multiply",
]


def _wrap_int8(values: np.ndarray) -> np.ndarray:
    """Wrap arbitrary integers into signed 8-bit two's-complement bytes."""
    return ((np.asarray(values, dtype=np.int64) + 128) % 256 - 128).astype(np.int64)


def simulate_vadd4(packed_a: np.ndarray, packed_b: np.ndarray) -> np.ndarray:
    """Packed 4-way INT8 addition (one ``vadd4`` instruction).

    ``packed_a`` / ``packed_b`` are arrays whose last dimension is 4 (the four
    bytes of an INT32 register).  Each byte lane is added independently with
    8-bit wrap-around — exactly what the hardware instruction does.
    """
    a = np.asarray(packed_a, dtype=np.int64)
    b = np.asarray(packed_b, dtype=np.int64)
    if a.shape[-1] != 4 or b.shape[-1] != 4:
        raise ValueError("packed operands must have 4 byte lanes")
    return _wrap_int8(a + b)


@dataclass
class RLPDequantResult:
    """Outcome of a packed dequantization simulation."""

    values: np.ndarray
    overflowed: bool
    alu_instructions: int


def dequantize_subtract_before_multiply(q_u4: np.ndarray, zero: int,
                                        scale: int) -> RLPDequantResult:
    """Packed ``(q - zero) * scale`` (Figure 14a).

    The subtraction uses one ``vadd4`` and leaves *signed* byte lanes.  The
    packed multiplication is simulated by multiplying the whole 32-bit
    register by the scale, which is only valid when every lane, viewed as an
    unsigned byte, times the scale stays below 256 — otherwise the carry
    bleeds into the neighbouring lane and corrupts it.  Negative lanes are
    stored as 0x80..0xFF, so they overflow for any scale ≥ 2; that is exactly
    why the subtraction-before-multiplication order cannot use register-level
    parallelism and would need four scalar multiplies instead.  ``overflowed``
    is also set when the mathematically correct result leaves the INT8 range.
    """
    q = np.asarray(q_u4, dtype=np.int64)
    if q.shape[-1] != 4:
        raise ValueError("expected packed groups of 4 UINT4 values")
    diff = simulate_vadd4(q, np.full_like(q, -zero))
    diff_unsigned = diff % 256
    product = diff * scale
    lane_carry = np.any(diff_unsigned * scale > 255)
    out_of_range = np.any(product > 127) or np.any(product < -128)
    overflow = bool(lane_carry or out_of_range)
    return RLPDequantResult(values=_wrap_int8(product), overflowed=overflow,
                            alu_instructions=2)


def dequantize_subtract_after_multiply(q_u4: np.ndarray, zero: int,
                                       scale: int) -> RLPDequantResult:
    """Packed ``q * scale - (zero * scale)`` (Figure 14b).

    The multiply operates on *unsigned* byte lanes, so it is exact as long as
    ``q * scale`` stays within ``[0, 255]`` — which progressive quantization's
    protective range guarantees (``q ≤ 15``, ``scale ≤ 16``).  The following
    ``vadd4`` subtraction wraps modulo 256, and because the true result
    ``(q - zero) * scale`` is guaranteed to lie in ``[-128, 127]``, the wrap
    recovers it exactly: two ALU instructions for four weights.
    ``overflowed`` reports whether the byte-range guarantee held.
    """
    q = np.asarray(q_u4, dtype=np.int64)
    if q.shape[-1] != 4:
        raise ValueError("expected packed groups of 4 UINT4 values")
    product = q * scale
    overflow = bool(np.any(product > 255) or np.any(product < 0))
    zero_scaled = zero * scale
    result = simulate_vadd4(_wrap_int8(product), np.full_like(q, -zero_scaled))
    return RLPDequantResult(values=result, overflowed=overflow, alu_instructions=2)


def simulate_rlp_dequant(q_u4: np.ndarray, zeros: np.ndarray, scales: np.ndarray,
                         order: str = "after") -> tuple[np.ndarray, bool, int]:
    """Dequantize a ``[groups, 4]`` array of UINT4 codes with packed arithmetic.

    Returns ``(int8 values, any_overflow, total ALU instructions)``.  The
    reference (correct) dequantization is ``(q - zero) * scale``; the
    "after" order reproduces it exactly whenever no overflow occurs.
    """
    q = np.asarray(q_u4, dtype=np.int64)
    zeros = np.asarray(zeros, dtype=np.int64).reshape(-1)
    scales = np.asarray(scales, dtype=np.int64).reshape(-1)
    if q.ndim != 2 or q.shape[1] != 4:
        raise ValueError("q_u4 must be [groups, 4]")
    if zeros.size != q.shape[0] or scales.size != q.shape[0]:
        raise ValueError("zeros/scales must have one entry per group")
    fn = (dequantize_subtract_after_multiply if order == "after"
          else dequantize_subtract_before_multiply)
    outputs = np.empty_like(q)
    overflow = False
    instructions = 0
    for i in range(q.shape[0]):
        res = fn(q[i:i + 1], int(zeros[i]), int(scales[i]))
        outputs[i] = res.values
        overflow |= res.overflowed
        instructions += res.alu_instructions
    return outputs.astype(np.int64), overflow, instructions
