"""Quantized linear layers.

Three drop-in replacements for :class:`repro.model.layers.Linear`:

* :class:`FakeQuantLinear` — generic simulated quantization used by the
  baselines (W4A16, W4A4, …): the weight is stored already
  quantize-dequantized, activations are fake-quantized on the fly.
* :class:`W8A8Linear` — integer execution of per-channel weight / per-token
  activation INT8 GEMM (the SmoothQuant / TensorRT-LLM W8A8 path): INT8 codes,
  INT32 accumulation, FP scaling in the epilogue.
* :class:`W4A8Linear` — the QServe path: progressive-group-quantized weights
  are dequantized *to INT8* in the "main loop" (never to floating point), the
  GEMM accumulates in INT32 and all floating-point scaling happens in the
  epilogue, mirroring Figure 5d and Equation (12).

All three support the two input transforms the QoQ pipeline may fuse in front
of a layer: a per-channel smoothing scale (divide the activation by ``λ``)
and/or a rotation matrix (multiply the activation by ``Q``).  In the real
system both are folded into the preceding kernel; here they are applied
explicitly so that the arithmetic, and hence the accuracy impact, is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quant.dtypes import FP16, INT4, INT8
from repro.quant.progressive import (
    ProgressiveQuantizedWeight,
    progressive_dequantize_level1,
    progressive_quantize,
)
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["ActQuantSpec", "FakeQuantLinear", "W8A8Linear", "W4A8Linear"]

_EPS = 1e-12


@dataclass(frozen=True)
class ActQuantSpec:
    """Activation quantization applied at a linear layer's input.

    ``bits=16`` disables activation quantization (weight-only schemes).
    ``group_size`` selects per-group activation quantization within each token
    (used by Atom/QuaRot W4A4 g128); ``None`` means per-token.
    """

    bits: int = 16
    symmetric: bool = True
    group_size: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return self.bits < 16


def _fake_quant_activation(x: np.ndarray, spec: ActQuantSpec) -> np.ndarray:
    if not spec.enabled:
        return x
    fmt = INT8 if spec.bits == 8 else INT4
    granularity = Granularity.PER_GROUP if spec.group_size else Granularity.PER_TOKEN
    flat = x.reshape(-1, x.shape[-1])
    q = fake_quantize(flat, fmt, granularity=granularity, symmetric=spec.symmetric,
                      group_size=spec.group_size)
    return q.reshape(x.shape)


def _quantize_activation_int8(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-token symmetric INT8 quantization returning (codes, scales)."""
    flat = x.reshape(-1, x.shape[-1])
    amax = np.max(np.abs(flat), axis=1, keepdims=True)
    scales = np.maximum(amax, _EPS) / INT8.symmetric_qmax
    scales = scales.astype(FP16).astype(np.float64)
    codes = np.clip(np.round(flat / scales), -INT8.symmetric_qmax, INT8.symmetric_qmax)
    return codes.astype(np.int8), scales


class _TransformedLinear:
    """Shared input-transform / shape plumbing for quantized linears.

    The three optional transforms — smoothing scale, rotation and channel
    permutation — are applied to the activation in that order; the stored
    weight must have been prepared with the matching transforms
    (``W·diag(λ)`` on columns, then ``W @ Q``, then column permutation) so the
    product is mathematically unchanged while the quantization error drops.
    """

    def __init__(self, name: str, in_features: int, out_features: int,
                 input_scale: Optional[np.ndarray] = None,
                 rotation: Optional[np.ndarray] = None,
                 permutation: Optional[np.ndarray] = None) -> None:
        self.name = name
        self.in_features = in_features
        self.out_features = out_features
        self.input_scale = (None if input_scale is None
                            else np.asarray(input_scale, dtype=np.float64).reshape(-1))
        self.rotation = None if rotation is None else np.asarray(rotation, np.float64)
        self.permutation = (None if permutation is None
                            else np.asarray(permutation, dtype=np.int64).reshape(-1))
        if self.input_scale is not None and self.input_scale.size != in_features:
            raise ValueError("input_scale must have in_features elements")
        if self.rotation is not None and self.rotation.shape != (in_features, in_features):
            raise ValueError("rotation must be [in_features, in_features]")
        if self.permutation is not None:
            if (self.permutation.size != in_features
                    or not np.array_equal(np.sort(self.permutation),
                                          np.arange(in_features))):
                raise ValueError("permutation must be a permutation of the input channels")

    def _transform_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: input features {x.shape[-1]} != {self.in_features}")
        if self.input_scale is not None:
            x = x / self.input_scale
        if self.rotation is not None:
            x = x @ self.rotation
        if self.permutation is not None:
            x = x[..., self.permutation]
        return x


class FakeQuantLinear(_TransformedLinear):
    """Simulated-quantization linear: ``y = act_quant(T(x)) @ W_q^T``.

    ``weight`` is stored already fake-quantized (and already expressed in the
    transformed input basis if a smoothing scale / rotation is attached).
    """

    def __init__(self, weight: np.ndarray, name: str = "",
                 act_spec: ActQuantSpec = ActQuantSpec(),
                 input_scale: Optional[np.ndarray] = None,
                 rotation: Optional[np.ndarray] = None,
                 permutation: Optional[np.ndarray] = None) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        super().__init__(name, weight.shape[1], weight.shape[0],
                         input_scale=input_scale, rotation=rotation,
                         permutation=permutation)
        self.weight = weight
        self.act_spec = act_spec

    def __call__(self, x: np.ndarray) -> np.ndarray:
        t = self._transform_input(x)
        t = _fake_quant_activation(t, self.act_spec)
        return t @ self.weight.T


class W8A8Linear(_TransformedLinear):
    """Per-channel W8 / per-token A8 integer GEMM (TensorRT-LLM W8A8 path)."""

    def __init__(self, weight: np.ndarray, name: str = "",
                 input_scale: Optional[np.ndarray] = None,
                 rotation: Optional[np.ndarray] = None,
                 permutation: Optional[np.ndarray] = None) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        super().__init__(name, weight.shape[1], weight.shape[0],
                         input_scale=input_scale, rotation=rotation,
                         permutation=permutation)
        amax = np.max(np.abs(weight), axis=1, keepdims=True)
        self.weight_scales = (np.maximum(amax, _EPS) / INT8.symmetric_qmax)
        self.weight_scales = self.weight_scales.astype(FP16).astype(np.float64)
        self.qweight = np.clip(
            np.round(weight / self.weight_scales),
            -INT8.symmetric_qmax, INT8.symmetric_qmax).astype(np.int8)

    @property
    def weight(self) -> np.ndarray:
        """Dequantized weight (for inspection / error measurement)."""
        return self.qweight.astype(np.float64) * self.weight_scales

    def __call__(self, x: np.ndarray) -> np.ndarray:
        t = self._transform_input(x)
        lead_shape = t.shape[:-1]
        codes, act_scales = _quantize_activation_int8(t)
        acc = codes.astype(np.int32) @ self.qweight.astype(np.int32).T
        out = acc.astype(np.float64) * act_scales * self.weight_scales.reshape(1, -1)
        return out.reshape(*lead_shape, self.out_features)


class W4A8Linear(_TransformedLinear):
    """QServe W4A8 GEMM: progressive-group weights, INT8 tensor-core math.

    The call path mirrors the kernel:

    1. per-token symmetric INT8 activation quantization (fused into the
       preceding norm/activation kernel in the real system);
    2. main loop: level-2 dequantization of the UINT4 weights to the INT8
       intermediate (integer multiply + subtract only — the protective range
       guarantees no overflow);
    3. INT8 x INT8 → INT32 matrix multiply;
    4. epilogue: outer-product scaling by ``s_x ⊗ s_w`` (Equation 12).
    """

    def __init__(self, weight: Optional[np.ndarray] = None, name: str = "",
                 group_size: Optional[int] = 128,
                 input_scale: Optional[np.ndarray] = None,
                 rotation: Optional[np.ndarray] = None,
                 permutation: Optional[np.ndarray] = None,
                 pqw: Optional[ProgressiveQuantizedWeight] = None) -> None:
        if pqw is None:
            if weight is None:
                raise ValueError("either weight or pqw must be provided")
            pqw = progressive_quantize(np.asarray(weight, np.float64), group_size=group_size)
        super().__init__(name, pqw.in_channels, pqw.out_channels,
                         input_scale=input_scale, rotation=rotation,
                         permutation=permutation)
        self.pqw = pqw
        # The INT8 intermediate is precomputed once here; the cost of doing it
        # per-main-loop-iteration is what the GPU cost model charges for.
        self._qweight_int8 = progressive_dequantize_level1(pqw)
        self._weight_scales = pqw.scales_l1.astype(np.float64).reshape(1, -1)

    @property
    def weight(self) -> np.ndarray:
        """Fully dequantized weight."""
        return self._qweight_int8.astype(np.float64) * self._weight_scales.T

    @property
    def group_size(self) -> Optional[int]:
        return self.pqw.group_size

    def __call__(self, x: np.ndarray) -> np.ndarray:
        t = self._transform_input(x)
        lead_shape = t.shape[:-1]
        codes, act_scales = _quantize_activation_int8(t)
        acc = codes.astype(np.int32) @ self._qweight_int8.astype(np.int32).T
        out = acc.astype(np.float64) * act_scales * self._weight_scales
        return out.reshape(*lead_shape, self.out_features)
