"""Requests and workloads for the serving simulator.

Besides the paper's uniform 1024-in/512-out benchmark workload
(:func:`make_uniform_workload`), this module provides two generators for
stress-testing schedulers under realistic traffic:

* :func:`make_lognormal_workload` — ShareGPT-like lognormal mixes of prompt
  and output lengths, optionally with Poisson arrivals;
* :func:`make_bursty_workload` — on/off (Markov-modulated Poisson) arrivals:
  bursts of traffic at a high rate separated by idle gaps, the pattern that
  exposes head-of-line blocking and page-pressure preemption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = [
    "RequestState",
    "Request",
    "Workload",
    "make_uniform_workload",
    "make_lognormal_workload",
    "make_bursty_workload",
    "make_router_study_workload",
]


class RequestState(str, enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    WAITING = "waiting"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request.

    The throughput benchmark of the paper uses 1024 prompt tokens and 512
    output tokens per request; :func:`make_uniform_workload` builds exactly
    that.

    Prefill progress is tracked explicitly (``prefilled`` out of
    ``prefill_target`` tokens) so chunked prefill can spread a prompt over
    several iterations, and so a preempted request can be re-prefilled over
    ``prompt_len + generated`` tokens on readmission (recompute-style
    preemption).
    """

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    prefill_done_time: Optional[float] = None
    finish_time: Optional[float] = None
    # Prefill progress within the current residency (set at admission).
    prefilled: int = 0
    prefill_target: int = 0
    # Latency bookkeeping.
    first_token_time: Optional[float] = None
    admitted_time: Optional[float] = None
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")
        if self.prefill_target <= 0:
            self.prefill_target = self.prompt_len

    @property
    def context_len(self) -> int:
        """Tokens currently occupying KV cache (prompt + generated)."""
        return self.prompt_len + self.generated

    @property
    def prefill_remaining(self) -> int:
        """Prompt (or recompute) tokens still to prefill this residency."""
        return max(0, self.prefill_target - self.prefilled)

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_len

    def copy_fresh(self) -> "Request":
        """A pristine copy (same id/lengths/arrival, no progress)."""
        return Request(request_id=self.request_id, prompt_len=self.prompt_len,
                       output_len=self.output_len, arrival_time=self.arrival_time)


@dataclass
class Workload:
    """A batch of requests plus summary helpers."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_len for r in self.requests)

    def copy_fresh(self) -> "Workload":
        """A pristine copy of the workload.

        ``ServingEngine.serve`` mutates request state in place; use this to
        run the same workload under several scheduling configurations.
        """
        return Workload(requests=[r.copy_fresh() for r in self.requests])


def make_uniform_workload(num_requests: int, prompt_len: int = 1024,
                          output_len: int = 512,
                          arrival_rate: Optional[float] = None,
                          seed: int = 0) -> Workload:
    """Build the paper's benchmark workload.

    With ``arrival_rate=None`` every request is available at time zero (the
    "maximum achievable throughput" setting); otherwise arrivals follow a
    Poisson process with the given rate (requests/second).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    requests = [
        Request(request_id=i, prompt_len=prompt_len, output_len=output_len,
                arrival_time=float(arrivals[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


#: ShareGPT-like length-distribution defaults, shared by
#: :func:`make_lognormal_workload` and :func:`make_bursty_workload`:
#: (mean_log, sigma_log, min_len, max_len) of the clipped lognormal.
_PROMPT_LOGNORMAL = (6.0, 0.8, 4, 3072)
_OUTPUT_LOGNORMAL = (5.0, 0.9, 4, 1024)


def _lognormal_lengths(rng: np.random.Generator, n: int, mean_log: float,
                       sigma_log: float, lo: int, hi: int) -> np.ndarray:
    lengths = rng.lognormal(mean=mean_log, sigma=sigma_log, size=n)
    return np.clip(np.round(lengths), lo, hi).astype(np.int64)


def make_lognormal_workload(num_requests: int,
                            prompt_mean_log: float = _PROMPT_LOGNORMAL[0],
                            prompt_sigma_log: float = _PROMPT_LOGNORMAL[1],
                            output_mean_log: float = _OUTPUT_LOGNORMAL[0],
                            output_sigma_log: float = _OUTPUT_LOGNORMAL[1],
                            min_len: int = _PROMPT_LOGNORMAL[2],
                            max_prompt_len: int = _PROMPT_LOGNORMAL[3],
                            max_output_len: int = _OUTPUT_LOGNORMAL[3],
                            arrival_rate: Optional[float] = None,
                            seed: int = 0) -> Workload:
    """ShareGPT-like workload: lognormal prompt and output length mixes.

    The defaults give median prompts of ~400 tokens and median outputs of
    ~150 tokens with heavy right tails, roughly the shape of the ShareGPT
    conversation traces used by vLLM's serving benchmarks.  Arrivals are
    Poisson when ``arrival_rate`` is set, otherwise all at time zero.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    prompts = _lognormal_lengths(rng, num_requests, prompt_mean_log,
                                 prompt_sigma_log, min_len, max_prompt_len)
    outputs = _lognormal_lengths(rng, num_requests, output_mean_log,
                                 output_sigma_log, min_len, max_output_len)
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    requests = [
        Request(request_id=i, prompt_len=int(prompts[i]),
                output_len=int(outputs[i]), arrival_time=float(arrivals[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


def make_bursty_workload(num_requests: int,
                         burst_rate: float = 8.0,
                         mean_burst_s: float = 4.0,
                         mean_idle_s: float = 8.0,
                         prompt_len: int = 1024,
                         output_len: int = 512,
                         lognormal_lengths: bool = False,
                         seed: int = 0) -> Workload:
    """On/off bursty arrivals (Markov-modulated Poisson process).

    Traffic alternates between ON periods (exponential duration with mean
    ``mean_burst_s``, Poisson arrivals at ``burst_rate`` requests/s) and
    silent OFF periods (mean ``mean_idle_s``).  The long-run average rate is
    ``burst_rate * mean_burst_s / (mean_burst_s + mean_idle_s)``, but the
    instantaneous rate during a burst is much higher — exactly the pattern
    that overflows KV-cache pages and stresses admission/preemption policies.

    With ``lognormal_lengths=True`` request lengths follow the
    :func:`make_lognormal_workload` defaults instead of being uniform.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if burst_rate <= 0 or mean_burst_s <= 0 or mean_idle_s < 0:
        raise ValueError("burst_rate/mean_burst_s must be positive, "
                         "mean_idle_s non-negative")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        burst_end = t + rng.exponential(mean_burst_s)
        while len(arrivals) < num_requests:
            t += rng.exponential(1.0 / burst_rate)
            if t > burst_end:
                break
            arrivals.append(t)
        t = burst_end + rng.exponential(mean_idle_s) if mean_idle_s > 0 else burst_end
    arrivals_arr = np.asarray(arrivals[:num_requests])

    if lognormal_lengths:
        prompts = _lognormal_lengths(rng, num_requests, *_PROMPT_LOGNORMAL)
        outputs = _lognormal_lengths(rng, num_requests, *_OUTPUT_LOGNORMAL)
    else:
        prompts = np.full(num_requests, prompt_len, dtype=np.int64)
        outputs = np.full(num_requests, output_len, dtype=np.int64)
    requests = [
        Request(request_id=i, prompt_len=int(prompts[i]),
                output_len=int(outputs[i]), arrival_time=float(arrivals_arr[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


def make_router_study_workload(num_requests: int = 120, seed: int = 1) -> Workload:
    """The canonical bursty heavy-tailed workload of the cluster router study.

    One fixed parameterisation of :func:`make_bursty_workload` shared by the
    router A/B benchmark (``benchmarks/bench_cluster_scaling.py``), the
    cluster example and the regression test asserting that the
    least-outstanding router beats round-robin on p95 TTFT — so all three
    exercise, and stay honest about, the same traffic.
    """
    return make_bursty_workload(num_requests, burst_rate=24.0, mean_burst_s=6.0,
                                mean_idle_s=6.0, lognormal_lengths=True,
                                seed=seed)
