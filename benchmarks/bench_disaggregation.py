"""Benchmark for disaggregated prefill/decode serving.

Sweeps prefill:decode replica ratios at a fixed GPU count against the
all-mixed baseline on the canonical bursty heavy-tailed workload
(``make_router_study_workload``): ``test_ratio_sweep`` records per-ratio
throughput, TTFT/TPOT percentiles, migration counts and the exposed
KV-transfer delay — the headline being that pure decode replicas never share
an iteration with prompt chunks, so the split cuts the TPOT tail at the cost
of TTFT (fewer prefill engines plus the transfer hop).
``test_transfer_link_overhead`` isolates the handoff's price by serving the
same split over NVLink vs PCIe with and without layer-by-layer overlap.
"""

from repro.gpu import A100, NVLINK, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_router_study_workload,
)

#: Role assignments compared at equal GPU count (4 replicas).
RATIOS = {
    "mixed-4": ["mixed"] * 4,
    "1p-3d": ["prefill"] + ["decode"] * 3,
    "2p-2d": ["prefill"] * 2 + ["decode"] * 2,
    "3p-1d": ["prefill"] * 3 + ["decode"],
}


def _cluster(roles, **kwargs):
    return ClusterEngine(get_config("llama-2-7b"), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         num_replicas=len(roles), max_seq_len=4096,
                         roles=roles, **kwargs)


def _serve(cluster, workload):
    router = "disaggregated" if cluster.disaggregated else "least-outstanding"
    return cluster.serve(workload.copy_fresh(), router=router, max_num_seqs=6,
                         scheduling=SCHEDULING_PRESETS["chunked"])


def test_ratio_sweep(benchmark, serving_json):
    """Prefill:decode ratio sweep vs mixed replicas at equal GPU count."""
    workload = make_router_study_workload()

    def run():
        return {name: _serve(_cluster(roles), workload)
                for name, roles in RATIOS.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("disaggregation_ratio_sweep", results)
    print()
    for name, result in results.items():
        m = result.metrics
        xfer = result.transfer_delay
        print(f"{name:8s} {result.generation_throughput:7.1f} tok/s  "
              f"TTFT p95 {m.ttft.p95 * 1e3:8.1f} ms  "
              f"TPOT p95/p99 {m.tpot.p95 * 1e3:5.2f}/{m.tpot.p99 * 1e3:5.2f} ms  "
              f"migr {result.num_migrations:3d}  "
              f"xfer p95 {xfer.p95 * 1e6:6.1f} us  "
              f"util {result.role_utilization()}")
    mixed = results["mixed-4"]
    assert all(r.num_finished == 120 for r in results.values())
    # Acceptance: a split beats mixed on the TPOT tail at equal GPU count,
    # and its handoff overhead is recorded.
    best_split = min((r for name, r in results.items() if name != "mixed-4"),
                     key=lambda r: r.metrics.tpot.p95)
    assert best_split.metrics.tpot.p95 < mixed.metrics.tpot.p95
    assert best_split.num_migrations == 120
    assert best_split.transfer_delay.mean > 0.0
    assert mixed.num_migrations == 0


def test_transfer_link_overhead(benchmark):
    """The same 1:3 split over NVLink vs PCIe, with/without overlap."""
    workload = make_router_study_workload()
    roles = RATIOS["1p-3d"]
    links = {
        "nvlink+overlap": dict(transfer_link=NVLINK, transfer_overlap=True),
        "pcie+overlap": dict(transfer_link=PCIE_GEN4, transfer_overlap=True),
        "pcie-no-overlap": dict(transfer_link=PCIE_GEN4,
                                transfer_overlap=False),
    }

    def run():
        return {name: _serve(_cluster(roles, **kwargs), workload)
                for name, kwargs in links.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        xfer = result.transfer_delay
        print(f"{name:16s} TTFT p95 {result.metrics.ttft.p95 * 1e3:8.1f} ms  "
              f"xfer mean/p95 {xfer.mean * 1e6:7.1f}/{xfer.p95 * 1e6:7.1f} us")
    nv = results["nvlink+overlap"].transfer_delay.mean
    pcie = results["pcie+overlap"].transfer_delay.mean
    raw = results["pcie-no-overlap"].transfer_delay.mean
    assert nv < pcie < raw          # slower link and no overlap both cost more
    assert all(r.num_finished == 120 for r in results.values())
