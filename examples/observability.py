"""Serving-telemetry walkthrough: trace a cluster run end to end.

End-of-run aggregates say *that* p99 TTFT spiked; telemetry says *why*.
This example turns the tracing layer on for a bursty cluster run and walks
the full observability loop:

1. **Traced cluster run** — four replicas behind a least-outstanding router
   with ``telemetry=True``: every request's lifecycle (queued → admitted →
   prefill chunks → decode → finish) and every engine iteration is recorded
   on the shared simulated clock, at zero cost to the simulation itself
   (traced and untraced runs produce bitwise-identical results).
2. **Chrome trace export** — the per-replica tracers merge into one
   trace-event JSON file.  Open it at https://ui.perfetto.dev (or
   ``chrome://tracing``): replicas appear as processes, requests as async
   spans with nested phase spans, iterations as slices, queue depth and KV
   utilization as counter tracks.
3. **Counter registry** — the scattered run counters (admission scans, page
   ledger, prefix/speculation stats) unified in one registry with a
   Prometheus-style text snapshot.
4. **SLO attribution** — reconstruct each request's TTFT *exactly* from its
   spans and attribute it to phases: the answer to "which phase caused the
   violations" (also available offline via ``tools/trace_report.py``).
5. **Time series** — the sampled queue-depth / KV-utilization curves that
   show the burst arriving and draining.

Run with:  python examples/observability.py [model-name] [--trace-out PATH]
"""

import argparse

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    PHASES,
    ClusterEngine,
    SCHEDULING_PRESETS,
    attribute_slo,
    get_system,
    make_bursty_workload,
    write_chrome_trace,
)

# Tight objectives on purpose: the interesting part of the demo is *which
# phase* the violators lose their budget to, so the SLO sits near the p50.
TTFT_SLO_S = 0.05
TPOT_SLO_S = 0.02


def main(model_name: str, trace_out: str) -> None:
    model = get_config(model_name)
    system = get_system("qserve-w4a8kv4-grp")

    print("=" * 72)
    print("1. Traced cluster run (4 replicas, bursty traffic)")
    print("=" * 72)
    cluster = ClusterEngine(model, A100, system, num_replicas=4)
    workload = make_bursty_workload(num_requests=240, seed=13)
    result = cluster.serve(workload, router="least-outstanding",
                           max_num_seqs=16,
                           scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                           telemetry=True)
    print(f"finished {result.num_finished}/{len(workload.requests)} requests, "
          f"{result.generation_throughput:.0f} tok/s, "
          f"{result.num_preemptions} preemptions")
    tracer = result.tracers[0]
    print(f"replica0 recorded {len(tracer.events)} span events, "
          f"{len(tracer.iterations)} iterations, "
          f"{len(tracer.series)} time-series samples")

    print()
    print("=" * 72)
    print("2. Chrome trace export (open in Perfetto)")
    print("=" * 72)
    trace = result.chrome_trace()
    write_chrome_trace(trace_out, trace)
    print(f"wrote {len(trace['traceEvents'])} trace events -> {trace_out}")

    print()
    print("=" * 72)
    print("3. Unified counter registry (Prometheus-style excerpt)")
    print("=" * 72)
    counters = result.counters()
    for line in counters.prometheus_text().splitlines():
        if line.startswith("repro_scheduler_") or \
                line.startswith("repro_kv_pages_"):
            print(line)

    print()
    print("=" * 72)
    print("4. SLO attribution: which phase ate the TTFT budget?")
    print("=" * 72)
    att = attribute_slo(trace, TTFT_SLO_S, TPOT_SLO_S)
    print(f"attainment {att.attainment * 100:.1f}% "
          f"({len(att.violators)} of {len(att.records)} requests violated "
          f"TTFT<={TTFT_SLO_S * 1e3:.0f}ms / TPOT<={TPOT_SLO_S * 1e3:.0f}ms)")
    rows = []
    means_all = att.mean_phase_seconds()
    means_bad = att.mean_phase_seconds(violators_only=True)
    for phase in (*PHASES, "other"):
        rows.append([phase, means_all[phase] * 1e3, means_bad[phase] * 1e3])
    print(format_table(["phase", "mean ms (all)", "mean ms (violators)"],
                       rows, float_fmt="{:.2f}"))
    if att.violators:
        print(f"dominant violator phase: {att.dominant_phase()}")

    print()
    print("=" * 72)
    print("5. Sampled time series (replica0: the burst arriving and draining)")
    print("=" * 72)
    series = tracer.series
    stride = max(1, len(series) // 10)
    rows = [[f"{t:.2f}", queue, running, f"{util * 100:.0f}%", finished]
            for t, queue, running, util, _free, finished
            in series[::stride]]
    print(format_table(
        ["t (s)", "queued", "running", "KV util", "finished"], rows))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("model", nargs="?", default="llama-2-7b")
    parser.add_argument("--trace-out", default="observability_trace.json",
                        help="where to write the Chrome trace JSON")
    args = parser.parse_args()
    main(args.model, args.trace_out)
