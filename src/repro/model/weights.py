"""Synthetic model weights with the structure LLM quantization targets.

Real checkpoints cannot be shipped offline, so :func:`generate_model` builds a
transformer whose weights (a) implement a *real predictive circuit* for the
synthetic bigram language of :mod:`repro.data.corpus`, and (b) reproduce the
empirical properties the paper's techniques exploit:

1. **Predictive circuit** — the attention blocks implement a "copy current
   token" pathway: query/key projections are head-wise projections of the
   hidden state so attention concentrates on the current position, value /
   output projections route (a scaled copy of) the hidden state back into the
   residual stream, and the LM head decodes the bigram distribution from the
   final hidden state.  The model therefore achieves a perplexity well below
   the uniform baseline, and *any* perturbation introduced by quantizing
   weights, activations or the KV cache degrades it — exactly the signal the
   paper's accuracy tables measure.
2. **Activation outlier channels** — a fixed set of hidden channels carries
   ~8x larger activations (planted through the embedding and the FFN down
   projection), the SmoothQuant/AWQ observation that motivates rotation,
   smoothing and activation-aware reordering (Section 4.3).
3. **Key outliers** — each KV head's Key projection has a few planted outlier
   channels (~6x), reproducing Figure 7; SmoothAttention exists to fix exactly
   this.
4. **Heavy-tailed weights** — the random components have per-row scale jitter
   and sparse large entries so that clipping (Section 4.3.4) and per-group
   quantization matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.model.config import ModelConfig
from repro.model.layers import Linear

__all__ = ["OutlierProfile", "generate_block_weights", "generate_model", "fit_lm_head"]


@dataclass(frozen=True)
class OutlierProfile:
    """Controls the planted structure of synthetic weights.

    Attributes
    ----------
    activation_outlier_fraction:
        Fraction of hidden channels that behave as persistent activation
        outlier channels.
    activation_outlier_scale:
        Magnitude multiplier of those channels (the paper reports ~10x).
    key_outlier_channels_per_head:
        Number of planted outlier channels in each Key head (Figure 7).
    key_outlier_scale:
        Magnitude multiplier for the Key outlier channels.
    weight_scale_jitter:
        Log-normal sigma of per-output-channel scales of the random weight
        components.
    heavy_tail_fraction:
        Fraction of individual weights replaced by heavy-tailed draws, which
        makes clipping (Section 4.3.4) matter.
    attention_gain:
        Scale of the attention block's contribution to the residual stream.
    ffn_gain:
        Scale of the FFN block's contribution to the residual stream.
    score_sharpness:
        Multiplier on the query/key projections controlling how peaked the
        self-attention distribution is.
    """

    activation_outlier_fraction: float = 0.03
    activation_outlier_scale: float = 8.0
    key_outlier_channels_per_head: int = 2
    key_outlier_scale: float = 6.0
    weight_scale_jitter: float = 0.3
    heavy_tail_fraction: float = 0.005
    attention_gain: float = 0.5
    ffn_gain: float = 0.15
    score_sharpness: float = 1.25


def _randomize(rng: np.random.Generator, weight: np.ndarray,
               profile: OutlierProfile, noise_scale: float) -> np.ndarray:
    """Add per-row scale jitter, Gaussian noise and a heavy tail to ``weight``."""
    out_features, in_features = weight.shape
    noise = rng.normal(0.0, noise_scale / np.sqrt(in_features),
                       size=weight.shape)
    row_scale = np.exp(rng.normal(0.0, profile.weight_scale_jitter,
                                  size=(out_features, 1)))
    weight = (weight + noise) * row_scale
    n_tail = int(profile.heavy_tail_fraction * weight.size)
    if n_tail > 0:
        idx = rng.choice(weight.size, size=n_tail, replace=False)
        flat = weight.reshape(-1)
        flat[idx] *= rng.uniform(3.0, 6.0, size=n_tail)
    return weight


def _semi_orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """A matrix with (approximately) orthonormal rows."""
    a = rng.normal(0.0, 1.0, size=(rows, cols))
    # Orthonormalise the rows via QR on the transpose.
    q, _ = np.linalg.qr(a.T)
    return q[:, :rows].T


def _pick_outlier_channels(rng: np.random.Generator, hidden: int,
                           fraction: float) -> np.ndarray:
    n = max(1, int(round(hidden * fraction)))
    return np.sort(rng.choice(hidden, size=n, replace=False))


def generate_block_weights(
    rng: np.random.Generator,
    config: ModelConfig,
    layer_idx: int,
    profile: OutlierProfile,
    activation_outliers: np.ndarray,
):
    """Generate the weights of a single transformer block.

    Returns a :class:`repro.model.transformer.BlockWeights` (imported lazily to
    avoid a circular import).
    """
    from repro.model.transformer import BlockWeights

    h, kv = config.hidden_size, config.kv_dim
    inter = config.intermediate_size
    head_dim = config.head_dim
    ratio = config.gqa_ratio
    prefix = f"layers.{layer_idx}"

    # Per-KV-head projection bases shared by Q and K so that attention scores
    # approximate hidden-state similarity and peak at the current position.
    qk_bases = [_semi_orthogonal(rng, head_dim, h) for _ in range(config.num_kv_heads)]
    v_bases = [_semi_orthogonal(rng, head_dim, h) for _ in range(config.num_kv_heads)]

    wq = np.zeros((h, h))
    for head in range(config.num_heads):
        base = qk_bases[head // ratio]
        wq[head * head_dim:(head + 1) * head_dim, :] = base * profile.score_sharpness
    wk = np.zeros((kv, h))
    wv = np.zeros((kv, h))
    for kv_head in range(config.num_kv_heads):
        wk[kv_head * head_dim:(kv_head + 1) * head_dim, :] = (
            qk_bases[kv_head] * profile.score_sharpness)
        wv[kv_head * head_dim:(kv_head + 1) * head_dim, :] = v_bases[kv_head]

    # Plant per-head Key outlier channels (Figure 7).
    for kv_head in range(config.num_kv_heads):
        chans = rng.choice(head_dim, size=profile.key_outlier_channels_per_head,
                           replace=False)
        wk[kv_head * head_dim + chans, :] *= profile.key_outlier_scale

    # The output projection inverts the concatenated value projection so the
    # attention block contributes ``attention_gain * hidden_state`` when it
    # attends to the current token.
    value_map = np.zeros((h, h))
    for head in range(config.num_heads):
        base = v_bases[head // ratio]
        value_map[head * head_dim:(head + 1) * head_dim, :] = base
    wo = profile.attention_gain * np.linalg.pinv(value_map)

    wq = _randomize(rng, wq, profile, noise_scale=0.1)
    wk = _randomize(rng, wk, profile, noise_scale=0.1)
    wv = _randomize(rng, wv, profile, noise_scale=0.1)
    wo = _randomize(rng, wo, profile, noise_scale=0.1)

    # FFN: random projections whose output is scaled to perturb (not dominate)
    # the residual stream.  Columns of gate/up corresponding to activation
    # outlier channels are boosted so those channels matter (the AWQ salience
    # structure), and rows of the down projection write back into the outlier
    # channels so the outliers persist through depth.
    w_gate = rng.normal(0.0, 1.0 / np.sqrt(h), size=(inter, h))
    w_up = rng.normal(0.0, 1.0 / np.sqrt(h), size=(inter, h))
    w_gate[:, activation_outliers] *= 2.0
    w_up[:, activation_outliers] *= 2.0
    w_down = rng.normal(0.0, profile.ffn_gain / np.sqrt(inter), size=(h, inter))
    w_down[activation_outliers, :] *= profile.activation_outlier_scale / 2.0
    w_gate = _randomize(rng, w_gate, profile, noise_scale=0.05)
    w_up = _randomize(rng, w_up, profile, noise_scale=0.05)
    w_down = _randomize(rng, w_down, profile, noise_scale=0.01)

    return BlockWeights(
        attn_norm=np.abs(rng.normal(1.0, 0.05, size=h)),
        q_proj=Linear(wq, name=f"{prefix}.attn.q_proj"),
        k_proj=Linear(wk, name=f"{prefix}.attn.k_proj"),
        v_proj=Linear(wv, name=f"{prefix}.attn.v_proj"),
        o_proj=Linear(wo, name=f"{prefix}.attn.o_proj"),
        ffn_norm=np.abs(rng.normal(1.0, 0.05, size=h)),
        gate_proj=Linear(w_gate, name=f"{prefix}.ffn.gate_proj"),
        up_proj=Linear(w_up, name=f"{prefix}.ffn.up_proj"),
        down_proj=Linear(w_down, name=f"{prefix}.ffn.down_proj"),
    )


def fit_lm_head(
    model,
    train_tokens: np.ndarray,
    bigram_matrix: np.ndarray,
    num_sequences: int = 12,
    seq_len: int = 64,
    logit_scale: float = 6.0,
    ridge: float = 1e-3,
    seed: int = 0,
) -> None:
    """Calibrate the LM head so the model decodes the corpus' bigram language.

    The model is run (without the LM head) over sequences from
    ``train_tokens``; a ridge regression then maps each final hidden state to
    the (scaled, centred) log next-token distribution of its input token.
    This is a linear probe fitted on the *unquantized* model — analogous to
    how real checkpoints were trained in full precision — so that every
    quantized variant is measured against the same fixed readout and any
    perturbation of the hidden states shows up as a perplexity increase.
    """
    train_tokens = np.asarray(train_tokens, dtype=np.int64)
    bigram_matrix = np.asarray(bigram_matrix, dtype=np.float64)
    vocab = model.config.vocab_size
    if bigram_matrix.shape != (vocab, vocab):
        raise ValueError("bigram_matrix must be [vocab_size, vocab_size]")

    log_bigram = np.log(bigram_matrix + 1e-8)
    log_bigram = log_bigram - log_bigram.mean(axis=1, keepdims=True)
    log_bigram = log_bigram / (np.abs(log_bigram).max() + 1e-12) * logit_scale

    rng = np.random.default_rng(seed)
    hiddens: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    max_start = max(1, train_tokens.size - seq_len)
    for _ in range(num_sequences):
        start = int(rng.integers(0, max_start))
        seq = train_tokens[start:start + seq_len]
        hidden = model.forward(seq, return_hidden=True)
        hiddens.append(hidden)
        targets.append(log_bigram[seq])
    x = np.concatenate(hiddens, axis=0)
    y = np.concatenate(targets, axis=0)

    # Ridge regression: W = (X^T X + λI)^{-1} X^T Y, LM head weight is W^T.
    gram = x.T @ x + ridge * np.eye(x.shape[1])
    lm_weight = np.linalg.solve(gram, x.T @ y).T
    model.lm_head = Linear(weight=lm_weight, name="lm_head")


def generate_model(
    config: ModelConfig,
    seed: int = 0,
    profile: Optional[OutlierProfile] = None,
    bigram_matrix: Optional[np.ndarray] = None,
    token_classes: Optional[np.ndarray] = None,
    train_tokens: Optional[np.ndarray] = None,
    class_strength: float = 1.5,
):
    """Build a :class:`repro.model.transformer.TransformerModel`.

    Parameters
    ----------
    bigram_matrix / token_classes / train_tokens:
        Typically ``SyntheticCorpus.transition_matrix``, ``.token_classes`` and
        ``.train_tokens``.  When given, token embeddings are organised around
        per-class directions (so the low-rank structure of the language is
        representable in ``hidden_size`` dimensions) and the LM head is
        calibrated with :func:`fit_lm_head`, giving the model genuine
        predictive power on the corpus.  When omitted the embeddings and LM
        head are random, which is sufficient for unit tests that only exercise
        shapes and arithmetic.
    class_strength:
        Relative magnitude of the shared class direction versus the
        token-specific component of each embedding row.
    """
    from repro.model.transformer import TransformerModel

    profile = profile or OutlierProfile()
    rng = np.random.default_rng(seed)
    h = config.hidden_size

    activation_outliers = _pick_outlier_channels(
        rng, h, profile.activation_outlier_fraction)

    embedding = rng.normal(0.0, 1.0 / np.sqrt(h), size=(config.vocab_size, h))
    if token_classes is not None:
        token_classes = np.asarray(token_classes, dtype=np.int64)
        if token_classes.size != config.vocab_size:
            raise ValueError("token_classes must have vocab_size entries")
        num_classes = int(token_classes.max()) + 1
        class_dirs = rng.normal(0.0, 1.0 / np.sqrt(h), size=(num_classes, h))
        embedding += class_strength * class_dirs[token_classes]
    embedding[:, activation_outliers] *= profile.activation_outlier_scale

    blocks = [
        generate_block_weights(rng, config, i, profile, activation_outliers)
        for i in range(config.num_layers)
    ]
    final_norm = np.abs(rng.normal(1.0, 0.05, size=h))
    lm_head = Linear(
        weight=rng.normal(0.0, 1.0 / np.sqrt(h), size=(config.vocab_size, h)),
        name="lm_head",
    )

    model = TransformerModel(
        config=config,
        embedding=embedding,
        blocks=blocks,
        final_norm=final_norm,
        lm_head=lm_head,
        activation_outlier_channels=activation_outliers,
    )

    if bigram_matrix is not None:
        if train_tokens is None:
            raise ValueError("train_tokens are required to calibrate the LM head")
        fit_lm_head(model, train_tokens, bigram_matrix, seed=seed)
    return model
