"""Serving engine: per-iteration latency model + event-driven serving loop.

``ServingEngine`` binds a model geometry, a GPU and a serving-system preset.
It answers two kinds of questions:

* *kernel-level*: how long does one decode iteration (or one prefill, or one
  mixed chunked-prefill+decode iteration) take at a given batch size and
  context length?  These latencies come from the GPU cost model
  (:mod:`repro.gpu.gemm`, :mod:`repro.gpu.attention_kernel`) and drive
  Figures 2a, 17 and the throughput tables.
* *system-level*: given a workload, a memory budget and a
  :class:`repro.serving.policies.SchedulingConfig`, run the continuous
  batching loop on a simulated clock and report generation throughput (the
  quantity Table 4 calls "maximum achievable throughput") together with
  per-request latency metrics (TTFT/TPOT/E2E percentiles, SLO goodput).

The serving loop itself is policy-free: admission order and head-of-line
bypass come from the scheduling config's :class:`SchedulerPolicy`, the
composition of each iteration from its :class:`IterationPlanner` (legacy
stall-the-world prefill, or chunked prefill where prompt tokens share
iterations with the decode batch), and page pressure is resolved by
preempt-and-recompute when the config enables it.  The default
``LEGACY_SCHEDULING`` preset reproduces the seed engine's behaviour exactly —
same admissions, same cost-model calls in the same order, bitwise-identical
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpu.attention_kernel import KV_KERNELS, attention_decode_latency
from repro.gpu.gemm import GEMM_PRECISIONS, gemm_latency
from repro.gpu.specs import GPUSpec
from repro.model.config import ModelConfig
from repro.serving.kv_cache_manager import PagedKVCacheManager
from repro.serving.metrics import ServingMetrics
from repro.serving.policies import (
    IterationPlan,
    LEGACY_SCHEDULING,
    SchedulingConfig,
)
from repro.serving.precision import SystemConfig
from repro.serving.request import RequestState, Workload
from repro.serving.scheduler import ContinuousBatchingScheduler

__all__ = ["StepBreakdown", "ServingResult", "ServingEngine"]

#: Fixed per-iteration overhead for kernels not modelled explicitly
#: (normalisation, rotary embedding, sampling, python/runtime launch gaps).
_STEP_OVERHEAD_S = 100e-6


@dataclass
class StepBreakdown:
    """Latency decomposition of one model iteration (seconds)."""

    gemm: float
    attention: float
    other: float

    @property
    def total(self) -> float:
        return self.gemm + self.attention + self.other

    def fraction(self, part: str) -> float:
        value = getattr(self, part)
        return 0.0 if self.total == 0 else value / self.total


@dataclass
class ServingResult:
    """Outcome of a full serving-loop simulation."""

    total_time_s: float
    generated_tokens: int
    prompt_tokens: int
    peak_batch: int
    num_iterations: int
    num_finished: int = 0
    num_unserved: int = 0
    num_preemptions: int = 0
    recomputed_prefill_tokens: int = 0
    metrics: Optional[ServingMetrics] = None

    @property
    def generation_throughput(self) -> float:
        """Generated tokens per second — the paper's headline metric."""
        return 0.0 if self.total_time_s == 0 else self.generated_tokens / self.total_time_s


class ServingEngine:
    """Cost-model-driven serving simulator for one (model, GPU, system) triple."""

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 max_seq_len: int = 2048) -> None:
        self.model = model
        self.gpu = gpu
        self.system = system
        self.max_seq_len = max_seq_len
        self.gemm_precision = GEMM_PRECISIONS[system.gemm_precision]
        self.attention_kernel = KV_KERNELS[system.attention_kernel]

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def weight_bytes(self) -> float:
        return float(self.model.weight_bytes(self.system.weight_bits))

    def kv_capacity_bytes(self) -> float:
        """Device memory left over for the KV cache."""
        weights = self.weight_bytes()
        workspace = weights * self.system.activation_workspace_factor + 1.0 * (1 << 30)
        return max(0.0, self.gpu.memory_bytes - weights - workspace)

    def new_kv_manager(self) -> PagedKVCacheManager:
        return PagedKVCacheManager(
            model=self.model, system=self.system,
            capacity_bytes=self.kv_capacity_bytes(),
            max_seq_len=self.max_seq_len)

    # ------------------------------------------------------------------
    # Kernel-level latency
    # ------------------------------------------------------------------
    def _block_gemm_latency(self, tokens: int) -> float:
        """Sum of one transformer block's GEMM latencies for ``tokens`` rows."""
        h = self.model.hidden_size
        kv = self.model.kv_dim
        inter = self.model.intermediate_size
        p = self.gemm_precision
        shapes = [
            (tokens, h + 2 * kv, h),        # fused QKV projection
            (tokens, h, h),                 # output projection
            (tokens, 2 * inter, h),         # fused gate + up projection
            (tokens, h, inter),             # down projection
        ]
        total = 0.0
        for m, n, k in shapes:
            total += gemm_latency(self.gpu, m, n, k, p).total
        if self.model.num_experts > 1:
            # MoE: each token is routed to `experts_per_token` experts; GEMM
            # work scales accordingly but weight traffic covers all experts'
            # parameters once per iteration (they all must be resident).
            moe_factor = self.model.experts_per_token
            ffn = (gemm_latency(self.gpu, tokens, 2 * inter, h, p).total
                   + gemm_latency(self.gpu, tokens, h, inter, p).total)
            total += ffn * (moe_factor - 1)
        return total

    def _prefill_attention_latency(self, macs: float) -> float:
        """Compute-bound FP16 tensor-core attention latency for ``macs`` MACs."""
        return (2.0 * macs / (self.gpu.tensor_core_tops("fp16") * 1e12
                              * self.gpu.compute_efficiency)) * self.model.num_layers

    def decode_step(self, batch: int, context_len: int) -> StepBreakdown:
        """Latency of one decoding iteration for ``batch`` sequences."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        gemm = self._block_gemm_latency(batch) * self.model.num_layers
        attn = attention_decode_latency(
            self.gpu, self.attention_kernel, batch, max(1, context_len),
            self.model.num_heads, self.model.num_kv_heads, self.model.head_dim,
        ).total * self.model.num_layers
        # LM head (kept in FP16 by every system).
        lm = gemm_latency(self.gpu, batch, self.model.vocab_size,
                          self.model.hidden_size, GEMM_PRECISIONS["fp16"]).total
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=(gemm + lm) / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff)

    def prefill(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Latency of prefilling ``batch`` prompts of ``prompt_len`` tokens."""
        tokens = batch * prompt_len
        gemm = self._block_gemm_latency(tokens) * self.model.num_layers
        # Prefill attention is a compute-bound FP16 matmul of cost
        # 2 * b * S^2 * H * D MACs per layer (QK^T and SV), on tensor cores.
        macs = 2.0 * batch * prompt_len * prompt_len * self.model.num_heads * self.model.head_dim
        attn = self._prefill_attention_latency(macs)
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=gemm / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff)

    def mixed_step(self, prefill_chunks: List[Tuple[int, int]],
                   decode_batch: int, decode_context: int) -> StepBreakdown:
        """Latency of one chunked-prefill iteration.

        ``prefill_chunks`` holds ``(chunk_len, tokens_already_prefilled)``
        pairs: each chunk's queries attend to the KV state accumulated so far
        plus the chunk itself, so a prompt split into chunks costs the same
        order of attention MACs as the monolithic prefill.  ``decode_batch``
        sequences additionally each generate one token against
        ``decode_context`` tokens of KV cache.  GEMM cost is shared — all
        prefill-chunk and decode tokens go through the projections as one
        batched matmul, which is exactly why chunked prefill keeps the GPU
        saturated without stalling decodes.
        """
        chunk_tokens = sum(c for c, _ in prefill_chunks)
        tokens = chunk_tokens + decode_batch
        if tokens <= 0:
            raise ValueError("mixed_step needs at least one token of work")
        gemm = self._block_gemm_latency(tokens) * self.model.num_layers
        macs = 0.0
        for chunk_len, done in prefill_chunks:
            macs += 2.0 * chunk_len * (done + chunk_len) * \
                self.model.num_heads * self.model.head_dim
        attn = self._prefill_attention_latency(macs) if macs else 0.0
        if decode_batch > 0:
            attn += attention_decode_latency(
                self.gpu, self.attention_kernel, decode_batch,
                max(1, decode_context), self.model.num_heads,
                self.model.num_kv_heads, self.model.head_dim,
            ).total * self.model.num_layers
        # LM head only for the decode tokens; mid-prompt logits are discarded.
        lm = 0.0
        if decode_batch > 0:
            lm = gemm_latency(self.gpu, decode_batch, self.model.vocab_size,
                              self.model.hidden_size, GEMM_PRECISIONS["fp16"]).total
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=(gemm + lm) / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff)

    # ------------------------------------------------------------------
    # System-level serving loop
    # ------------------------------------------------------------------
    def _plan_latency(self, plan: IterationPlan) -> float:
        """Cost-model latency of executing one iteration plan."""
        if plan.stalled_prefill:
            # Legacy batched prefill: every admitted prompt is padded to the
            # longest one and prefilled in a single call.
            prompt_len = max(r.prefill_target for r, _ in plan.prefill_chunks)
            return self.prefill(len(plan.prefill_chunks), prompt_len).total
        decode = plan.decode
        if not plan.prefill_chunks:
            batch = len(decode)
            context = int(sum(r.context_len for r in decode) / batch)
            return self.decode_step(batch, context).total
        chunks = [(tokens, r.prefilled) for r, tokens in plan.prefill_chunks]
        decode_context = 0
        if decode:
            decode_context = int(sum(r.context_len for r in decode) / len(decode))
        return self.mixed_step(chunks, len(decode), decode_context).total

    def serve(self, workload: Workload, max_num_seqs: Optional[int] = None,
              scheduling: Optional[SchedulingConfig] = None) -> ServingResult:
        """Run the continuous-batching loop over ``workload`` on a simulated clock.

        ``scheduling`` selects the policy/planner/preemption preset; the
        default :data:`LEGACY_SCHEDULING` reproduces the seed engine exactly.
        Requests a configuration can never admit (e.g. a context larger than
        the whole KV cache under conservative reservation) are left unserved
        and counted in ``ServingResult.num_unserved`` rather than hanging the
        loop.
        """
        scheduling = scheduling or LEGACY_SCHEDULING
        planner = scheduling.build_planner()
        kv_manager = self.new_kv_manager()
        scheduler = ContinuousBatchingScheduler(
            kv_manager=kv_manager,
            max_num_seqs=max_num_seqs or 10**9,
            policy=scheduling.build_policy(),
            preemption=scheduling.preemption)
        scheduler.submit(list(workload.requests))

        now = 0.0
        iterations = 0
        peak_batch = 0
        generated = 0
        guard = 0
        max_iterations = 10_000_000

        while not scheduler.all_done:
            guard += 1
            if guard > max_iterations:
                raise RuntimeError("serving loop failed to terminate")
            admitted = scheduler.admit(now)
            if scheduling.preemption:
                # Claim pages for every decode before planning; may preempt
                # any running request — including one admitted just above, so
                # drop evictees from the admitted list before planning.
                scheduler.prepare_decode()
                admitted = [r for r in admitted
                            if r.state is RequestState.PREFILLING]
            plan = planner.plan(scheduler, admitted)
            if plan.is_empty:
                # Nothing runnable: jump to the next arrival, or stop if the
                # remaining requests can never be admitted.
                future = [r.arrival_time for r in scheduler.waiting]
                if not future:
                    break
                next_arrival = min(future)
                if next_arrival > now:
                    now = max(now, next_arrival)
                    continue
                if not scheduler.running:
                    # Arrived requests that no amount of waiting can admit
                    # (e.g. larger than the whole KV cache): leave unserved.
                    break
                continue

            now += self._plan_latency(plan)
            iterations += 1
            if plan.decode:
                peak_batch = max(peak_batch, len(plan.decode))
                generated += len(plan.decode)
                scheduler.record_decode_step(now)
            for request, tokens in plan.prefill_chunks:
                scheduler.record_prefill(request, tokens, now)

        # Count only prompts that actually completed a prefill: a loop that
        # stops with requests still waiting must not claim their tokens.
        prefilled_prompt_tokens = sum(
            r.prompt_len for r in workload.requests
            if r.prefill_done_time is not None)
        unserved = sum(1 for r in workload.requests if r.finish_time is None)

        return ServingResult(
            total_time_s=now,
            generated_tokens=generated,
            prompt_tokens=prefilled_prompt_tokens,
            peak_batch=peak_batch,
            num_iterations=iterations,
            num_finished=len(scheduler.finished),
            num_unserved=unserved,
            num_preemptions=scheduler.num_preemptions,
            recomputed_prefill_tokens=scheduler.recomputed_prefill_tokens,
            metrics=ServingMetrics.from_requests(scheduler.finished),
        )
