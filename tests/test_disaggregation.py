"""Tests for disaggregated prefill/decode serving: replica roles, the
KV-transfer cost model, mid-flight export/import of request KV state,
prefix-cache interaction across the handoff, and the acceptance criterion
that a prefill/decode split cuts p95 TPOT vs mixed replicas at equal GPU
count while mixed mode stays bitwise-identical."""

import pytest

from repro.gpu import A100, NVLINK, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    DisaggregatedRouter,
    EngineStepper,
    Request,
    RequestState,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    Workload,
    get_router,
    make_router_study_workload,
    make_shared_prefix_workload,
    make_uniform_workload,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _cluster(llama7b, **kwargs):
    return ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=4096, **kwargs)


# ----------------------------------------------------------------------
# Roles and validation
# ----------------------------------------------------------------------
def test_role_validation(llama7b):
    with pytest.raises(ValueError):                 # unknown role
        _cluster(llama7b, num_replicas=2, roles=["prefill", "encode"])
    with pytest.raises(ValueError):                 # wrong length
        _cluster(llama7b, num_replicas=3, roles=["prefill", "decode"])
    with pytest.raises(ValueError):                 # prefill with no decode
        _cluster(llama7b, num_replicas=2, roles=["prefill", "mixed"])
    with pytest.raises(ValueError):                 # nothing can prefill
        _cluster(llama7b, num_replicas=2, roles=["decode", "decode"])
    with pytest.raises(ValueError):                 # decode with no feeder:
        _cluster(llama7b, num_replicas=2,           # mixed never exports, so
                 roles=["mixed", "decode"])         # the decode replica idles
    cluster = _cluster(llama7b, num_replicas=3,
                       roles=["prefill", "decode", "mixed"])
    assert cluster.disaggregated
    assert not _cluster(llama7b, num_replicas=2).disaggregated


def test_all_mixed_roles_bitwise_identical(llama7b):
    """Explicit all-mixed roles take the exact legacy code path: same clock,
    same tokens, same percentiles as a role-less cluster."""
    workload = make_uniform_workload(12, prompt_len=256, output_len=32,
                                     arrival_rate=30.0, seed=7)
    base = _cluster(llama7b, num_replicas=3).serve(
        workload.copy_fresh(), max_num_seqs=4)
    mixed = _cluster(llama7b, num_replicas=3, roles=["mixed"] * 3).serve(
        workload.copy_fresh(), max_num_seqs=4)
    assert mixed.total_time_s == base.total_time_s
    assert mixed.generated_tokens == base.generated_tokens
    assert mixed.metrics.ttft.p95 == base.metrics.ttft.p95
    assert mixed.metrics.tpot.p99 == base.metrics.tpot.p99
    assert mixed.num_migrations == 0
    assert mixed.replica_roles == ["mixed"] * 3
    assert base.transfer_delay.mean == 0.0


def test_disaggregated_router_registry():
    router = get_router("disaggregated")
    assert isinstance(router, DisaggregatedRouter)


# ----------------------------------------------------------------------
# KV-transfer cost model
# ----------------------------------------------------------------------
def test_transfer_delay_cost_model(llama7b):
    cluster = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"],
                       transfer_link=PCIE_GEN4, transfer_overlap=False)
    short = Request(request_id=0, prompt_len=256, output_len=16)
    long = Request(request_id=1, prompt_len=2048, output_len=16)
    d_short = cluster.transfer_delay(short)
    d_long = cluster.transfer_delay(long)
    # Raw transfer: payload over the link plus one message latency.
    expected = (cluster.kv_bytes_per_token * 256
                / PCIE_GEN4.bandwidth_bytes_per_s) + PCIE_GEN4.latency_s
    assert d_short == pytest.approx(expected)
    assert d_long > d_short                          # more KV state, more time
    # Tokens the target already caches need no transfer.
    assert cluster.transfer_delay(long, cached_tokens=1024) < d_long
    # Overlap hides the stream behind one decode iteration, floored at the
    # link's message latency.
    overlapped = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"],
                          transfer_link=PCIE_GEN4, transfer_overlap=True)
    assert overlapped.transfer_delay(long) < d_long
    assert overlapped.transfer_delay(short) >= PCIE_GEN4.latency_s


def test_transfer_overlap_floors_at_link_latency(llama7b):
    """On NVLink the whole KV stream hides behind the first decode step, so
    the exposed delay is exactly the message latency."""
    cluster = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"],
                       transfer_link=NVLINK)
    request = Request(request_id=0, prompt_len=1024, output_len=16)
    assert cluster.transfer_delay(request) == pytest.approx(NVLINK.latency_s)


# ----------------------------------------------------------------------
# Export / import of in-flight KV state
# ----------------------------------------------------------------------
def test_stepper_exports_on_prefill_completion(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    prefiller = EngineStepper(engine, max_num_seqs=4, migrate_out=True)
    requests = [Request(request_id=i, prompt_len=128, output_len=16)
                for i in range(3)]
    prefiller.submit(list(requests))
    prefiller.run()
    assert [r.request_id for r in prefiller.outbox] == [0, 1, 2]
    assert prefiller.generated == 0                  # prefill role never decodes
    assert prefiller.scheduler.kv_manager.used_pages == 0   # pages reclaimed
    for request in requests:
        assert request.state is RequestState.MIGRATING
        assert request.kv_ready
        assert request.prefill_done_time is not None
        assert request.generated == 0


def test_decode_stepper_adopts_without_reprefill(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    prefiller = EngineStepper(engine, max_num_seqs=4, migrate_out=True)
    request = Request(request_id=0, prompt_len=128, output_len=16)
    prefiller.submit(request)
    prefiller.run()
    exported = prefiller.outbox.pop(0)
    ready = exported.prefill_done_time + 0.25
    exported.migration_ready_time = ready
    exported.migrations += 1
    decoder = EngineStepper(engine, max_num_seqs=4)
    decoder.submit(exported)
    decoder.run()
    assert exported.state is RequestState.FINISHED
    assert exported.generated == 16
    assert exported.first_token_time >= ready        # waited out the transfer
    kv = decoder.scheduler.kv_manager
    assert kv.pages_transferred_in_total > 0         # adopted, not prefilled
    assert kv.used_pages == 0                        # and reclaimed at finish
    assert decoder.scheduler.recomputed_prefill_tokens == 0
    # The decode replica planned zero prefill work: every iteration decoded.
    assert decoder.iterations == 16
    # Prefill work is attributed where it ran.
    assert prefiller.result(Workload(requests=[exported])).prompt_tokens == 128


def test_run_until_never_jumps_past_its_horizon(llama7b):
    """An idle replica waiting only on a future availability (an in-flight
    KV transfer) must not leap over the cluster's event horizon — admitting
    a later-routed request at a far-future clock would inflate its TTFT."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    stepper = EngineStepper(engine, max_num_seqs=4)
    request = Request(request_id=0, prompt_len=128, output_len=4)
    request.kv_ready = True
    request.migration_ready_time = 100.0
    stepper.submit(request)
    stepper.run_until(5.0)
    assert stepper.now <= 5.0                        # parked, not at t=100
    assert not stepper.done
    stepper.run()                                    # unbounded: jumps and serves
    assert stepper.now >= 100.0
    assert request.state is RequestState.FINISHED


def test_pin_for_import_shields_prefix_from_eviction(llama7b):
    """The prefix credited against a transfer's payload is pinned for the
    flight: an eviction pass between pricing and admission cannot reclaim
    it, so priced bytes and adopted pages agree."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=4096)
    workload = make_shared_prefix_workload(2, shared_prefix_len=512,
                                           unique_len=64, output_len=8, seed=4)
    first, second = workload.requests
    decoder = EngineStepper(engine, max_num_seqs=4,
                            scheduling=SCHEDULING_PRESETS["prefix"])
    # Warm the decode replica: import the first request and run it through.
    prefiller = EngineStepper(engine, max_num_seqs=4, migrate_out=True,
                              scheduling=SCHEDULING_PRESETS["prefix"])
    prefiller.submit(first)
    prefiller.run()
    migrant = prefiller.outbox.pop(0)
    migrant.migration_ready_time = migrant.prefill_done_time
    decoder.submit(migrant)
    decoder.run()
    cache = decoder.prefix_cache
    assert cache.cached_pages > 0                    # publication happened
    assert cache.total_ref_count == 0                # drained after finish
    # Pin the second request's shared prefix as the cluster would when
    # pricing its transfer; a full-cache eviction pass must not touch it.
    pinned_tokens = decoder.pin_for_import(second)
    assert pinned_tokens == 512                      # the whole shared prefix
    evicted = cache.evict(cache.cached_pages)
    assert cache.lookup_tokens(second) == pinned_tokens
    assert evicted < cache.cached_pages + evicted    # pinned blocks survived
    # Stats stayed clean: pinning is not a hit/miss event.
    assert cache.stats.lookups == 0


def test_export_requires_completed_prefill(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    stepper = EngineStepper(engine, max_num_seqs=4)
    request = Request(request_id=0, prompt_len=128, output_len=16)
    stepper.submit(request)
    with pytest.raises(ValueError):
        stepper.scheduler.export_request(request)    # still WAITING


# ----------------------------------------------------------------------
# Cluster-level disaggregated serving
# ----------------------------------------------------------------------
def test_disaggregated_lifecycle_and_conservation(llama7b):
    cluster = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"])
    workload = make_uniform_workload(10, prompt_len=512, output_len=64,
                                     arrival_rate=10.0, seed=5)
    result = cluster.serve(workload, router="disaggregated", max_num_seqs=8)
    assert result.num_finished == 10
    assert result.num_unserved == 0
    assert result.generated_tokens == 10 * 64
    assert result.num_migrations == 10
    assert result.migrations_per_replica == [0, 10]
    assert result.requests_per_replica == [10, 0]    # arrivals hit prefill tier
    assert result.replica_roles == ["prefill", "decode"]
    # The prefill replica prefilled every prompt but generated nothing; the
    # decode replica generated everything.
    assert result.replica_results[0].generated_tokens == 0
    assert result.replica_results[0].prompt_tokens == 10 * 512
    assert result.replica_results[1].generated_tokens == 10 * 64
    for request in workload.requests:
        assert request.state is RequestState.FINISHED
        assert request.migrations == 1
        assert request.transfer_delay_s > 0.0
        assert request.first_token_time >= request.migration_ready_time
    assert result.metrics.total_migrations == 10
    assert result.transfer_delay.mean > 0.0
    util = result.role_utilization()
    assert set(util) == {"prefill", "decode"}
    assert 0.0 < util["decode"] <= 1.0


def test_disaggregated_with_ordinary_router(llama7b):
    """Any router works for the arrival side; migration targeting falls back
    to least-loaded decode routing."""
    cluster = _cluster(llama7b, num_replicas=3,
                       roles=["prefill", "decode", "decode"])
    workload = make_uniform_workload(8, prompt_len=256, output_len=32,
                                     arrival_rate=20.0, seed=9)
    result = cluster.serve(workload, router="round-robin", max_num_seqs=8)
    assert result.num_finished == 8
    assert result.num_migrations == 8
    assert sum(result.migrations_per_replica[1:]) == 8


def test_preempted_migrated_request_recomputes_locally(llama7b, monkeypatch):
    """A migrated request that loses its adopted pages to preemption falls
    back to local re-prefill on the decode replica and still finishes."""
    cluster = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"])
    # 145 pages: two 1024-token prompts admit optimistically (64 pages each)
    # but cannot both grow to their 1216-token final footprint (76 pages), so
    # decode-time page pressure must preempt.
    pages145 = 145 * cluster.engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(cluster.engine, "kv_capacity_bytes", lambda: pages145)
    workload = make_uniform_workload(12, prompt_len=1024, output_len=192,
                                     arrival_rate=200.0, seed=2)
    result = cluster.serve(workload, router="disaggregated", max_num_seqs=16,
                           scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert result.num_finished == 12
    assert result.num_preemptions > 0                # pressure actually hit
    decode = result.replica_results[1]
    assert decode.recomputed_prefill_tokens > 0      # local recompute happened
    for request in workload.requests:
        assert request.state is RequestState.FINISHED
        if request.preemptions > 0:
            # Reclaimed transferred pages are gone for good: the victim was
            # readmitted through the ordinary local-prefill path.
            assert not request.kv_ready


def test_migration_publishes_into_decode_prefix_cache(llama7b):
    """Imported requests publish their prompt blocks on the decode replica,
    so later same-prefix migrations transfer only their cold suffix."""
    cluster = _cluster(llama7b, num_replicas=2, roles=["prefill", "decode"],
                       transfer_link=PCIE_GEN4, transfer_overlap=False)
    workload = make_shared_prefix_workload(6, shared_prefix_len=1024,
                                           unique_len=128, output_len=16,
                                           arrival_rate=2.0, seed=3)
    result = cluster.serve(workload, router="disaggregated", max_num_seqs=8,
                           scheduling=SCHEDULING_PRESETS["prefix"])
    assert result.num_finished == 6
    requests = sorted(workload.requests, key=lambda r: r.arrival_time)
    # The first migration pays for the whole prompt; once its blocks are
    # published on the decode replica, later ones ship only the cold tail.
    assert requests[-1].transfer_delay_s < requests[0].transfer_delay_s
    decode = result.replica_results[1]
    assert decode.prefix_stats is not None
    assert decode.prefix_stats.inserted_pages > 0    # publications happened
    # Migrated admissions don't pollute the replica's hit/miss accounting.
    assert decode.prefix_stats.lookups == 0
    assert decode.prefix_stats.hit_tokens == 0
    # The prefill tier still reuses the shared prefix across arrivals.
    assert result.replica_results[0].prefix_stats.hit_tokens > 0


def test_split_cuts_p95_tpot_vs_mixed_at_equal_gpu_count(llama7b):
    """Acceptance: on the bursty heavy-tailed workload a prefill/decode split
    beats 4 mixed replicas on p95 TPOT at equal GPU count, because decode
    iterations never share the GPU with prompt chunks; the handoff's
    transfer-delay overhead is recorded on the migrated requests."""
    workload = make_router_study_workload()
    mixed = _cluster(llama7b, num_replicas=4).serve(
        workload.copy_fresh(), router="least-outstanding", max_num_seqs=6,
        scheduling=SCHEDULING_PRESETS["chunked"])
    split = _cluster(llama7b, num_replicas=4,
                     roles=["prefill", "decode", "decode", "decode"]).serve(
        workload.copy_fresh(), router="disaggregated", max_num_seqs=6,
        scheduling=SCHEDULING_PRESETS["chunked"])
    assert split.num_finished == mixed.num_finished == 120
    assert split.metrics.tpot.p95 < mixed.metrics.tpot.p95
    assert split.num_migrations == 120
    assert split.transfer_delay.mean > 0.0           # overhead is accounted
    assert mixed.num_migrations == 0
