"""QuaRot-style W4A4 quantization (Ashkboos et al., 2024).

QuaRot rotates weights and activations with Hadamard matrices so that outliers
are spread across channels, then quantizes both weights and activations to
4 bits.  The paper evaluates two settings: per-channel/per-token W4A4 and
per-group (g128) W4A4; both are reproduced here via ``group_size``.  The KV
cache is also quantized to 4 bits (per-head) as in the original system.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.quantized import ActQuantSpec, FakeQuantLinear
from repro.model.transformer import ForwardConfig, TransformerModel
from repro.qoq.clipping import search_clip_ratio
from repro.qoq.rotation import rotation_matrix_for
from repro.quant.dtypes import INT4
from repro.quant.kv_quant import KVQuantConfig
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["quantize_quarot"]


def _w4_fake_quant(weight: np.ndarray, group_size: Optional[int],
                   clip_ratio: float = 1.0) -> np.ndarray:
    granularity = Granularity.PER_GROUP if group_size else Granularity.PER_CHANNEL
    return fake_quantize(weight, INT4, granularity=granularity, symmetric=False,
                         group_size=group_size, clip_ratio=clip_ratio)


def quantize_quarot(
    model: TransformerModel,
    calibration_batches: List[np.ndarray],
    group_size: Optional[int] = None,
    kv_bits: int = 4,
    enable_clipping: bool = True,
    rotation_seed: int = 0,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize ``model`` to W4A4(KV4) with Hadamard rotations.

    Every linear layer's input is rotated (the rotation is folded into the
    weight as in Section 4.3.1); weights and activations are then quantized to
    4 bits at the requested granularity, with an optional clip-ratio search on
    the weights (the QuaRot paper searches weight clipping as well).
    """
    work = model.clone()
    recorder = work.run_calibration(calibration_batches)
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=True))

    for name, layer in work.named_linears().items():
        weight = np.asarray(layer.weight, dtype=np.float64)
        in_features = weight.shape[1]
        g = group_size if (group_size and in_features % group_size == 0) else None
        rotation = rotation_matrix_for(in_features, seed=rotation_seed)
        weight = weight @ rotation
        samples = recorder.input_samples(name) @ rotation

        clip_ratio = 1.0
        if enable_clipping:
            clip_ratio, _ = search_clip_ratio(
                weight, samples, fmt=INT4, group_size=g, symmetric=False,
                candidates=np.linspace(1.0, 0.85, 4))
        w_q = _w4_fake_quant(weight, g, clip_ratio=clip_ratio)
        act_spec = ActQuantSpec(bits=4, group_size=g)
        work.set_linear(name, FakeQuantLinear(w_q, name=name, act_spec=act_spec,
                                              rotation=rotation))
    return work, fwd
