#!/usr/bin/env python
"""Raw-speed benchmark of the serving simulator itself.

Every other benchmark in this directory measures the *simulated* system
(tokens/s on the modelled GPU); this one measures the *simulator* — how many
requests per wall-clock second the event loop chews through — across the
workload shapes that exercise its distinct hot paths:

* ``plain-decode``     — uniform batch decoding, legacy stall-prefill planner;
* ``chunked-preempt``  — Poisson lognormal traffic, chunked prefill with
  preemption (admission + page-pressure heavy);
* ``chunked-telemetry``— the same trace with lifecycle tracing on; the gap
  to ``chunked-preempt`` is the telemetry overhead (gated at <=10%);
* ``prefix-chat``      — multi-turn chat against the prefix cache
  (cache-aware admission ordering);
* ``cluster``          — 4 replicas behind the least-outstanding router on
  bursty heavy-tailed traffic;
* ``speculative``      — draft-and-verify decoding with adaptive lookahead;
* ``precision-fleet``  — heterogeneous FP16 + W4A8KV4 replicas behind the
  precision-aware router on two-tier mixed-precision traffic;
* ``autoscale-tiered`` — flash-crowd multi-tenant traffic on an autoscaled
  fleet with tier-aware admission (the production-traffic hot paths:
  fleet ticks, cold starts, drain migrations, tier sorting);
* ``multiplexed-fleet``— a skewed two-model mix on a shared fleet with
  weight swapping and warm-first routing (the multiplexing hot paths:
  per-replica stepper serialization, residency LRU, swap pricing).

For each scenario it reports simulated requests per wall-clock second and the
extrapolated wall-clock per 100k requests.  Modes size the workloads:
``--smoke`` (CI, a few seconds), the default (stable numbers), and ``--full``
(a genuine 100k-request chunked-prefill trace plus full-size satellites).

Regression tracking::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --smoke --check                  # compare vs BENCH_simulator.json
    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --smoke --update-baseline        # refresh the committed baseline

``--check`` fails (exit 1) when any scenario's requests/s falls more than
``--tolerance`` (default 25%) below the committed baseline for the same mode.
Improvements never fail.  ``--profile`` wraps the run in cProfile and prints
the top 25 functions by cumulative time; ``--no-cost-cache`` disables the
engines' cost-model memoization for A/B comparisons.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_simulator.json"

#: Per-mode request counts:
#: (plain, chunked, chat_sessions, cluster, spec, precision, autoscale,
#: multiplex).
_SIZES = {
    "smoke": (200, 400, 30, 200, 100, 120, 150, 150),
    "default": (2000, 5000, 300, 2000, 1000, 1200, 1500, 1500),
    "full": (20000, 100000, 1200, 8000, 4000, 5000, 6000, 6000),
}


def _scenarios(mode: str) -> List[Tuple[str, int, Callable[[], object]]]:
    """Build the scenario list: ``(name, num_requests, run)`` triples.

    Workload construction happens inside each ``run`` so the benchmark
    charges the simulator for everything a fresh serving run pays.
    """
    from repro.gpu import A100
    from repro.model import get_config
    from repro.serving import (
        AutoscalerConfig,
        ClusterEngine,
        SCHEDULING_PRESETS,
        SYSTEM_PRESETS,
        ServingEngine,
        SpeculativeConfig,
        make_bursty_workload,
        make_chat_workload,
        make_flash_crowd_workload,
        make_lognormal_workload,
        make_mixed_precision_workload,
        make_uniform_workload,
    )

    llama7b = get_config("llama-2-7b")
    system = SYSTEM_PRESETS["qserve-w4a8kv4-chn"]
    (n_plain, n_chunked, n_sessions, n_cluster, n_spec,
     n_precision, n_autoscale, n_multiplex) = _SIZES[mode]

    def engine() -> ServingEngine:
        return ServingEngine(llama7b, A100, system, max_seq_len=4096)

    def plain_decode():
        wl = make_uniform_workload(n_plain, prompt_len=512, output_len=128,
                                   arrival_rate=80.0, seed=0)
        return engine().serve(wl, max_num_seqs=64)

    def chunked_preempt():
        wl = make_lognormal_workload(n_chunked, arrival_rate=40.0, seed=0)
        return engine().serve(
            wl, max_num_seqs=64,
            scheduling=SCHEDULING_PRESETS["chunked-preempt"])

    def chunked_telemetry():
        # Same trace as chunked-preempt with the tracing layer on: the gap
        # between the two scenarios is the telemetry overhead, gated at
        # <=10% in the regression baseline.
        wl = make_lognormal_workload(n_chunked, arrival_rate=40.0, seed=0)
        return engine().serve(
            wl, max_num_seqs=64,
            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
            telemetry=True)

    def prefix_chat():
        wl = make_chat_workload(num_sessions=n_sessions, turns_per_session=6,
                                session_rate=2.0, seed=0)
        return engine().serve(wl, max_num_seqs=48,
                              scheduling=SCHEDULING_PRESETS["prefix-aware"])

    def cluster():
        wl = make_bursty_workload(n_cluster, burst_rate=24.0,
                                  lognormal_lengths=True, seed=1)
        c = ClusterEngine(llama7b, A100, system, num_replicas=4,
                          max_seq_len=4096)
        return c.serve(wl, router="least-outstanding", max_num_seqs=32,
                       scheduling=SCHEDULING_PRESETS["chunked-preempt"])

    def speculative():
        wl = make_lognormal_workload(n_spec, arrival_rate=30.0, seed=7)
        spec = SpeculativeConfig(draft_model=get_config("llama-160m"),
                                 profile="low-entropy", lookahead=4,
                                 adaptive=True, seed=11)
        return engine().serve(
            wl, max_num_seqs=32,
            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
            speculative=spec)

    def precision_fleet():
        wl = make_mixed_precision_workload(n_precision, arrival_rate=12.0,
                                           seed=1)
        c = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                          num_replicas=4, max_seq_len=4096,
                          systems=["trt-fp16", "trt-fp16",
                                   "qserve-w4a8kv4-chn",
                                   "qserve-w4a8kv4-chn"])
        return c.serve(wl, router="precision-aware", max_num_seqs=32,
                       scheduling=SCHEDULING_PRESETS["chunked"])

    def autoscale_tiered():
        # Arrival rates scale with the request count so larger modes stress
        # a longer trace, not a deeper backlog.
        scale = n_autoscale / 150.0
        wl = make_flash_crowd_workload(
            n_autoscale, base_rate=2.0 * scale,
            spikes=((5.0, 30.0 * scale, 6.0),),
            prompt_len=512, output_len=200, tenants=4, seed=7)
        c = ClusterEngine(llama7b, A100, system, num_replicas=4,
                          max_seq_len=2048)
        return c.serve(wl, router="least-outstanding", max_num_seqs=8,
                       scheduling=SCHEDULING_PRESETS["tiered"],
                       autoscaler=AutoscalerConfig(
                           min_replicas=1, max_replicas=4, interval_s=2.0,
                           scale_up_queue_depth=2.0, up_cooldown_s=2.0,
                           down_cooldown_s=4.0, scale_down_outstanding=6.0,
                           ttft_slo_s=0.5))

    def multiplexed_fleet():
        # Two-model 80/20 mix on a shared fleet with residency limit 1:
        # the multiplexing hot paths — per-replica stepper serialization,
        # residency LRU, swap pricing, warm-first routing.
        from repro.serving import MultiplexConfig, make_multi_model_workload
        scale = n_multiplex / 150.0
        wl = make_multi_model_workload(
            n_multiplex, models=("llama-2-7b", "llama-2-13b"),
            weights=(0.8, 0.2), arrival_rate=24.0 * scale,
            prompt_len=256, output_len=64, seed=11)
        c = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                          num_replicas=4, max_seq_len=2048)
        return c.serve(wl, router="model-aware", max_num_seqs=16,
                       scheduling=SCHEDULING_PRESETS["chunked"],
                       multiplex=MultiplexConfig(
                           models=(llama7b, get_config("llama-2-13b")),
                           max_resident_models=1))

    return [
        ("plain-decode", n_plain, plain_decode),
        ("chunked-preempt", n_chunked, chunked_preempt),
        ("chunked-telemetry", n_chunked, chunked_telemetry),
        ("prefix-chat", n_sessions * 6, prefix_chat),
        ("cluster", n_cluster, cluster),
        ("speculative", n_spec, speculative),
        ("precision-fleet", n_precision, precision_fleet),
        ("autoscale-tiered", n_autoscale, autoscale_tiered),
        ("multiplexed-fleet", n_multiplex, multiplexed_fleet),
    ]


def run_benchmark(mode: str) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name, num_requests, run in _scenarios(mode):
        start = time.perf_counter()
        run()
        wall = time.perf_counter() - start
        results[name] = {
            "requests": num_requests,
            "wall_s": round(wall, 4),
            "requests_per_s": round(num_requests / wall, 2),
            "wall_per_100k_s": round(wall * 100_000 / num_requests, 2),
        }
        r = results[name]
        print(f"{name:16s} {num_requests:7d} req  {r['wall_s']:8.2f} s  "
              f"{r['requests_per_s']:9.1f} req/s  "
              f"({r['wall_per_100k_s']:8.1f} s per 100k)")
    return results


def check_against_baseline(results: Dict[str, Dict[str, float]], mode: str,
                           tolerance: float) -> int:
    """Compare ``results`` to the committed baseline; 0 = within tolerance."""
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update-baseline first")
        return 1
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    if mode not in baseline:
        print(f"baseline has no '{mode}' entry; run --update-baseline")
        return 1
    failures = 0
    print(f"\nvs. baseline ({mode} mode, tolerance {tolerance * 100:.0f}%):")
    for name, current in results.items():
        base = baseline[mode].get(name)
        if base is None:
            print(f"  {name:16s} NEW (no baseline entry)")
            continue
        ref = base["requests_per_s"]
        now = current["requests_per_s"]
        delta = (now - ref) / ref
        status = "ok"
        if delta < -tolerance:
            status = "REGRESSION"
            failures += 1
        print(f"  {name:16s} {ref:9.1f} -> {now:9.1f} req/s "
              f"({delta * 100:+6.1f}%)  {status}")
    if failures:
        print(f"{failures} scenario(s) regressed more than "
              f"{tolerance * 100:.0f}%")
        return 1
    print("all scenarios within tolerance")
    return 0


def update_baseline(results: Dict[str, Dict[str, float]], mode: str) -> None:
    baseline: Dict[str, Dict[str, Dict[str, float]]] = {}
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)
    baseline[mode] = results
    with open(BASELINE_PATH, "w") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"updated {BASELINE_PATH} [{mode}]")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Wall-clock throughput of the serving simulator")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true",
                       help="small CI-sized workloads")
    group.add_argument("--full", action="store_true",
                       help="100k-request chunked trace + full satellites")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current numbers into BENCH_simulator.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional req/s drop (default 0.25)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile, print top 25 by cumulative")
    parser.add_argument("--no-cost-cache", action="store_true",
                        help="disable the engines' cost-model memoization")
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full" if args.full else "default"

    if args.no_cost_cache:
        # Engines read the default lazily at construction, so setting the
        # environment before building scenarios disables every cache.
        os.environ["REPRO_COST_CACHE"] = "0"
    print(f"mode: {mode}"
          + (" (cost cache off)" if args.no_cost_cache else ""))

    if args.profile:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        results = run_benchmark(mode)
        profiler.disable()
        print("\ntop 25 by cumulative time:")
        pstats.Stats(profiler, stream=sys.stdout) \
            .sort_stats("cumulative").print_stats(25)
    else:
        results = run_benchmark(mode)

    if args.update_baseline:
        update_baseline(results, mode)
        return 0
    if args.check:
        return check_against_baseline(results, mode, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
