"""Shared fixtures for the test suite.

The accuracy-related fixtures are session-scoped because building the corpus
and calibrating the tiny model takes a noticeable fraction of a second; every
test that needs a model clones it rather than mutating the shared instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CorpusConfig, SyntheticCorpus, sample_calibration_batches
from repro.experiments.accuracy_common import build_setup
from repro.model import generate_model, get_config


@pytest.fixture(scope="session")
def tiny_config():
    return get_config("tiny-llama")


@pytest.fixture(scope="session")
def tiny_corpus(tiny_config):
    return SyntheticCorpus(CorpusConfig(
        vocab_size=tiny_config.vocab_size, num_train_tokens=4096,
        num_eval_tokens=1024, num_classes=16, seed=0))


@pytest.fixture(scope="session")
def tiny_model(tiny_config, tiny_corpus):
    """A tiny model with genuine predictive structure on the tiny corpus."""
    return generate_model(
        tiny_config, seed=0,
        bigram_matrix=tiny_corpus.transition_matrix,
        token_classes=tiny_corpus.token_classes,
        train_tokens=tiny_corpus.train_tokens)


@pytest.fixture(scope="session")
def plain_model(tiny_config):
    """A tiny model without LM-head calibration (pure structural tests)."""
    return generate_model(tiny_config, seed=1)


@pytest.fixture(scope="session")
def tiny_calibration(tiny_corpus):
    return sample_calibration_batches(tiny_corpus, num_batches=3, seq_len=32, seed=0)


@pytest.fixture(scope="session")
def tiny_eval_sequences(tiny_corpus):
    return tiny_corpus.chunks("eval", 96)[:4]


@pytest.fixture(scope="session")
def accuracy_setup():
    """The shared tiny-scale experiment setup."""
    return build_setup("tiny", seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
