"""Per-head dynamic KV-cache quantization (Section 5.1, "KV Cache Management").

QServe stores 4-bit (or 8-bit) KV caches with **per-head, dynamic, asymmetric**
quantization: every ``[head, token]`` slice of the Key/Value cache gets its own
FP16 scale and zero point, computed on the fly as tokens are appended, and
those parameters live next to the quantized features inside each KV-cache
page.  This module implements the arithmetic; the paging/bookkeeping lives in
:mod:`repro.serving.kv_cache_manager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.dtypes import FP16, IntFormat, UINT4, UINT8

__all__ = [
    "KVQuantConfig",
    "QuantizedKV",
    "quantize_kv_per_head",
    "dequantize_kv",
    "kv_fake_quantize",
]

_EPS = 1e-12


def _format_for_bits(bits: int) -> IntFormat:
    if bits == 4:
        return UINT4
    if bits == 8:
        return UINT8
    raise ValueError(f"unsupported KV cache precision: {bits} bits")


@dataclass(frozen=True)
class KVQuantConfig:
    """Configuration of the KV-cache quantizer.

    Attributes
    ----------
    bits:
        4 for KV4 (QServe), 8 for KV8 (TensorRT-LLM baseline), 16 to disable.
    per_head:
        Dynamic per-head quantization (QServe) versus static per-tensor
        quantization (TensorRT-LLM's KV8).
    """

    bits: int = 4
    per_head: bool = True

    @property
    def enabled(self) -> bool:
        return self.bits < 16

    @property
    def bytes_per_element(self) -> float:
        return self.bits / 8.0


@dataclass
class QuantizedKV:
    """Quantized key or value tensor with per-head dynamic parameters.

    ``codes`` has shape ``[tokens, heads, head_dim]`` (unsigned integer codes),
    ``scales`` and ``zeros`` have shape ``[tokens, heads, 1]`` and are stored in
    FP16, mirroring the in-page layout described in the paper.
    """

    codes: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    bits: int

    @property
    def num_tokens(self) -> int:
        return self.codes.shape[0]

    def memory_bytes(self) -> int:
        """Footprint with packed sub-byte codes plus FP16 scale/zero pairs."""
        code_bytes = int(np.ceil(self.codes.size * self.bits / 8))
        param_bytes = (self.scales.size + self.zeros.size) * 2
        return code_bytes + param_bytes


def quantize_kv_per_head(kv: np.ndarray, bits: int = 4) -> QuantizedKV:
    """Asymmetric per-head quantization of a ``[tokens, heads, head_dim]`` tensor."""
    kv = np.asarray(kv, dtype=np.float64)
    if kv.ndim != 3:
        raise ValueError(f"expected [tokens, heads, head_dim], got shape {kv.shape}")
    fmt = _format_for_bits(bits)

    # Anchor the range at zero so the zero point is always representable in
    # the unsigned code space (standard asymmetric quantization practice).
    vmax = np.maximum(kv.max(axis=2, keepdims=True), 0.0)
    vmin = np.minimum(kv.min(axis=2, keepdims=True), 0.0)
    scales = np.maximum(vmax - vmin, _EPS) / (fmt.qmax - fmt.qmin)
    scales = scales.astype(FP16).astype(np.float64)
    zeros = np.clip(np.round(-vmin / scales), fmt.qmin, fmt.qmax)
    codes = np.clip(np.round(kv / scales + zeros), fmt.qmin, fmt.qmax)

    return QuantizedKV(
        codes=codes.astype(fmt.storage_dtype),
        scales=scales.astype(FP16),
        zeros=zeros.astype(FP16),
        bits=bits,
    )


def dequantize_kv(qkv: QuantizedKV) -> np.ndarray:
    """Dequantize a :class:`QuantizedKV` back to floating point."""
    codes = qkv.codes.astype(np.float64)
    scales = qkv.scales.astype(np.float64)
    zeros = qkv.zeros.astype(np.float64)
    return (codes - zeros) * scales


def kv_fake_quantize(kv: np.ndarray, config: KVQuantConfig) -> np.ndarray:
    """Quantize-then-dequantize a KV tensor according to ``config``.

    ``kv`` is ``[tokens, heads, head_dim]``; a 16-bit config returns the input
    unchanged.  Static per-tensor mode reproduces the TensorRT-LLM KV8
    baseline (one symmetric scale for the whole tensor).
    """
    if not config.enabled:
        return np.asarray(kv, dtype=np.float64)
    kv = np.asarray(kv, dtype=np.float64)
    if config.per_head:
        return dequantize_kv(quantize_kv_per_head(kv, bits=config.bits))
    # Static per-tensor symmetric quantization (TRT-LLM style KV8).
    fmt = _format_for_bits(config.bits)
    qmax_sym = (fmt.qmax - fmt.qmin) // 2
    amax = np.max(np.abs(kv))
    scale = max(amax, _EPS) / qmax_sym
    codes = np.clip(np.round(kv / scale), -qmax_sym, qmax_sym)
    return codes * scale
