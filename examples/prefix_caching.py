"""Prefix-caching study: KV reuse on chat and shared-system-prompt traffic.

Three sections, all on the cost-model-driven serving simulator:

1. **Chat workload** — multi-turn sessions whose prompts replay the full
   conversation history.  Prefix caching serves the history from ref-counted
   shared KV pages and prefills only the cold suffix, cutting mean TTFT by
   multiples at high hit rates; the cache-aware admission policy additionally
   prioritizes hit-heavy requests.
2. **Shared system prompt** — many requests over a handful of long shared
   templates, the classic system-prompt amortization.
3. **Cluster routing** — the same chat traffic on a 4-replica cluster:
   round-robin scatters a session's turns (cold caches everywhere), the
   prefix-affinity router keeps them on the replica holding their blocks.

Run with:  python examples/prefix_caching.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    make_chat_workload,
    make_shared_prefix_workload,
)


def _result_row(label, result):
    m = result.metrics
    return [label,
            round(result.generation_throughput, 1),
            round(m.ttft.mean * 1e3, 1), round(m.ttft.p95 * 1e3, 1),
            f"{result.cache_hit_rate * 100:.1f}%",
            result.saved_prefill_tokens,
            result.prefix_stats.evicted_pages if result.prefix_stats else 0]


_HEADERS = ["Scheduler", "Tok/s", "TTFT mean (ms)", "TTFT p95 (ms)",
            "Hit rate", "Saved prefill tok", "Evictions"]


def chat_study(model_name: str) -> None:
    engine = ServingEngine(get_config(model_name), A100,
                           SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=4096)
    workload = make_chat_workload(num_sessions=8, turns_per_session=6,
                                  system_prompt_len=512, user_len=64,
                                  assistant_len=128, think_time_s=6.0, seed=1)
    rows = []
    for preset in ("chunked", "prefix", "prefix-aware"):
        result = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                              scheduling=SCHEDULING_PRESETS[preset])
        rows.append(_result_row(preset, result))
    print(f"Multi-turn chat ({len(workload)} requests, 8 sessions x 6 turns) "
          f"for {model_name} on A100 (QServe W4A8KV4):\n")
    print(format_table(_HEADERS, rows))


def shared_prefix_study(model_name: str) -> None:
    engine = ServingEngine(get_config(model_name), A100,
                           SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=2048)
    workload = make_shared_prefix_workload(48, shared_prefix_len=1024,
                                           unique_len=128, output_len=128,
                                           num_prefix_groups=3,
                                           arrival_rate=8.0, seed=2)
    rows = []
    for preset in ("chunked", "prefix"):
        result = engine.serve(workload.copy_fresh(), max_num_seqs=16,
                              scheduling=SCHEDULING_PRESETS[preset])
        rows.append(_result_row(preset, result))
    print(f"\nShared system prompts (48 requests over 3 x 1024-token "
          f"templates) for {model_name} on A100:\n")
    print(format_table(_HEADERS, rows))


def affinity_study(model_name: str, num_replicas: int = 4) -> None:
    cluster = ClusterEngine(get_config(model_name), A100,
                            SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=num_replicas, max_seq_len=4096)
    workload = make_chat_workload(num_sessions=8, turns_per_session=6,
                                  system_prompt_len=512, user_len=64,
                                  assistant_len=128, think_time_s=6.0, seed=3)
    rows = []
    for router in ("round-robin", "least-outstanding", "prefix-affinity"):
        result = cluster.serve(workload.copy_fresh(), router=router,
                               max_num_seqs=8,
                               scheduling=SCHEDULING_PRESETS["prefix"])
        rows.append([router,
                     f"{result.cache_hit_rate * 100:.1f}%",
                     result.saved_prefill_tokens,
                     round(result.metrics.ttft.p95 * 1e3, 1),
                     result.requests_per_replica])
    print(f"\nCache-locality routing on {num_replicas}x A100 "
          f"(prefix caching on every replica):\n")
    print(format_table(["Router", "Cluster hit rate", "Saved prefill tok",
                        "TTFT p95 (ms)", "Requests/replica"], rows))


def main(model_name: str = "llama-2-7b") -> None:
    chat_study(model_name)
    shared_prefix_study(model_name)
    affinity_study(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
