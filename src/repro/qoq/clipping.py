"""Weight clipping via output-error grid search (Section 4.3.4).

Clipping shrinks the quantization range to ``α · [min, max]``: salient but
rare weight outliers get saturated while the bulk of the distribution gains
resolution.  QoQ grid-searches ``α`` to minimise the *layer output* error
``‖X W^T − X Q(W; α)^T‖`` (and, for the query/key projections, the block
output error — approximated here by the error of the attention scores, which
is the part of the block output those projections influence).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.quant.dtypes import IntFormat, UINT4
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["search_clip_ratio", "clip_candidates"]


def clip_candidates(num_steps: int = 7, min_ratio: float = 0.70) -> np.ndarray:
    """The grid of clip ratios searched (1.0 down to ``min_ratio``)."""
    return np.linspace(1.0, min_ratio, num_steps)


def _default_quantizer(weight: np.ndarray, clip_ratio: float,
                       fmt: IntFormat, group_size: Optional[int],
                       symmetric: bool) -> np.ndarray:
    granularity = Granularity.PER_GROUP if group_size else Granularity.PER_CHANNEL
    return fake_quantize(weight, fmt, granularity=granularity, symmetric=symmetric,
                         group_size=group_size, clip_ratio=clip_ratio)


def search_clip_ratio(
    weight: np.ndarray,
    calib_inputs: np.ndarray,
    fmt: IntFormat = UINT4,
    group_size: Optional[int] = 128,
    symmetric: bool = False,
    candidates: Optional[Sequence[float]] = None,
    objective: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
    quantizer: Optional[Callable[[np.ndarray, float], np.ndarray]] = None,
) -> tuple[float, float]:
    """Grid-search the clip ratio minimising the layer output error.

    Parameters
    ----------
    weight:
        ``[out, in]`` floating point weight.
    calib_inputs:
        ``[samples, in]`` calibration activations for this layer.
    objective:
        ``objective(ref_output, quant_output) -> float``; defaults to mean
        squared error.  The QoQ pipeline passes an attention-score objective
        for ``q_proj`` / ``k_proj``.
    quantizer:
        ``quantizer(weight, clip_ratio) -> fake-quantized weight``; defaults to
        asymmetric per-group quantization in ``fmt``.  The pipeline passes the
        progressive quantizer here so the search optimises the exact format
        that will be deployed.

    Returns
    -------
    ``(best_ratio, best_error)``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    calib_inputs = np.asarray(calib_inputs, dtype=np.float64)
    if calib_inputs.ndim != 2 or calib_inputs.shape[1] != weight.shape[1]:
        raise ValueError("calib_inputs must be [samples, in_features]")
    if candidates is None:
        candidates = clip_candidates()
    if objective is None:
        objective = lambda ref, got: float(np.mean((ref - got) ** 2))
    if quantizer is None:
        quantizer = lambda w, r: _default_quantizer(w, r, fmt, group_size, symmetric)

    ref_output = calib_inputs @ weight.T
    best_ratio, best_err = 1.0, np.inf
    for ratio in candidates:
        w_q = quantizer(weight, float(ratio))
        err = objective(ref_output, calib_inputs @ w_q.T)
        if err < best_err:
            best_ratio, best_err = float(ratio), float(err)
    return best_ratio, best_err
