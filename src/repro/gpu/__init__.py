"""Analytical GPU cost model.

The QServe speedups come from keeping the GEMM main loop on INT8 tensor cores
and keeping decode attention memory-bound.  Reproducing that on a CPU requires
modelling the GPU, not running it; this package implements the roofline and
instruction-count arguments of Sections 3 and 5 as executable code:

* :mod:`repro.gpu.specs` — A100 / L40S device models;
* :mod:`repro.gpu.roofline` — roofline curves (Figure 3);
* :mod:`repro.gpu.gemm` — GEMM latency with main-loop dequantization charged
  to CUDA cores (Figure 5, Figure 18);
* :mod:`repro.gpu.attention_kernel` — decode attention latency for KV8 /
  naive KV4 / QServe KV4 (Table 1, Section 5.3);
* :mod:`repro.gpu.layout` — `ldmatrix` and compute-aware weight reordering
  simulation (Figure 12);
* :mod:`repro.gpu.rlp` — register-level-parallelism dequantization with
  overflow checking (Figures 13/14).
"""

from repro.gpu.specs import (
    GPUSpec, A100, L40S, get_gpu,
    InterconnectSpec, NVLINK, PCIE_GEN4, get_interconnect,
)
from repro.gpu.roofline import (
    gemm_roofline_tops,
    attention_roofline_tops,
    roofline_crossover_batch,
)
from repro.gpu.gemm import (
    GEMMPrecision,
    GEMM_PRECISIONS,
    GemmLatency,
    gemm_latency,
    dequant_overhead_fraction,
)
from repro.gpu.attention_kernel import (
    AttentionKernelConfig,
    AttentionLatency,
    attention_decode_latency,
    KV_KERNELS,
)
from repro.gpu.layout import (
    ldmatrix_thread_map,
    compute_thread_map,
    pointer_arithmetic_ops,
    compute_aware_reorder,
    inverse_reorder,
)
from repro.gpu.rlp import (
    simulate_vadd4,
    simulate_rlp_dequant,
    dequantize_subtract_before_multiply,
    dequantize_subtract_after_multiply,
)

__all__ = [
    "GPUSpec", "A100", "L40S", "get_gpu",
    "InterconnectSpec", "NVLINK", "PCIE_GEN4", "get_interconnect",
    "gemm_roofline_tops", "attention_roofline_tops", "roofline_crossover_batch",
    "GEMMPrecision", "GEMM_PRECISIONS", "GemmLatency", "gemm_latency",
    "dequant_overhead_fraction",
    "AttentionKernelConfig", "AttentionLatency", "attention_decode_latency",
    "KV_KERNELS",
    "ldmatrix_thread_map", "compute_thread_map", "pointer_arithmetic_ops",
    "compute_aware_reorder", "inverse_reorder",
    "simulate_vadd4", "simulate_rlp_dequant",
    "dequantize_subtract_before_multiply", "dequantize_subtract_after_multiply",
]
