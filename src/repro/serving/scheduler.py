"""In-flight (continuous) batching scheduler.

QServe, vLLM and TensorRT-LLM all admit new requests into the running batch as
soon as KV-cache pages free up, instead of waiting for the whole batch to
finish.  The scheduler below implements that, parameterised by a
:class:`repro.serving.policies.SchedulerPolicy` that fixes the admission
order, whether blocked requests may be bypassed (head-of-line bypass), and
the eviction order under preemption.

Two admission-reservation modes are supported:

* **conservative** (``preemption=False``, seed behaviour): pages for the
  request's final length (``prompt_len + output_len``) are reserved up front,
  so a running request can never be starved of pages mid-generation — the
  policy TensorRT-LLM uses when preemption is disabled.
* **optimistic** (``preemption=True``): only the tokens the request currently
  holds are reserved, which admits far more requests; when the cache later
  fills, the lowest-priority running request is *preempted*: its pages are
  reclaimed, it returns to the waiting queue in the ``PREEMPTED`` state, and
  on readmission its KV cache is recomputed by re-prefilling
  ``prompt_len + generated`` tokens (vLLM's recompute-style preemption).

With a :class:`~repro.serving.prefix_cache.PrefixCache` attached, admission
first matches each request's longest cached prompt prefix: the hit tokens
need no prefill and no private pages (the shared pool covers them), a
request's freshly prefilled blocks are published to the cache when its
prefill completes, and page pressure — at admission or when a decode crosses
a page boundary — evicts cached-but-unreferenced blocks LRU-first *before*
any running request is preempted.  Preemption and completion release the
request's block references but never reclaim a shared page outright, so a
block referenced by any other request always survives.

Disaggregated serving adds one more flow through the same machinery: a
prefill-role replica calls :meth:`ContinuousBatchingScheduler.export_request`
the moment a prefill completes (the request leaves in the ``MIGRATING`` state
and its pages are reclaimed), and the decode replica's scheduler admits the
arriving request with ``kv_ready`` set — pages are *adopted* for the
transferred KV state, no prefill is planned, and the request joins the decode
batch directly.  See :mod:`repro.serving.cluster` for the transfer pricing.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.serving.kv_cache_manager import PagedKVCacheManager, PageAllocationError
from repro.serving.policies import FCFSPolicy, SchedulerPolicy
from repro.serving.prefix_cache import PrefixCache
from repro.serving.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.serving.telemetry import Tracer

__all__ = ["ContinuousBatchingScheduler"]


def _availability(request: Request) -> float:
    """Sort key component shared by every waiting-queue ordering."""
    return request.available_time


def _waiting_key(request: Request):
    return (request.available_time, request.request_id)


@dataclass
class ContinuousBatchingScheduler:
    """Policy-driven continuous-batching scheduler over a paged KV cache."""

    kv_manager: PagedKVCacheManager
    max_num_seqs: int = 256
    policy: SchedulerPolicy = field(default_factory=FCFSPolicy)
    preemption: bool = False
    prefix_cache: Optional[PrefixCache] = None
    waiting: List[Request] = field(default_factory=list)
    running: List[Request] = field(default_factory=list)
    finished: List[Request] = field(default_factory=list)
    num_preemptions: int = 0
    recomputed_prefill_tokens: int = 0
    #: Admission-scan instrumentation: requests actually examined by
    #: :meth:`admit`'s scan loop across the run, and admit() calls resolved
    #: by a constant-time fast path (sequence cap reached, nothing arrived,
    #: or a provably full KV cache) without touching the queue.  Together
    #: they pin down the scheduler's admission work: a run whose queue never
    #: drains should resolve almost every step through the fast path instead
    #: of rescanning the whole waiting list.
    admission_scanned_requests: int = 0
    admission_fast_skips: int = 0
    #: Tier-aware admission (multi-tenant SLO tiers), default off.  When on,
    #: paid-tier requests admit ahead of free-tier ones, and free-tier
    #: requests are *deferred* (skipped without a scan) while the replica is
    #: under pressure — fewer than ``free_tier_page_headroom`` of the KV
    #: pages free, or fewer than ``free_tier_seq_headroom`` of the sequence
    #: slots open.  A deferred request older than ``tier_aging_s`` is
    #: promoted to paid rank (the aging floor: sustained paid load can delay
    #: free traffic but never starve it).  With ``free_tier_drop_after_s``
    #: set, never-admitted free-tier requests still waiting that long under
    #: pressure are dropped (load shedding) into :attr:`dropped`.
    tier_admission: bool = False
    free_tier_page_headroom: float = 0.10
    free_tier_seq_headroom: float = 0.25
    tier_aging_s: float = 5.0
    free_tier_drop_after_s: Optional[float] = None
    dropped: List[Request] = field(default_factory=list)
    tier_deferrals: int = 0
    drops_by_tier: Dict[str, int] = field(default_factory=dict)
    #: Optional telemetry recorder (:class:`~repro.serving.telemetry.Tracer`).
    #: Every hook below sits behind an ``is not None`` guard, so an untraced
    #: scheduler pays one pointer test per call site at most.
    tracer: Optional["Tracer"] = None
    #: Multi-model serving: the model whose weights every batch iteration of
    #: this scheduler runs.  ``None`` (single-model) admits any request;
    #: otherwise submission rejects requests tagged for a different model —
    #: one scheduler's batch can only ever execute its own resident model,
    #: so a mistagged request would silently produce another model's tokens.
    model_name: Optional[str] = None
    #: Clock of the current scheduling pass, stashed by :meth:`admit` for the
    #: hooks on methods that do not receive ``now`` (preemption, export) —
    #: both run at the same simulated instant as the admission pass.
    _clock: float = field(default=0.0, repr=False)

    def submit(self, requests: List[Request]) -> None:
        """Add requests to the waiting queue (sorted by availability time).

        For ordinary requests availability is the arrival time; migrated
        requests additionally wait for their KV transfer to land
        (:attr:`Request.available_time`).
        """
        if self.model_name is not None:
            for request in requests:
                if request.model is not None \
                        and request.model != self.model_name:
                    raise ValueError(
                        f"request {request.request_id} targets model "
                        f"{request.model!r}; this scheduler batches "
                        f"{self.model_name!r}")
        if self.tracer is not None:
            for request in requests:
                self.tracer.request_queued(request)
        if len(requests) == 1 and self.waiting:
            # Incremental feed (the cluster submits per arrival): a binary
            # insertion keeps the queue sorted without an O(n log n) pass.
            bisect.insort(self.waiting, requests[0], key=_waiting_key)
            return
        self.waiting.extend(requests)
        self.waiting.sort(key=_waiting_key)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _reservation_tokens(self, request: Request) -> int:
        """KV tokens to reserve at admission under the current mode."""
        if self.preemption:
            # Optimistic: only what the request holds right now (its prompt,
            # plus any generated tokens to recompute after a preemption).
            return request.context_len
        # Conservative: the request's final footprint, so growth never fails.
        return request.prompt_len + request.output_len

    def admit(self, now: float) -> List[Request]:
        """Admit waiting requests in policy order; returns the new prefills.

        With ``policy.allow_bypass`` (plain FCFS, SJF) a request blocked on
        pages or the sequence cap is skipped and later requests may still be
        admitted.  Under ``strict-fcfs`` admission halts at the first blocked
        request so that arrival order is never violated.

        The returned list feeds the iteration planner, so it contains only
        requests that actually need prefill work: a migrated request
        (``kv_ready``) adopts its transferred pages and enters the running
        batch directly in the decoding state.

        The scan is *incremental*: steps on which admission provably cannot
        change anything — the sequence cap is already reached, no waiting
        request has arrived yet, or (without a prefix cache) the KV cache
        has no free page and no waiting request can ever need zero — return
        immediately without walking the queue, and the scan loop stops the
        moment the cap is hit or a no-bypass policy blocks.  Every fast path
        is a pure short-circuit of the full scan: the admissions it returns
        and the queue it leaves behind are identical, step for step.
        """
        self._clock = now
        if (self.tier_admission and self.free_tier_drop_after_s is not None
                and self.waiting):
            self._shed_free_tier(now)
        waiting = self.waiting
        if not waiting:
            return []
        if len(self.running) >= self.max_num_seqs:
            # Cap reached before anything could be admitted: the full scan
            # would block every arrived request and leave the (sorted) queue
            # unchanged.
            self.admission_fast_skips += 1
            return []
        # The queue is kept sorted by (available_time, request_id), so the
        # arrived/pending split is a binary search, not a full partition.
        split = bisect.bisect_right(waiting, now, key=_availability)
        if split == 0:
            self.admission_fast_skips += 1
            return []  # nothing has arrived yet
        if self.prefix_cache is None and self.kv_manager.free_pages <= 0:
            # No free page and no shared pool to evict from: every waiting
            # request needs at least one fresh page (waiting requests hold
            # no allocation), so the scan would block all of them.
            self.admission_fast_skips += 1
            return []
        arrived = waiting[:split]
        pending = waiting[split:]

        admitted: List[Request] = []
        order = self.policy.admission_order(arrived)
        if self.tier_admission:
            # Paid tier first; a free-tier request past the aging floor
            # counts as paid (stable sort keeps the policy order within each
            # rank).  Tier rank deliberately outranks arrival order — that is
            # what a priority tier *is* — so even strict-FCFS reorders across
            # tiers when this mode is on.
            order = sorted(order, key=lambda r: self._tier_rank(r, now))
        for request in order:
            if (self.tier_admission and self._tier_rank(request, now)
                    and self._tier_pressure(len(admitted))):
                # Deferred free-tier request: a constant-time pre-screen, not
                # an admission scan — it must not inflate
                # ``admission_scanned_requests`` (the request was never
                # examined against pages or the cap).
                self.tier_deferrals += 1
                continue
            self.admission_scanned_requests += 1
            if len(self.running) + len(admitted) >= self.max_num_seqs:
                # The cap blocks this and every later request (nothing below
                # can admit once it is reached), so stop scanning.
                break
            if self.preemption and self.kv_manager.pages_for_tokens(
                    request.prompt_len + request.output_len) > self.kv_manager.total_pages:
                # Optimistic admission still refuses requests whose *final*
                # footprint exceeds the whole cache: no amount of preemption
                # could ever finish them, so admitting would end in a
                # mid-decode allocation failure instead of a clean
                # never-admitted report.
                if not self.policy.allow_bypass:
                    break
                continue
            tokens = self._reservation_tokens(request)
            cached_nodes: List = []
            shared_pages = 0
            pinned = False
            promote_need = 0
            if self.prefix_cache is not None:
                pinned = self.prefix_cache.is_pinned(request.request_id)
                if pinned:
                    # An in-flight migration pinned its prefix when the
                    # transfer was priced; reuse those references (matching
                    # again would double-count them).  The pinned blocks are
                    # referenced, so the eviction pass cannot touch them.
                    shared_pages = request.shared_kv_pages
                else:
                    cached_nodes, _ = self.prefix_cache.match(request)
                    shared_pages = len(cached_nodes)
                    # Hitting demoted blocks restores them to full precision
                    # at acquire time, which consumes the capacity demotion
                    # reclaimed — budget those pages alongside the cold
                    # suffix so the promotions are pre-funded.  Always zero
                    # with demotion off.
                    promote_need = self.prefix_cache.promotion_page_need(
                        cached_nodes)
                shortfall = (self.kv_manager.pages_needed(
                    request.request_id, tokens, shared_pages)
                    + promote_need
                    - self.kv_manager.free_pages)
                if (shortfall > 0 and shortfall
                        <= self.prefix_cache.evictable_pages(cached_nodes)):
                    # Reclaim unreferenced cached blocks before refusing
                    # admission, shielding the blocks this request matched.
                    # When even a full eviction pass could not cover the
                    # shortfall (e.g. a request larger than the whole cache)
                    # the shared blocks are left alone: flushing them would
                    # not admit this request but would destroy every other
                    # request's reuse.
                    self.prefix_cache.evict(shortfall, protect=cached_nodes)
            if promote_need:
                fits = (self.kv_manager.pages_needed(
                    request.request_id, tokens, shared_pages) + promote_need
                    <= self.kv_manager.free_pages)
            else:
                fits = self.kv_manager.can_allocate(request.request_id,
                                                    tokens, shared_pages)
            if fits:
                if request.kv_ready:
                    # The uncached pages' contents arrive via KV transfer.
                    self.kv_manager.adopt(request.request_id, tokens,
                                          shared_pages)
                else:
                    self.kv_manager.allocate(request.request_id, tokens,
                                             shared_pages)
                if self.prefix_cache is not None and not pinned:
                    self.prefix_cache.acquire(request, cached_nodes,
                                              count_stats=not request.kv_ready)
                self._begin_prefill(request, now)
                admitted.append(request)
            elif not self.policy.allow_bypass:
                break
        if not admitted:
            return []  # every arrived request stayed blocked; queue unchanged
        # The blocked requests re-queue in their original order: ``arrived``
        # is already sorted by (available_time, request_id) and filtering
        # preserves that, so no re-sort is needed to restore the queue's
        # global ordering (every blocked request arrived, every pending one
        # has not).
        admitted_ids = {id(r) for r in admitted}
        self.waiting = [r for r in arrived
                        if id(r) not in admitted_ids] + pending
        self.running.extend(admitted)
        return [r for r in admitted if r.state is RequestState.PREFILLING]

    # ------------------------------------------------------------------
    # Tier-aware admission (multi-tenant SLO tiers)
    # ------------------------------------------------------------------
    def _tier_rank(self, request: Request, now: float) -> int:
        """0 for paid-rank requests, 1 for deferrable free-tier ones.

        Free-tier requests that have waited at least ``tier_aging_s`` since
        becoming available are promoted to paid rank — the aging floor that
        keeps sustained paid load from starving free traffic forever.
        """
        if request.tier != "free":
            return 0
        return 1 if now - request.available_time < self.tier_aging_s else 0

    def _tier_pressure(self, extra_seqs: int = 0) -> bool:
        """Is the replica under page or queue pressure right now?

        ``extra_seqs`` counts requests admitted earlier in the same pass, so
        pressure can develop mid-scan as admissions consume slots and pages.
        """
        kv = self.kv_manager
        if kv.free_pages < self.free_tier_page_headroom * kv.total_pages:
            return True
        open_slots = self.max_num_seqs - len(self.running) - extra_seqs
        return open_slots <= self.free_tier_seq_headroom * self.max_num_seqs

    def _shed_free_tier(self, now: float) -> None:
        """Drop never-admitted free-tier requests stuck past the shed cutoff.

        Load shedding applies only under pressure and only to requests that
        were never admitted (``admitted_time is None``): a preempted request
        has already consumed prefill work, so killing it would waste more
        capacity than finishing it.  Dropped requests leave the queue in the
        terminal ``DROPPED`` state with ``drop_time`` stamped.
        """
        if not self._tier_pressure():
            return
        kept: List[Request] = []
        for request in self.waiting:
            if (request.tier == "free" and request.admitted_time is None
                    and request.available_time <= now
                    and now - request.available_time
                    > self.free_tier_drop_after_s):
                request.state = RequestState.DROPPED
                request.drop_time = now
                self.dropped.append(request)
                self.drops_by_tier[request.tier] = \
                    self.drops_by_tier.get(request.tier, 0) + 1
                if self.tracer is not None:
                    self.tracer.request_dropped(request, now)
            else:
                kept.append(request)
        if len(kept) != len(self.waiting):
            self.waiting = kept

    def _begin_prefill(self, request: Request, now: float) -> None:
        if request.kv_ready:
            # Disaggregated handoff: the full context's KV state was
            # transferred from the prefill replica, so the request skips
            # prefill and joins the decode batch directly.  Its complete
            # prompt blocks are published to this replica's prefix cache so
            # later same-prefix arrivals (and future migrations, which then
            # transfer only their cold suffix) reuse them.
            request.state = RequestState.DECODING
            request.prefill_target = 0
            request.prefilled = 0
            request.served_precision_bits = \
                self.kv_manager.system.min_precision_bits
            if self.prefix_cache is not None:
                self.prefix_cache.insert(request)
            if request.admitted_time is None:
                request.admitted_time = now
            if self.tracer is not None:
                self.tracer.request_admitted(request, now)
            return
        was_preempted = request.state is RequestState.PREEMPTED
        request.state = RequestState.PREFILLING
        request.served_precision_bits = \
            self.kv_manager.system.min_precision_bits
        # Cache-hit tokens (``cached_tokens``, stamped by the prefix cache at
        # acquire time; zero without a cache) need no prefill — only the cold
        # suffix does.  The cap at prompt_len - 1 hit tokens guarantees a
        # nonzero target.
        request.prefill_target = request.context_len - request.cached_tokens
        request.prefilled = 0
        if was_preempted:
            # Recompute-style readmission: the KV cache of the prompt *and*
            # all previously generated tokens must be rebuilt (minus whatever
            # prompt prefix the cache still holds).
            self.recomputed_prefill_tokens += request.prefill_target
        if request.admitted_time is None:
            request.admitted_time = now
        if self.tracer is not None:
            self.tracer.request_admitted(request, now)

    # ------------------------------------------------------------------
    # Prefill progress
    # ------------------------------------------------------------------
    def record_prefill(self, request: Request, tokens: int, now: float) -> None:
        """Account ``tokens`` of prefill progress; completes the prefill when
        the target is reached and moves the request to the decoding state."""
        if request.state is not RequestState.PREFILLING:
            raise ValueError(f"request {request.request_id} is not prefilling")
        request.prefilled += tokens
        if request.prefilled >= request.prefill_target:
            request.state = RequestState.DECODING
            request.prefill_done_time = now
            if self.prefix_cache is not None:
                # Publish the freshly prefilled prompt blocks for reuse.
                self.prefix_cache.insert(request)
            if self.tracer is not None:
                self.tracer.prefill_done(request, now)

    def complete_prefill(self, now: float) -> None:
        """Finish the prefill of every prefilling request (legacy stall path)."""
        for request in self.running:
            if request.state is RequestState.PREFILLING:
                self.record_prefill(request, request.prefill_remaining, now)

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _release_kv_residency(self, request: Request) -> None:
        """Drop a running request's KV residency on this device.

        Prefix references are released (the shared blocks stay cached for
        other requests), private pages are reclaimed, and the request leaves
        the running batch — the teardown shared by preemption and the
        disaggregated export.
        """
        if self.prefix_cache is not None:
            self.prefix_cache.release(request.request_id)
        request.cached_tokens = 0
        request.shared_kv_pages = 0
        request.demoted_hit_tokens = 0
        self.kv_manager.free(request.request_id)
        self.running.remove(request)

    def _preempt(self, request: Request) -> None:
        """Reclaim a running request's private pages and return it to the queue.

        Shared blocks are only de-referenced, never freed here: another
        request may still be reading them, and an unreferenced block stays
        cached for the victim's own readmission.
        """
        self._release_kv_residency(request)
        request.state = RequestState.PREEMPTED
        request.preemptions += 1
        request.prefilled = 0
        # The whole context must be re-prefilled on readmission; keep the
        # target current so prefill_remaining (and SJF ordering) reflect the
        # true recompute cost while the request sits in the queue.  A
        # preempted *migrated* request loses its transferred pages with the
        # rest, so it falls back to local recompute like any other victim.
        request.prefill_target = request.context_len
        request.kv_ready = False
        bisect.insort(self.waiting, request, key=_waiting_key)
        self.num_preemptions += 1
        if self.tracer is not None:
            self.tracer.request_preempted(request, self._clock)

    # ------------------------------------------------------------------
    # Disaggregated handoff
    # ------------------------------------------------------------------
    def export_request(self, request: Request) -> None:
        """Hand an in-flight request off to another replica (prefill→decode).

        Called by a prefill-role replica the instant a prefill completes: the
        request leaves the running batch in the ``MIGRATING`` state and its
        local KV pages are reclaimed — the KV *state* travels to the decode
        replica as a priced transfer, not as pages on this device.  Prefix
        references are only dropped, so blocks the prefill published stay
        cached here for future same-prefix arrivals.
        """
        if request.state is not RequestState.DECODING:
            raise ValueError(
                f"request {request.request_id} has not completed prefill; "
                f"only prefill-complete requests migrate")
        self._release_kv_residency(request)
        request.state = RequestState.MIGRATING
        request.kv_ready = True
        if self.tracer is not None:
            self.tracer.request_exported(request, self._clock)

    def prepare_decode(self, lookahead: Optional[Callable[[Request], int]] = None
                       ) -> List[Request]:
        """Guarantee every decoding request can append its next token(s).

        Under optimistic admission a decode step may need a fresh page for a
        request whose context crosses a page boundary.  Pages are claimed here,
        highest-priority request first; when the cache is exhausted the
        policy's lowest-priority *running* request (decoding or prefilling) is
        preempted until the claim fits.  Returns the surviving decode batch.

        ``lookahead`` (speculative decoding) returns the extra draft tokens a
        request will verify beyond its next token, so the claim covers the
        whole speculated block optimistically; tokens rejected at
        verification are trimmed back by :meth:`record_decode_step`, keeping
        page conservation exact.
        """
        decoding = self.decoding_requests()
        if not self.preemption or not decoding:
            return decoding
        # Fast path: on most iterations no decode crosses a page boundary, so
        # every claim below would be a no-op allocation.  Checking that first
        # skips the policy sort and the per-request claim machinery; the full
        # pass runs only on steps where at least one fresh page is needed.
        kv_manager = self.kv_manager
        for request in decoding:
            claim = request.context_len + 1
            if lookahead is not None:
                claim += lookahead(request)
            if kv_manager.needs_pages(request.request_id, claim,
                                      request.shared_kv_pages):
                break
        else:
            return decoding
        survivors: List[Request] = []
        for request in self.policy.admission_order(decoding):
            if request.state is not RequestState.DECODING:
                continue  # preempted as a victim earlier in this pass
            claim = request.context_len + 1
            if lookahead is not None:
                claim += lookahead(request)
            preempted_self = False
            while True:
                deficit = (kv_manager.pages_needed(
                    request.request_id, claim,
                    request.shared_kv_pages) - kv_manager.free_pages)
                if deficit <= 0:
                    break  # the claim fits
                if (self.prefix_cache is not None
                        and self.prefix_cache.evict(deficit) > 0):
                    # Unreferenced cached blocks go before any running
                    # request is preempted.
                    continue
                victim = self._pick_victim(protect=survivors + [request])
                if victim is None:
                    # Nothing lower-priority left to evict.
                    if survivors or len(self.running) > 1:
                        self._preempt(request)
                        preempted_self = True
                        break
                    raise PageAllocationError(
                        f"request {request.request_id} needs "
                        f"{claim} tokens of KV cache but the "
                        f"device holds only "
                        f"{kv_manager.total_pages * kv_manager.page_size}")
                self._preempt(victim)
            if not preempted_self:
                if kv_manager.needs_pages(request.request_id, claim,
                                          request.shared_kv_pages):
                    kv_manager.allocate(request.request_id, claim,
                                        request.shared_kv_pages)
                survivors.append(request)
        return survivors

    def _pick_victim(self, protect: List[Request]) -> Optional[Request]:
        protected = {id(r) for r in protect}
        candidates = [r for r in self.running if id(r) not in protected]
        if not candidates:
            return None
        return self.policy.victim_order(candidates)[0]

    # ------------------------------------------------------------------
    # Decode accounting
    # ------------------------------------------------------------------
    def record_decode_step(self, now: float,
                           commits: Optional[Dict[int, int]] = None
                           ) -> List[Request]:
        """Account generated tokens per decoding request; retire finished ones.

        Without ``commits`` every decoding request advances by one token (the
        plain decode step).  With ``commits`` (speculative decoding) each
        request advances by its committed token count — accepted draft tokens
        plus the bonus token, so always >= 1 for participants; requests absent
        from the mapping are left untouched.  Under optimistic reservation the
        speculative page claim made by :meth:`prepare_decode` is trimmed back
        to the tokens actually kept, releasing the rejected tokens' pages
        (conservative reservation never allocated them in the first place).
        """
        self._clock = now
        completed: List[Request] = []
        survivors: List[Request] = []
        kv_manager = self.kv_manager
        for request in self.running:
            if request.state is not RequestState.DECODING:
                survivors.append(request)
                continue
            if commits is None:
                tokens = 1
            else:
                tokens = commits.get(request.request_id, 0)
                if tokens <= 0:
                    survivors.append(request)
                    continue
            request.generated = min(request.output_len,
                                    request.generated + tokens)
            if request.first_token_time is None:
                request.first_token_time = now
                if self.tracer is not None:
                    self.tracer.first_token(request, now)
            if request.finished:
                request.state = RequestState.FINISHED
                request.finish_time = now
                if self.prefix_cache is not None:
                    self.prefix_cache.release(request.request_id)
                kv_manager.free(request.request_id)
                completed.append(request)
                if self.tracer is not None:
                    self.tracer.request_finished(request, now)
            else:
                # Grow the allocation to cover the newly generated token(s) —
                # a no-op under conservative reservation and pre-claimed by
                # prepare_decode under preemption, so the grow call is skipped
                # unless the new context actually crosses a page boundary.
                if kv_manager.needs_pages(request.request_id,
                                          request.context_len,
                                          request.shared_kv_pages):
                    kv_manager.allocate(request.request_id,
                                        request.context_len,
                                        request.shared_kv_pages)
                if commits is not None and self.preemption:
                    # Roll back the optimistic speculative claim: pages held
                    # for drafted-but-rejected tokens are released again.
                    kv_manager.trim(request.request_id,
                                    request.context_len,
                                    request.shared_kv_pages)
                survivors.append(request)
        self.running = survivors
        self.finished.extend(completed)
        return completed

    # ------------------------------------------------------------------
    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def all_done(self) -> bool:
        return not self.waiting and not self.running

    def decoding_requests(self) -> List[Request]:
        return [r for r in self.running if r.state is RequestState.DECODING]

    def prefilling_requests(self) -> List[Request]:
        return [r for r in self.running if r.state is RequestState.PREFILLING]
