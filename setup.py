"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (legacy editable installs need neither network access nor
the ``wheel`` package).
"""

from setuptools import setup

setup()
