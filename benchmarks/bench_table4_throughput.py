"""Benchmark regenerating Table 4, Figure 15 and artifact Table 6 (throughput)."""

from repro.experiments import table4_throughput
from repro.gpu import A100, L40S


def test_table4_a100(benchmark):
    report = benchmark.pedantic(table4_throughput.run, args=(A100,), rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(s > 1.0 for s in report.column("Speedup vs best TRT"))


def test_table4_l40s(benchmark):
    report = benchmark.pedantic(table4_throughput.run, args=(L40S,), rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(s > 1.0 for s in report.column("Speedup vs best TRT"))


def test_fig15_speedups(benchmark):
    report = benchmark.pedantic(table4_throughput.run_fig15_speedups, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    geo = report.extra["geomean"]
    assert geo["A100"] > 1.0 and geo["L40S"] > 1.0


def test_table6_artifact(benchmark):
    report = benchmark.pedantic(table4_throughput.run_table6, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(row[-1] > 1.0 for row in report.rows)
