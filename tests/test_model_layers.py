"""Tests for the basic NumPy layers and RoPE."""

import numpy as np
import pytest

from repro.model import Linear, RotaryEmbedding, apply_rope, rms_norm, silu, softmax, swiglu


def test_rms_norm_normalises():
    rng = np.random.default_rng(0)
    x = rng.normal(0, 5, size=(10, 32))
    out = rms_norm(x, np.ones(32))
    rms = np.sqrt(np.mean(out ** 2, axis=-1))
    np.testing.assert_allclose(rms, 1.0, atol=1e-3)


def test_rms_norm_weight_scales_channels():
    x = np.ones((2, 4))
    w = np.array([1.0, 2.0, 3.0, 4.0])
    out = rms_norm(x, w)
    np.testing.assert_allclose(out[0], w, atol=1e-4)


def test_silu_matches_definition():
    x = np.linspace(-5, 5, 101)
    expected = x / (1 + np.exp(-x))
    np.testing.assert_allclose(silu(x), expected, atol=1e-9)


def test_softmax_rows_sum_to_one_and_handle_large_values():
    x = np.array([[1000.0, 1000.0, -np.inf], [0.0, 1.0, 2.0]])
    p = softmax(x)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0)
    assert p[0, 2] == 0.0


def test_swiglu_is_gated_product():
    gate = np.array([0.0, 1.0])
    up = np.array([3.0, 3.0])
    out = swiglu(gate, up)
    assert out[0] == 0.0
    assert out[1] == pytest.approx(3.0 * silu(np.array([1.0]))[0])


def test_linear_matmul_and_validation():
    w = np.arange(6, dtype=float).reshape(2, 3)
    layer = Linear(w, name="test")
    x = np.ones((4, 3))
    np.testing.assert_allclose(layer(x), x @ w.T)
    assert layer.out_features == 2 and layer.in_features == 3
    with pytest.raises(ValueError):
        layer(np.ones((4, 5)))
    with pytest.raises(ValueError):
        Linear(np.ones(3))


def test_rope_preserves_norm_and_zero_position_is_identity():
    rope = RotaryEmbedding(head_dim=16, max_seq_len=64)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(5, 2, 16))
    cos, sin = rope.tables(np.arange(5))
    rotated = apply_rope(x, cos, sin)
    np.testing.assert_allclose(np.linalg.norm(rotated, axis=-1),
                               np.linalg.norm(x, axis=-1), atol=1e-9)
    np.testing.assert_allclose(rotated[0], x[0], atol=1e-12)  # position 0


def test_rope_relative_property():
    """Dot products of rotated q/k depend only on relative position."""
    rope = RotaryEmbedding(head_dim=8, max_seq_len=32)
    rng = np.random.default_rng(1)
    q = rng.normal(size=(1, 1, 8))
    k = rng.normal(size=(1, 1, 8))
    def score(pq, pk):
        cq, sq = rope.tables(np.array([pq]))
        ck, sk = rope.tables(np.array([pk]))
        return float(np.sum(apply_rope(q, cq, sq) * apply_rope(k, ck, sk)))
    assert score(3, 1) == pytest.approx(score(10, 8), abs=1e-9)


def test_rope_rejects_out_of_range_positions_and_odd_dim():
    rope = RotaryEmbedding(head_dim=8, max_seq_len=4)
    with pytest.raises(ValueError):
        rope.tables(np.array([4]))
    with pytest.raises(ValueError):
        RotaryEmbedding(head_dim=7, max_seq_len=4)
