"""Telemetry subsystem tests: determinism, default-off identity, Chrome
trace schema, exact latency reconstruction, counters and SLO attribution."""

from __future__ import annotations

import io
import json

import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    PHASES,
    ClusterEngine,
    CounterRegistry,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    TelemetryConfig,
    Tracer,
    attribute_slo,
    collect_counters,
    make_bursty_workload,
    make_chat_workload,
    make_uniform_workload,
    trace_phase_records,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _engine(llama7b, max_seq_len=1024):
    return ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=max_seq_len)


def _traced_run(llama7b, telemetry=True, preset="chunked-preempt", seed=5):
    engine = _engine(llama7b)
    workload = make_bursty_workload(num_requests=40, seed=seed)
    return engine.serve(workload, max_num_seqs=8,
                        scheduling=SCHEDULING_PRESETS[preset],
                        telemetry=telemetry)


def _trace_bytes(result) -> str:
    buf = io.StringIO()
    write_chrome_trace(buf, result.telemetry)
    return buf.getvalue()


# ----------------------------------------------------------------------
# Determinism + default-off identity
# ----------------------------------------------------------------------
def test_two_identical_traced_runs_export_byte_identical_traces(llama7b):
    a = _trace_bytes(_traced_run(llama7b))
    b = _trace_bytes(_traced_run(llama7b))
    assert a == b


def test_cluster_traced_runs_export_byte_identical_traces(llama7b):
    def run():
        cluster = ClusterEngine(llama7b, A100,
                                SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                                num_replicas=3, max_seq_len=1024)
        workload = make_bursty_workload(num_requests=60, seed=9)
        result = cluster.serve(
            workload, router="least-outstanding", max_num_seqs=8,
            scheduling=SCHEDULING_PRESETS["chunked-preempt"], telemetry=True)
        buf = io.StringIO()
        write_chrome_trace(buf, result.chrome_trace())
        return result, buf.getvalue()

    result_a, trace_a = run()
    _result_b, trace_b = run()
    assert trace_a == trace_b
    assert len(result_a.tracers) == 3


def test_tracing_does_not_perturb_the_simulation(llama7b):
    """A traced run commits the exact same schedule as an untraced one."""
    plain = _traced_run(llama7b, telemetry=None)
    traced = _traced_run(llama7b, telemetry=True)
    assert plain.total_time_s.hex() == traced.total_time_s.hex()
    assert plain.generated_tokens == traced.generated_tokens
    assert plain.num_iterations == traced.num_iterations
    assert plain.num_preemptions == traced.num_preemptions
    for a, b in zip(plain.metrics.requests, traced.metrics.requests):
        assert a == b
    assert plain.telemetry is None
    assert traced.telemetry is not None


def test_telemetry_off_records_nothing(llama7b):
    result = _traced_run(llama7b, telemetry=None)
    assert result.telemetry is None
    # Counters ride on every result, traced or not.
    assert result.counters is not None
    assert result.counters.get("engine_iterations_total") == \
        result.num_iterations


# ----------------------------------------------------------------------
# Chrome trace schema
# ----------------------------------------------------------------------
def _load_trace(result) -> dict:
    return json.loads(_trace_bytes(result))


def test_chrome_trace_schema(llama7b):
    trace = _load_trace(_traced_run(llama7b))
    events = trace["traceEvents"]
    assert events, "trace must not be empty"
    for event in events:
        assert event["ph"] in ("M", "X", "b", "n", "e", "C")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["ts"], (int, float))
        assert event["ts"] >= 0
        assert "name" in event and "cat" in event
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] in ("b", "n", "e"):
            assert "id" in event
    # Metadata names the process and both threads.
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}


def test_chrome_trace_spans_nest_correctly(llama7b):
    """Every async begin has a matching end, at a later-or-equal ts, and
    phase spans lie inside their request's outer span."""
    trace = _load_trace(_traced_run(llama7b))
    outer: dict = {}
    for event in trace["traceEvents"]:
        if event.get("cat") != "request":
            continue
        key = (event["pid"], event["id"], event["name"])
        if event["ph"] == "b":
            outer.setdefault(key, []).append(event["ts"])
        elif event["ph"] == "e":
            assert key in outer and outer[key], f"unmatched end for {key}"
            start = outer[key].pop()
            assert event["ts"] >= start
    dangling = {k: v for k, v in outer.items() if v}
    assert not dangling, f"unclosed spans: {dangling}"


def test_iteration_slices_are_sequential_per_replica(llama7b):
    trace = _load_trace(_traced_run(llama7b))
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert slices
    end = 0.0
    for event in sorted(slices, key=lambda e: e["ts"]):
        assert event["ts"] >= end - 1e-6
        end = event["ts"] + event["dur"]
        assert event["args"]["committed_tokens"] >= 0


# ----------------------------------------------------------------------
# Exact reconstruction + attribution
# ----------------------------------------------------------------------
def test_trace_reconstructs_ttft_tpot_exactly(llama7b):
    result = _traced_run(llama7b)
    records = trace_phase_records(_load_trace(result))
    by_id = {m.request_id: m for m in result.metrics.requests}
    assert len(records) == len(by_id)
    for record in records:
        metrics = by_id[record.request_id]
        assert record.ttft.hex() == metrics.ttft.hex()
        assert record.tpot.hex() == metrics.tpot.hex()
        assert record.e2e_latency.hex() == metrics.e2e_latency.hex()


def test_phase_attribution_covers_the_ttft_window(llama7b):
    """Phase seconds sum to (almost exactly) each request's TTFT: the span
    model accounts for the whole window, leaving no unexplained gap."""
    result = _traced_run(llama7b)
    records = trace_phase_records(_load_trace(result))
    for record in records:
        accounted = sum(record.phase_s[p] for p in PHASES)
        assert accounted == pytest.approx(record.ttft, abs=1e-9)


def test_attribute_slo_flags_violators(llama7b):
    result = _traced_run(llama7b)
    trace = _load_trace(result)
    # An impossible TTFT objective: every request violates, and the
    # dominant phase is whichever eats the biggest share.
    att = attribute_slo(trace, ttft_slo_s=0.0, tpot_slo_s=1.0)
    assert att.attainment == 0.0
    assert len(att.violators) == len(att.records)
    assert att.dominant_phase() in PHASES
    # A no-op objective: nobody violates.
    att = attribute_slo(trace, ttft_slo_s=1e9, tpot_slo_s=1e9)
    assert att.attainment == 1.0
    assert att.dominant_phase() is None
    assert [r.request_id for r in att.worst(3)] == \
        [r.request_id for r in sorted(att.records,
                                      key=lambda r: -r.ttft)[:3]]


def test_attainment_matches_serving_metrics(llama7b):
    result = _traced_run(llama7b)
    att = attribute_slo(_load_trace(result), 0.05, 0.02)
    # Same per-request rule, exact timestamps -> same attainment as the
    # live metrics (no precision floors in this workload).
    assert att.attainment == pytest.approx(
        result.metrics.slo_attainment(0.05, 0.02))


def test_preemption_stall_phase_is_attributed(llama7b, monkeypatch):
    """A run with preemptions produces stall spans on the victims."""
    engine = _engine(llama7b, max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 0.9 * (1 << 30))
    workload = make_uniform_workload(12, prompt_len=1024, output_len=512)
    result = engine.serve(workload,
                          scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                          telemetry=True)
    assert result.num_preemptions > 0
    kinds = {e[1] for e in result.telemetry.events}
    assert "preempted" in kinds
    spans = result.telemetry.phase_spans()
    assert any(phase == "stall"
               for spans_ in spans.values() for phase, _, _ in spans_)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_counter_registry_roundtrip_and_merge():
    a = CounterRegistry()
    a.set("x_total", 3)
    a.inc("x_total", 2)
    a.set("u_ratio", 0.25, kind="gauge")
    b = CounterRegistry()
    b.set("x_total", 10)
    b.set("y_total", 1)
    merged = CounterRegistry().merge(a).merge(b)
    assert merged.get("x_total") == 15
    assert merged.get("y_total") == 1
    assert merged.get("u_ratio") == 0.25
    text = merged.prometheus_text()
    assert "# TYPE repro_u_ratio gauge" in text
    assert "repro_x_total 15" in text
    assert a == CounterRegistry().merge(a)
    assert a != b
    with pytest.raises(ValueError):
        a.set("bad", 1, kind="histogram")


def test_collect_counters_matches_component_state(llama7b):
    engine = _engine(llama7b)
    workload = make_chat_workload(num_sessions=12, seed=2)
    result = engine.serve(workload, max_num_seqs=8,
                          scheduling=SCHEDULING_PRESETS["prefix-aware"])
    counters = result.counters
    assert counters.get("engine_generated_tokens_total") == \
        result.generated_tokens
    assert counters.get("scheduler_preemptions_total") == \
        result.num_preemptions
    assert counters.get("prefix_hit_tokens_total") == \
        result.prefix_stats.hit_tokens
    # With prefix caching, shared blocks stay resident after their owners
    # finish, so allocated > freed at end of run; without it the ledger
    # must balance exactly (checked below on a prefix-free run).
    assert counters.get("kv_pages_allocated_total") >= \
        counters.get("kv_pages_freed_total")

    plain = _engine(llama7b)
    plain_result = plain.serve(workload, max_num_seqs=8,
                               scheduling=SCHEDULING_PRESETS["chunked"])
    plain_counters = plain_result.counters
    assert plain_counters.get("kv_pages_allocated_total") == \
        plain_counters.get("kv_pages_freed_total")  # conservation


def test_cluster_counters_merge_replicas(llama7b):
    cluster = ClusterEngine(llama7b, A100,
                            SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=3, max_seq_len=1024)
    workload = make_bursty_workload(num_requests=45, seed=4)
    result = cluster.serve(workload, max_num_seqs=8,
                           scheduling=SCHEDULING_PRESETS["chunked"])
    merged = result.counters()
    assert merged.get("scheduler_finished_requests_total") == \
        result.num_finished
    assert merged.get("engine_generated_tokens_total") == \
        result.generated_tokens
    per_replica = sum(r.counters.get("kv_total_pages")
                      for r in result.replica_results)
    assert merged.get("kv_total_pages") == per_replica


# ----------------------------------------------------------------------
# Structured export (S1) + config validation
# ----------------------------------------------------------------------
def test_serving_result_to_json_is_serializable_and_complete(llama7b):
    result = _traced_run(llama7b)
    payload = json.loads(json.dumps(result.to_json()))
    assert payload["num_finished"] == result.num_finished
    assert payload["generation_throughput"] == result.generation_throughput
    assert payload["metrics"]["ttft"]["p99"] == result.metrics.ttft.p99
    assert payload["counters"]["engine_iterations_total"] == \
        result.num_iterations


def test_cluster_result_to_json(llama7b):
    cluster = ClusterEngine(llama7b, A100,
                            SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=2, max_seq_len=1024)
    workload = make_bursty_workload(num_requests=30, seed=6)
    result = cluster.serve(workload, max_num_seqs=8)
    payload = json.loads(json.dumps(result.to_json()))
    assert payload["num_replicas"] == 2
    assert len(payload["replica_results"]) == 2
    assert payload["generated_tokens"] == result.generated_tokens
    assert payload["counters"] == result.counters().as_dict()


def test_telemetry_config_validation(llama7b):
    with pytest.raises(ValueError):
        TelemetryConfig(sample_interval_s=0.0)
    with pytest.raises(TypeError):
        _traced_run(llama7b, telemetry="yes")
    # Recorder toggles: spans off -> no events, series off -> no samples.
    slim = _traced_run(
        llama7b, telemetry=TelemetryConfig(spans=False, timeseries=False))
    assert slim.telemetry.events == []
    assert slim.telemetry.series == []
    assert slim.telemetry.iterations  # iteration records still on
    custom_tracer = Tracer(replica_index=7, replica_name="probe")
    traced = _traced_run(llama7b, telemetry=custom_tracer)
    assert traced.telemetry is custom_tracer
    assert custom_tracer.chrome_trace()["traceEvents"][0]["pid"] == 7


def test_collect_counters_works_on_untraced_spec_run(llama7b):
    """Speculation counters surface in the registry."""
    from repro.serving import EngineStepper, SpeculativeConfig
    engine = _engine(llama7b)
    spec = SpeculativeConfig(draft_model=get_config("llama-68m"),
                             lookahead=2)
    stepper = EngineStepper(engine, max_num_seqs=4,
                            scheduling=SCHEDULING_PRESETS["chunked"],
                            speculative=spec)
    workload = make_bursty_workload(num_requests=10, seed=8)
    stepper.submit(list(workload.requests))
    stepper.run()
    counters = collect_counters(stepper)
    assert counters.get("spec_steps_total") == stepper.spec.stats.spec_steps
    assert counters.get("spec_committed_tokens_total") == \
        stepper.spec.stats.committed_tokens
