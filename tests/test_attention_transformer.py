"""Tests for attention, the KV cache and the full transformer."""

import numpy as np
import pytest

from repro.model import (
    AttentionConfig,
    KVCache,
    TransformerModel,
    get_config,
    multi_head_attention,
)
from repro.model.transformer import ForwardConfig
from repro.quant.kv_quant import KVQuantConfig


def _qkv(tokens=6, heads=4, kv_heads=2, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(tokens, heads, dim))
    k = rng.normal(size=(tokens, kv_heads, dim))
    v = rng.normal(size=(tokens, kv_heads, dim))
    return q, k, v


def test_attention_output_shape_gqa():
    q, k, v = _qkv()
    cfg = AttentionConfig(num_heads=4, num_kv_heads=2, head_dim=8)
    out = multi_head_attention(q, k, v, cfg)
    assert out.shape == (6, 4, 8)


def test_causal_mask_first_token_attends_only_itself():
    q, k, v = _qkv()
    cfg = AttentionConfig(num_heads=4, num_kv_heads=2, head_dim=8)
    out = multi_head_attention(q, k, v, cfg, causal=True)
    # Token 0 can only attend to itself, so its output equals v[0] expanded.
    expected = np.repeat(v[0][None], 2, axis=1).reshape(1, 4, 8)[0]
    np.testing.assert_allclose(out[0], expected, atol=1e-9)


def test_incremental_cache_matches_full_forward(tiny_model):
    """Decoding token-by-token with a cache gives the same logits as a single
    full forward pass — the core KV-cache correctness property."""
    tokens = np.arange(10) % tiny_model.config.vocab_size
    full = tiny_model.forward(tokens)
    caches = tiny_model.new_caches(KVQuantConfig(bits=16))
    stepwise = []
    for i, tok in enumerate(tokens):
        logits = tiny_model.forward(np.array([tok]), caches=caches, start_position=i)
        stepwise.append(logits[0])
    np.testing.assert_allclose(np.stack(stepwise), full, atol=1e-8)


def test_kv_cache_quantization_changes_results(tiny_model, tiny_eval_sequences):
    seq = tiny_eval_sequences[0]
    fp = tiny_model.forward(seq)
    kv4 = tiny_model.forward(seq, ForwardConfig(kv_quant=KVQuantConfig(bits=4)))
    kv8 = tiny_model.forward(seq, ForwardConfig(kv_quant=KVQuantConfig(bits=8)))
    err4 = np.mean((fp - kv4) ** 2)
    err8 = np.mean((fp - kv8) ** 2)
    assert err4 > err8 > 0


def test_forward_validates_tokens(tiny_model):
    with pytest.raises(ValueError):
        tiny_model.forward(np.array([], dtype=np.int64))
    with pytest.raises(ValueError):
        tiny_model.forward(np.array([10**6]))
    with pytest.raises(ValueError):
        tiny_model.forward(np.zeros((2, 2), dtype=np.int64))


def test_generate_produces_requested_tokens(tiny_model):
    out = tiny_model.generate(np.array([1, 2, 3]), max_new_tokens=5)
    assert out.shape == (5,)
    assert out.min() >= 0 and out.max() < tiny_model.config.vocab_size


def test_named_linears_and_set_linear(tiny_model):
    model = tiny_model.clone()
    linears = model.named_linears()
    assert len(linears) == 7 * model.config.num_layers
    name = "layers.0.q_proj"
    replacement = linears[name].replace_weight(linears[name].weight * 0)
    model.set_linear(name, replacement)
    assert np.all(model.blocks[0].q_proj.weight == 0)
    with pytest.raises(KeyError):
        model.set_linear("bogus", replacement)


def test_calibration_recorder_contents(tiny_model, tiny_calibration):
    recorder = tiny_model.run_calibration(tiny_calibration)
    cfg = tiny_model.config
    assert len(recorder.absmax) == 7 * cfg.num_layers
    samples = recorder.input_samples("layers.0.q_proj")
    assert samples.shape[1] == cfg.hidden_size
    keys = recorder.stacked_keys(0)
    assert keys.shape[1:] == (cfg.num_kv_heads, cfg.head_dim)
    values = recorder.stacked_values(0)
    assert values.shape == keys.shape


def test_kv_cache_append_and_len():
    cfg = AttentionConfig(num_heads=2, num_kv_heads=2, head_dim=4)
    cache = KVCache(config=cfg, quant=KVQuantConfig(bits=8))
    assert len(cache) == 0
    k = np.random.default_rng(0).normal(size=(3, 2, 4))
    cache.append(k, k)
    cache.append(k, k)
    assert len(cache) == 6
    with pytest.raises(RuntimeError):
        KVCache(config=cfg).contents()


def test_model_config_accounting():
    cfg = get_config("llama-2-7b")
    assert abs(cfg.num_params() / 1e9 - 6.7) < 0.5          # ~7B parameters
    assert cfg.gqa_ratio == 1
    assert get_config("llama-3-8b").gqa_ratio == 4
    fp16_bytes = cfg.weight_bytes(16)
    int4_bytes = cfg.weight_bytes(4)
    assert int4_bytes < 0.4 * fp16_bytes
    assert cfg.kv_bytes_per_token(4) < cfg.kv_bytes_per_token(16) / 2 + 1024
    with pytest.raises(KeyError):
        get_config("does-not-exist")
