"""Direct coverage for the reporting helpers that examples/benchmarks lean
on: ``ServingResult.summary_text()``, ``LatencySummary`` percentile math,
``ServingMetrics`` summaries and the SLO attainment/goodput helpers — all of
which were previously exercised only through end-to-end runs."""

import numpy as np
import pytest

from repro.serving import (
    LatencySummary,
    Request,
    RequestMetrics,
    ServingMetrics,
    ServingResult,
    SpeculationStats,
)
from repro.serving.prefix_cache import PrefixCacheStats


def _metric(request_id=0, output_len=10, arrival=0.0, first=1.0, finish=2.0,
            **kwargs):
    return RequestMetrics(request_id=request_id, prompt_len=100,
                          output_len=output_len, arrival_time=arrival,
                          first_token_time=first, finish_time=finish, **kwargs)


# ----------------------------------------------------------------------
# LatencySummary
# ----------------------------------------------------------------------
def test_latency_summary_percentiles_match_numpy():
    values = [0.1 * i for i in range(1, 101)]
    summary = LatencySummary.from_values(values)
    assert summary.mean == pytest.approx(np.mean(values))
    assert summary.p50 == pytest.approx(np.percentile(values, 50))
    assert summary.p95 == pytest.approx(np.percentile(values, 95))
    assert summary.p99 == pytest.approx(np.percentile(values, 99))
    assert summary.maximum == pytest.approx(10.0)


def test_latency_summary_empty_and_singleton():
    assert LatencySummary.from_values([]) == LatencySummary(0, 0, 0, 0, 0)
    single = LatencySummary.from_values([0.25])
    assert single.mean == single.p50 == single.p99 == single.maximum == 0.25


# ----------------------------------------------------------------------
# ServingMetrics summaries
# ----------------------------------------------------------------------
def test_serving_metrics_distributions():
    metrics = ServingMetrics(requests=[
        _metric(0, output_len=11, arrival=0.0, first=1.0, finish=2.0),
        _metric(1, output_len=11, arrival=1.0, first=4.0, finish=6.0),
    ])
    assert len(metrics) == 2
    assert metrics.ttft.mean == pytest.approx((1.0 + 3.0) / 2)
    assert metrics.e2e.maximum == pytest.approx(5.0)
    # TPOT: (finish - first) / (output_len - 1) per request.
    assert metrics.tpot.mean == pytest.approx((0.1 + 0.2) / 2)


def test_serving_metrics_from_requests_skips_unfinished():
    done = Request(request_id=0, prompt_len=16, output_len=4)
    done.first_token_time, done.finish_time = 1.0, 2.0
    pending = Request(request_id=1, prompt_len=16, output_len=4)
    metrics = ServingMetrics.from_requests([done, pending])
    assert [m.request_id for m in metrics.requests] == [0]
    with pytest.raises(ValueError):
        RequestMetrics.from_request(pending)


def test_slo_attainment_and_goodput():
    metrics = ServingMetrics(requests=[
        _metric(0, output_len=11, first=0.2, finish=0.7),    # meets both
        _metric(1, output_len=11, first=2.0, finish=2.5),    # TTFT miss
        _metric(2, output_len=11, first=0.2, finish=5.0),    # TPOT miss
        _metric(3, output_len=1, first=0.2, finish=0.2),     # 1-token: TTFT only
    ])
    assert metrics.slo_attainment(1.0, 0.1) == pytest.approx(0.5)
    # Goodput = attainment * finished / wall time.
    assert metrics.slo_goodput(1.0, 0.1, total_time_s=10.0) == \
        pytest.approx(0.5 * 4 / 10.0)
    assert metrics.slo_goodput(1.0, 0.1, total_time_s=0.0) == 0.0
    assert ServingMetrics().slo_attainment(1.0, 0.1) == 0.0


def test_transfer_delay_summary_covers_migrated_only():
    metrics = ServingMetrics(requests=[
        _metric(0, migrations=1, transfer_delay_s=0.004),
        _metric(1, migrations=0, transfer_delay_s=0.0),
        _metric(2, migrations=1, transfer_delay_s=0.008),
    ])
    assert metrics.total_migrations == 2
    # Never-migrated requests don't drag the summary toward zero.
    assert metrics.transfer_delay.mean == pytest.approx(0.006)
    assert ServingMetrics(requests=[_metric(0)]).transfer_delay == \
        LatencySummary.from_values([])


def test_serving_metrics_summary_text():
    metrics = ServingMetrics(requests=[
        _metric(0, output_len=11, preemptions=2),
        _metric(1, output_len=11),
    ])
    text = metrics.summary_text()
    assert "requests: 2" in text
    assert "preemptions: 2" in text
    for line in ("TTFT", "TPOT", "E2E"):
        assert line in text


# ----------------------------------------------------------------------
# ServingResult.summary_text
# ----------------------------------------------------------------------
def test_serving_result_summary_text_minimal():
    result = ServingResult(total_time_s=2.0, generated_tokens=500,
                           prompt_tokens=1000, peak_batch=8,
                           num_iterations=100, num_finished=5,
                           num_unserved=1, kv_utilization_peak=0.42)
    text = result.summary_text()
    assert "throughput: 250.0 tok/s" in text
    assert "(5 finished, 1 unserved)" in text
    assert "KV utilization: peak 42.0%" in text
    assert "tokens/iteration: 5.00" in text          # 500 tokens / 100 iters
    assert "prefix cache" not in text                # stats absent => no line
    assert "speculation" not in text                 # stats absent => no line
    assert "TTFT" not in text                        # no metrics attached


def test_serving_result_summary_text_full():
    stats = PrefixCacheStats(lookups=4, hit_tokens=300, miss_tokens=100,
                             inserted_pages=10, evicted_pages=3)
    metrics = ServingMetrics(requests=[_metric(0, output_len=11)])
    result = ServingResult(total_time_s=1.0, generated_tokens=100,
                           prompt_tokens=400, peak_batch=4, num_iterations=50,
                           num_finished=1, metrics=metrics,
                           kv_utilization_peak=0.805, prefix_stats=stats)
    text = result.summary_text()
    assert "hit rate 75.0%" in text
    assert "300 prefill tokens saved" in text
    assert "3 pages evicted" in text
    assert "TPOT" in text                            # metrics block included
    # Derived gauges agree with the stats object.
    assert result.cache_hit_rate == pytest.approx(0.75)
    assert result.saved_prefill_tokens == 300


def test_serving_result_zero_time_throughput():
    result = ServingResult(total_time_s=0.0, generated_tokens=0,
                           prompt_tokens=0, peak_batch=0, num_iterations=0)
    assert result.generation_throughput == 0.0
    assert result.cache_hit_rate == 0.0
    assert result.saved_prefill_tokens == 0
    assert result.tokens_per_iteration == 0.0        # no division by zero
    assert result.acceptance_rate == 0.0
    assert result.speculation_speedup == 0.0
    assert "throughput: 0.0 tok/s" in result.summary_text()


# ----------------------------------------------------------------------
# Speculative-decoding gauges
# ----------------------------------------------------------------------
def test_speculation_stats_properties():
    empty = SpeculationStats()
    assert empty.acceptance_rate == 0.0
    assert empty.mean_accepted_per_step == 0.0
    assert empty.speedup == 0.0                      # no pure-decode samples
    stats = SpeculationStats(spec_steps=10, proposed_tokens=40,
                             accepted_tokens=30, committed_tokens=40,
                             spec_time_s=2.0, baseline_time_s=5.0)
    assert stats.acceptance_rate == pytest.approx(0.75)
    assert stats.mean_accepted_per_step == pytest.approx(3.0)
    assert stats.mean_committed_per_request_step == pytest.approx(4.0)
    assert stats.speedup == pytest.approx(2.5)


def test_serving_result_summary_text_speculation_gauges():
    stats = SpeculationStats(spec_steps=50, proposed_tokens=200,
                             accepted_tokens=150, committed_tokens=200,
                             spec_time_s=1.0, baseline_time_s=2.5)
    result = ServingResult(total_time_s=1.0, generated_tokens=400,
                           prompt_tokens=800, peak_batch=4,
                           num_iterations=100, num_finished=4,
                           spec_stats=stats)
    text = result.summary_text()
    assert "tokens/iteration: 4.00" in text
    assert "speculation: acceptance 75.0%" in text
    assert "3.00 accepted tokens/step" in text
    assert "est. speedup 2.50x" in text
    assert result.acceptance_rate == pytest.approx(0.75)
    assert result.speculation_speedup == pytest.approx(2.5)


def test_serving_metrics_acceptance_rate():
    metrics = ServingMetrics(requests=[
        _metric(0, spec_steps=5, draft_proposed=20, draft_accepted=16),
        _metric(1, spec_steps=2, draft_proposed=10, draft_accepted=2),
        _metric(2),                                  # plain-decoded request
    ])
    assert metrics.draft_proposed_tokens == 30
    assert metrics.draft_accepted_tokens == 18
    assert metrics.acceptance_rate == pytest.approx(0.6)
    # Speculation off: no proposals anywhere, the gauge reads 0 safely.
    assert ServingMetrics(requests=[_metric(0)]).acceptance_rate == 0.0
