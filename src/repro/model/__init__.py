"""From-scratch NumPy LLM substrate.

A Llama-family causal transformer (RMSNorm, RoPE, MHA/GQA attention, SwiGLU
FFN) implemented with vectorised NumPy.  It serves two purposes:

* accuracy experiments — the QoQ algorithm and every baseline quantizer are
  applied to these models and evaluated with the synthetic corpus/tasks in
  :mod:`repro.data`;
* architecture metadata — layer/head/hidden geometry feeds the GPU cost model
  and the serving simulator (:mod:`repro.gpu`, :mod:`repro.serving`).

Model weights are synthetic but reproduce the distributional structure the
paper's techniques target (activation outlier channels, post-RoPE Key
outliers); see :mod:`repro.model.weights`.
"""

from repro.model.config import (
    ModelConfig,
    MODEL_REGISTRY,
    get_config,
    register_config,
)
from repro.model.layers import (
    Linear,
    rms_norm,
    silu,
    softmax,
    swiglu,
)
from repro.model.rope import RotaryEmbedding, apply_rope
from repro.model.attention import AttentionConfig, KVCache, multi_head_attention
from repro.model.transformer import (
    BlockWeights,
    CalibrationRecorder,
    ForwardConfig,
    TransformerModel,
)
from repro.model.weights import generate_block_weights, generate_model
from repro.model.quantized import W4A8Linear, W8A8Linear, FakeQuantLinear

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_config",
    "register_config",
    "Linear",
    "rms_norm",
    "silu",
    "softmax",
    "swiglu",
    "RotaryEmbedding",
    "apply_rope",
    "AttentionConfig",
    "KVCache",
    "multi_head_attention",
    "BlockWeights",
    "CalibrationRecorder",
    "ForwardConfig",
    "TransformerModel",
    "generate_block_weights",
    "generate_model",
    "W4A8Linear",
    "W8A8Linear",
    "FakeQuantLinear",
]
