"""Benchmark regenerating Table 2 (perplexity by precision and method)."""

from repro.experiments import table2_perplexity


def test_table2_perplexity(benchmark, accuracy_setup):
    report = benchmark.pedantic(table2_perplexity.run,
                                kwargs={"setup": accuracy_setup},
                                rounds=1, iterations=1)
    print()
    print(report.to_text("{:.3f}"))
    ppl = {f"{r[0]}/{r[1]}": r[2] for r in report.rows}
    fp16 = ppl["FP16/-"]
    # W8A8 SmoothQuant is near-lossless; every W4A4 setting degrades.
    assert abs(ppl["W8A8/SmoothQuant"] - fp16) / fp16 < 0.05
    assert all(v > fp16 for k, v in ppl.items() if k.startswith("W4A4"))
