"""Tests for the QoQ techniques and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.data import evaluate_perplexity
from repro.model.quantized import W4A8Linear, W8A8Linear
from repro.qoq import (
    QoQConfig,
    apply_smooth_attention,
    compute_reorder_permutation,
    compute_smooth_attention_scales,
    compute_smoothing_scales,
    hadamard_matrix,
    quantize_model_qoq,
    random_orthogonal_matrix,
    search_clip_ratio,
)
from repro.quant import UINT4
from repro.quant.kv_quant import KVQuantConfig, kv_fake_quantize


# ----------------------------------------------------------------------
# SmoothAttention
# ----------------------------------------------------------------------
def _keys_with_outliers(tokens=64, heads=2, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(tokens, heads, dim))
    keys[:, :, 3] *= 12.0
    keys[:, :, 3 + dim // 2] *= 9.0
    return keys


def test_smooth_attention_scales_respect_rope_pairing():
    keys = _keys_with_outliers()
    scales = compute_smooth_attention_scales(keys, alpha=0.5)
    assert scales.shape == (2, 16)
    np.testing.assert_allclose(scales[:, :8], scales[:, 8:])
    assert np.all(scales > 0)
    # Outlier channels get the largest scales.
    assert np.argmax(scales[0]) in (3, 11)


def test_smooth_attention_preserves_scores_and_reduces_kv4_error():
    rng = np.random.default_rng(1)
    hidden, heads, dim = 32, 2, 16
    wq = rng.normal(size=(heads * dim, hidden))
    wk = rng.normal(size=(heads * dim, hidden))
    x = rng.normal(size=(40, hidden))
    keys = (x @ wk.T).reshape(-1, heads, dim)
    keys[:, :, 5] *= 10
    wk[5::dim, :] *= 10  # make the outlier structural
    keys = (x @ wk.T).reshape(-1, heads, dim)
    queries = (x @ wq.T).reshape(-1, heads, dim)

    scales = compute_smooth_attention_scales(keys, alpha=0.5, rope_paired=False)
    new_wq, new_wk = apply_smooth_attention(wq, wk, scales, gqa_ratio=1)
    new_q = (x @ new_wq.T).reshape(-1, heads, dim)
    new_k = (x @ new_wk.T).reshape(-1, heads, dim)

    # Attention scores are mathematically unchanged.
    ref = np.einsum("ihd,jhd->hij", queries, keys)
    got = np.einsum("ihd,jhd->hij", new_q, new_k)
    np.testing.assert_allclose(got, ref, atol=1e-8)

    # KV4 quantization error of the scores is reduced after smoothing.
    cfg = KVQuantConfig(bits=4)
    err_before = np.linalg.norm(
        np.einsum("ihd,jhd->hij", queries, kv_fake_quantize(keys, cfg)) - ref)
    err_after = np.linalg.norm(
        np.einsum("ihd,jhd->hij", new_q, kv_fake_quantize(new_k, cfg)) - ref)
    assert err_after < err_before


def test_smooth_attention_input_validation():
    with pytest.raises(ValueError):
        compute_smooth_attention_scales(np.zeros((4, 8)))
    with pytest.raises(ValueError):
        apply_smooth_attention(np.zeros((8, 4)), np.zeros((8, 4)), np.ones((2, 3)))


# ----------------------------------------------------------------------
# Rotation / smoothing / reorder / clipping
# ----------------------------------------------------------------------
def test_hadamard_matrix_orthonormal():
    h = hadamard_matrix(16)
    np.testing.assert_allclose(h @ h.T, np.eye(16), atol=1e-12)
    with pytest.raises(ValueError):
        hadamard_matrix(12)


def test_random_orthogonal_matrix_orthonormal():
    q = random_orthogonal_matrix(10, seed=3)
    np.testing.assert_allclose(q @ q.T, np.eye(10), atol=1e-9)


def test_rotation_flattens_outlier_channels():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 32))
    x[:, 7] *= 30
    rotated = x @ hadamard_matrix(32)
    ratio_before = np.max(np.abs(x)) / np.median(np.abs(x))
    ratio_after = np.max(np.abs(rotated)) / np.median(np.abs(rotated))
    assert ratio_after < ratio_before / 3


def test_smoothing_scales_geometric_mean_one():
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(16, 32))
    act = np.abs(rng.normal(size=32)) * 10
    scales = compute_smoothing_scales(act, weight, alpha=0.1)
    assert scales.shape == (32,)
    assert np.exp(np.mean(np.log(scales))) == pytest.approx(1.0, abs=1e-9)
    with pytest.raises(ValueError):
        compute_smoothing_scales(act, weight, alpha=2.0)


def test_reorder_permutation_sorts_by_salience():
    absmax = np.array([1.0, 9.0, 3.0, 9.0])
    perm = compute_reorder_permutation(absmax)
    assert list(perm) == [1, 3, 2, 0]


def test_clip_search_never_worse_than_no_clipping():
    rng = np.random.default_rng(2)
    weight = rng.normal(size=(16, 32))
    weight[0, 0] = 40.0  # a useless outlier clipping should remove
    inputs = rng.normal(size=(64, 32))
    ratio, err = search_clip_ratio(weight, inputs, fmt=UINT4, group_size=8)
    baseline_q = None
    from repro.quant import fake_quantize, Granularity
    baseline_q = fake_quantize(weight, UINT4, Granularity.PER_GROUP,
                               symmetric=False, group_size=8)
    baseline_err = float(np.mean((inputs @ weight.T - inputs @ baseline_q.T) ** 2))
    assert err <= baseline_err + 1e-12
    assert 0.0 < ratio <= 1.0


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def test_pipeline_transforms_exact_without_quantization(tiny_model, tiny_calibration,
                                                        tiny_eval_sequences):
    fp = evaluate_perplexity(tiny_model, tiny_eval_sequences)
    res = quantize_model_qoq(
        tiny_model, tiny_calibration,
        QoQConfig(weight_bits=16, act_bits=16, kv_bits=16, group_size=32,
                  enable_clipping=False))
    ppl = evaluate_perplexity(res.model, tiny_eval_sequences, res.forward_config)
    assert ppl == pytest.approx(fp, rel=1e-6)


def test_pipeline_produces_w4a8_linears_and_bounded_degradation(
        tiny_model, tiny_calibration, tiny_eval_sequences):
    res = quantize_model_qoq(tiny_model, tiny_calibration, QoQConfig(group_size=32))
    layers = res.model.named_linears()
    assert all(isinstance(l, W4A8Linear) for l in layers.values())
    assert res.forward_config.kv_quant.bits == 4
    fp = evaluate_perplexity(tiny_model, tiny_eval_sequences)
    ppl = evaluate_perplexity(res.model, tiny_eval_sequences, res.forward_config)
    assert fp < ppl < fp * 1.6  # quantized, but not broken
    # Calibration artefacts are recorded for every layer.
    assert len(res.clip_ratios) == len(layers)
    assert len(res.smooth_attention_scales) == tiny_model.config.num_layers


def test_pipeline_w8_stage_uses_w8a8_linears(tiny_model, tiny_calibration):
    res = quantize_model_qoq(
        tiny_model, tiny_calibration,
        QoQConfig(weight_bits=8, kv_bits=8, group_size=None,
                  enable_rotation=False, enable_smoothing=False,
                  enable_smooth_attention=False, enable_reorder=False,
                  enable_clipping=False))
    assert all(isinstance(l, W8A8Linear) for l in res.model.named_linears().values())


def test_pipeline_original_model_untouched(tiny_model, tiny_calibration):
    before = {n: l.weight.copy() for n, l in tiny_model.named_linears().items()}
    quantize_model_qoq(tiny_model, tiny_calibration, QoQConfig(group_size=32))
    for name, layer in tiny_model.named_linears().items():
        np.testing.assert_array_equal(layer.weight, before[name])


def test_qoq_config_validation():
    with pytest.raises(ValueError):
        QoQConfig(weight_bits=3)
    with pytest.raises(ValueError):
        QoQConfig(act_bits=4)
    with pytest.raises(ValueError):
        QoQConfig(kv_bits=2)
    assert "g128" in QoQConfig().precision_name
