"""Figure 17 — same-batch throughput comparison on L40S.

Unlike Table 4 (each system picks its own maximum batch), this experiment
fixes the batch size and compares systems directly, which isolates the
per-iteration kernel speedup from the batch-enlargement effect of 4-bit
weights/KV.  Systems whose memory budget cannot hold the requested batch are
reported as "OOM" (throughput 0), as in the figure.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import GPUSpec, L40S
from repro.model import get_config
from repro.serving import SYSTEM_PRESETS, max_achievable_batch, measure_throughput

__all__ = ["run"]

_SYSTEMS = ("trt-fp16", "trt-w4a16", "trt-w8a8", "atom-w4a4", "quarot-w4a4",
            "qserve-w4a8kv4-chn", "qserve-w4a8kv4-grp")


def run(model_name: str = "llama-2-7b", gpu: GPUSpec = L40S,
        batches: Sequence[int] = (4, 8, 16, 32, 64),
        normalize: bool = True) -> ExperimentReport:
    cfg = get_config(model_name)
    report = ExperimentReport(
        experiment_id="fig17",
        title=f"Same-batch throughput of {model_name} on {gpu.name}"
              + (" (normalised to TRT-FP16)" if normalize else " (tokens/s)"),
        headers=["Batch", *_SYSTEMS],
        notes="0 = OOM at that batch size.",
    )
    for batch in batches:
        values = []
        for system_name in _SYSTEMS:
            system = SYSTEM_PRESETS[system_name]
            if max_achievable_batch(cfg, gpu, system) < batch:
                values.append(0.0)
                continue
            values.append(measure_throughput(cfg, gpu, system, batch=batch)
                          .tokens_per_second)
        if normalize:
            # Normalise to TRT-FP16; when FP16 is OOM at this batch (as happens
            # on L40S at batch 64) fall back to the best TRT configuration so
            # the relative ordering is still visible, mirroring the figure's
            # treatment of OOM bars.
            ref = values[0] or max(values[:3], default=0.0)
            values = [v / ref if ref > 0 else 0.0 for v in values]
        report.add_row(batch, *values)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.2f}"))
