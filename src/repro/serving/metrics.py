"""Per-request latency metrics for the serving simulator.

Generation throughput (the paper's Table 4 metric) says nothing about how a
system feels under load; production serving is judged on latency percentiles:

* **TTFT** (time to first token): arrival → first generated token.
* **TPOT** (time per output token): mean inter-token gap after the first
  token, ``(finish - first_token) / (output_len - 1)``.
* **E2E**: arrival → last token.
* **SLO attainment / goodput**: the fraction (and rate) of requests whose
  TTFT *and* TPOT both meet a service-level objective — the quantity bursty
  traffic actually degrades first.  Requests with a single output token have
  no inter-token gap and are judged on TTFT alone.

:class:`ServingMetrics` is assembled by the engine from finished requests and
travels on :class:`repro.serving.engine.ServingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Request

__all__ = ["RequestMetrics", "LatencySummary", "ServingMetrics"]


@dataclass(frozen=True)
class RequestMetrics:
    """Latency record of one finished request (all times in seconds)."""

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float
    first_token_time: float
    finish_time: float
    admitted_time: Optional[float] = None
    preemptions: int = 0
    #: Disaggregated serving: prefill→decode handoffs this request went
    #: through, and the exposed KV-transfer delay they added to its TTFT.
    migrations: int = 0
    transfer_delay_s: float = 0.0
    #: Speculative decoding: draft-and-verify iterations, draft tokens
    #: proposed and accepted for this request (all zero when off).
    spec_steps: int = 0
    draft_proposed: int = 0
    draft_accepted: int = 0
    #: Precision-aware serving: the quality floor the request demanded and
    #: the ``min_precision_bits`` of the system that served it.  A floor of
    #: 0 accepts any precision, so both default to the pre-refactor world.
    precision_floor_bits: float = 0.0
    served_precision_bits: float = 0.0
    #: Multi-tenancy: issuing tenant and SLO tier ("paid"/"free"); untagged
    #: workloads carry the defaults.
    tenant: Optional[str] = None
    tier: str = "paid"
    #: Multi-model serving: the model that served the request; ``None`` on
    #: single-model engines (untagged workloads).
    model: Optional[str] = None

    @property
    def ttft(self) -> float:
        """Time to first token."""
        return self.first_token_time - self.arrival_time

    @property
    def queue_delay(self) -> Optional[float]:
        """Arrival → first admission, or ``None`` when the admission time is
        unknown.  Unknown delays are *excluded* from
        :attr:`ServingMetrics.queue_delay` summaries — counting them as zero
        would silently drag the percentiles toward zero."""
        if self.admitted_time is None:
            return None
        return self.admitted_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        """End-to-end latency, arrival to final token."""
        return self.finish_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first.

        Undefined (reported as 0) for 1-token outputs — there is no
        inter-token gap to measure.  SLO checks must therefore judge such
        requests on TTFT alone (see :meth:`meets_slo`); comparing the 0
        against a TPOT SLO would trivially pass every 1-token request.
        """
        if self.output_len <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.output_len - 1)

    @property
    def precision_ok(self) -> bool:
        """Whether the serving precision met the request's quality floor."""
        return (self.precision_floor_bits <= 0.0
                or self.served_precision_bits >= self.precision_floor_bits)

    def meets_slo(self, ttft_slo_s: float, tpot_slo_s: float) -> bool:
        """Whether this request met the SLO.

        Requests with a single output token have no inter-token gap, so they
        are judged on TTFT only; everything else must meet both the TTFT and
        TPOT objectives.  A request whose quality floor was violated (served
        below ``precision_floor_bits``) fails the SLO outright — goodput
        counts useful responses, and a response below the demanded precision
        is not one.
        """
        if not self.precision_ok:
            return False
        if self.ttft > ttft_slo_s:
            return False
        return self.output_len <= 1 or self.tpot <= tpot_slo_s

    @classmethod
    def from_request(cls, request: Request) -> "RequestMetrics":
        if request.first_token_time is None or request.finish_time is None:
            raise ValueError(
                f"request {request.request_id} has not finished; no metrics")
        return cls(
            request_id=request.request_id,
            prompt_len=request.prompt_len,
            output_len=request.output_len,
            arrival_time=request.arrival_time,
            first_token_time=request.first_token_time,
            finish_time=request.finish_time,
            admitted_time=request.admitted_time,
            preemptions=request.preemptions,
            migrations=request.migrations,
            transfer_delay_s=request.transfer_delay_s,
            spec_steps=request.spec_steps,
            draft_proposed=request.draft_proposed,
            draft_accepted=request.draft_accepted,
            precision_floor_bits=request.precision_floor_bits,
            served_precision_bits=request.served_precision_bits,
            tenant=request.tenant,
            tier=request.tier,
            model=request.model,
        )


@dataclass(frozen=True)
class LatencySummary:
    """Mean and p50/p95/p99 of one latency distribution (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        if len(values) == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(values, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return cls(mean=float(arr.mean()), p50=float(p50), p95=float(p95),
                   p99=float(p99), maximum=float(arr.max()))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"mean {self.mean * 1e3:.1f} ms / p50 {self.p50 * 1e3:.1f} / "
                f"p95 {self.p95 * 1e3:.1f} / p99 {self.p99 * 1e3:.1f} ms")

    def to_json(self) -> dict:
        """Plain-dict export (seconds, exact float values)."""
        return {"mean": self.mean, "p50": self.p50, "p95": self.p95,
                "p99": self.p99, "max": self.maximum}


@dataclass(frozen=True)
class _MetricColumns:
    """Column-major float64 views of one run's finished-request records.

    Built in one pass so every summary property reads a ready array instead
    of re-walking the request list through Python-level property calls.  The
    derived columns are elementwise IEEE-754 double operations on the same
    values the scalar properties use, so every percentile/mean computed from
    them is bitwise-identical to the per-request path.
    """

    ttft: np.ndarray
    tpot: np.ndarray
    e2e: np.ndarray
    output_len: np.ndarray
    #: Queue delays of the requests whose admission time is known (others
    #: are excluded, matching :attr:`RequestMetrics.queue_delay`).
    queue_delay: np.ndarray
    #: Exposed KV-transfer delays of the migrated requests only.
    transfer_delay: np.ndarray
    #: Per-request quality verdict (see :attr:`RequestMetrics.precision_ok`);
    #: all-True whenever no request carried a precision floor.
    precision_ok: np.ndarray


def _build_columns(requests: Sequence[RequestMetrics]) -> _MetricColumns:
    n = len(requests)
    arrival = np.fromiter((r.arrival_time for r in requests), np.float64, n)
    first = np.fromiter((r.first_token_time for r in requests), np.float64, n)
    finish = np.fromiter((r.finish_time for r in requests), np.float64, n)
    out_len = np.fromiter((r.output_len for r in requests), np.float64, n)
    admitted = np.fromiter(
        (np.nan if r.admitted_time is None else r.admitted_time
         for r in requests), np.float64, n)
    migrations = np.fromiter((r.migrations for r in requests), np.int64, n)
    transfer = np.fromiter((r.transfer_delay_s for r in requests),
                           np.float64, n)
    floor = np.fromiter((r.precision_floor_bits for r in requests),
                        np.float64, n)
    served = np.fromiter((r.served_precision_bits for r in requests),
                         np.float64, n)
    single = out_len <= 1.0
    # Guard the denominator so the masked-out single-token rows never divide
    # by zero; their quotient is discarded by the mask anyway.
    gaps = np.maximum(out_len - 1.0, 1.0)
    known = ~np.isnan(admitted)
    return _MetricColumns(
        ttft=first - arrival,
        tpot=np.where(single, 0.0, (finish - first) / gaps),
        e2e=finish - arrival,
        output_len=out_len,
        queue_delay=admitted[known] - arrival[known],
        transfer_delay=transfer[migrations > 0],
        precision_ok=(floor <= 0.0) | (served >= floor),
    )


@dataclass
class ServingMetrics:
    """Latency metrics over all finished requests of one serving run."""

    requests: List[RequestMetrics] = field(default_factory=list)
    #: Lazily built column arrays, keyed on the request count so a metrics
    #: object extended after a summary was read rebuilds them (no in-tree
    #: code mutates ``requests`` post-construction, but correctness must not
    #: depend on that).
    _columns_cache: Optional[Tuple[int, _MetricColumns]] = field(
        default=None, init=False, repr=False, compare=False)

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "ServingMetrics":
        """Collect metrics from every request that produced a full output."""
        return cls(requests=[RequestMetrics.from_request(r) for r in requests
                             if r.first_token_time is not None
                             and r.finish_time is not None])

    def __len__(self) -> int:
        return len(self.requests)

    def _columns(self) -> _MetricColumns:
        cached = self._columns_cache
        if cached is not None and cached[0] == len(self.requests):
            return cached[1]
        columns = _build_columns(self.requests)
        self._columns_cache = (len(self.requests), columns)
        return columns

    # ------------------------------------------------------------------
    @property
    def ttft(self) -> LatencySummary:
        return LatencySummary.from_values(self._columns().ttft)

    @property
    def tpot(self) -> LatencySummary:
        return LatencySummary.from_values(self._columns().tpot)

    @property
    def e2e(self) -> LatencySummary:
        return LatencySummary.from_values(self._columns().e2e)

    @property
    def queue_delay(self) -> LatencySummary:
        """Queue-delay percentiles over requests whose admission time is known."""
        return LatencySummary.from_values(self._columns().queue_delay)

    @property
    def total_preemptions(self) -> int:
        return sum(r.preemptions for r in self.requests)

    @property
    def total_migrations(self) -> int:
        """Prefill→decode handoffs across all finished requests."""
        return sum(r.migrations for r in self.requests)

    @property
    def draft_proposed_tokens(self) -> int:
        """Draft tokens proposed across all finished requests."""
        return sum(r.draft_proposed for r in self.requests)

    @property
    def draft_accepted_tokens(self) -> int:
        """Draft tokens that survived verification across finished requests."""
        return sum(r.draft_accepted for r in self.requests)

    @property
    def acceptance_rate(self) -> float:
        """Draft-token acceptance rate over finished requests.

        Zero when speculation was off (no tokens were ever proposed), so the
        gauge is safe to read unconditionally.
        """
        proposed = self.draft_proposed_tokens
        return 0.0 if proposed == 0 else self.draft_accepted_tokens / proposed

    @property
    def precision_violations(self) -> int:
        """Finished requests served below their demanded precision floor."""
        if not self.requests:
            return 0
        return int(np.count_nonzero(~self._columns().precision_ok))

    @property
    def transfer_delay(self) -> LatencySummary:
        """Exposed KV-transfer delay percentiles over *migrated* requests.

        Never-migrated requests are excluded rather than counted as zero —
        in a mixed cluster they would otherwise drown out the delay the
        handoffs actually paid.  All-zero when nothing migrated.
        """
        return LatencySummary.from_values(self._columns().transfer_delay)

    # ------------------------------------------------------------------
    # Multi-tenant breakouts
    # ------------------------------------------------------------------
    def by_tier(self) -> "dict[str, ServingMetrics]":
        """Per-SLO-tier metrics, keyed by tier name (sorted).

        Each value is a full :class:`ServingMetrics` over that tier's
        finished requests, so every summary (TTFT percentiles, SLO goodput,
        ...) is available per tier.  A tier-less run yields ``{"paid": ...}``.
        """
        return self._split(lambda r: r.tier)

    def by_tenant(self) -> "dict[str, ServingMetrics]":
        """Per-tenant metrics, keyed by tenant name (sorted).

        Untagged requests group under the ``"-"`` pseudo-tenant.
        """
        return self._split(lambda r: r.tenant if r.tenant is not None else "-")

    def by_model(self) -> "dict[str, ServingMetrics]":
        """Per-model metrics, keyed by model name (sorted).

        Each value is a full :class:`ServingMetrics` over that model's
        finished requests, so per-model SLO attainment and goodput come for
        free — the breakout capacity planning reads to decide which models
        should share a fleet.  Untagged requests (single-model engines)
        group under the ``"-"`` pseudo-model.
        """
        return self._split(lambda r: r.model if r.model is not None else "-")

    def _split(self, key) -> "dict[str, ServingMetrics]":
        groups: "dict[str, List[RequestMetrics]]" = {}
        for request in self.requests:
            groups.setdefault(key(request), []).append(request)
        return {name: ServingMetrics(requests=groups[name])
                for name in sorted(groups)}

    # ------------------------------------------------------------------
    def slo_attainment(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """Fraction of finished requests meeting the latency SLO.

        Delegates the per-request rule to :meth:`RequestMetrics.meets_slo`:
        both TTFT and TPOT must be met, except that 1-token outputs (which
        have no inter-token gap) are judged on TTFT only.
        """
        if not self.requests:
            return 0.0
        cols = self._columns()
        good = int(np.count_nonzero(
            (cols.ttft <= ttft_slo_s)
            & ((cols.output_len <= 1.0) | (cols.tpot <= tpot_slo_s))
            & cols.precision_ok))
        return good / len(self.requests)

    def slo_goodput(self, ttft_slo_s: float, tpot_slo_s: float,
                    total_time_s: float) -> float:
        """Requests per second completed within both SLOs (the goodput metric)."""
        if total_time_s <= 0:
            return 0.0
        return (self.slo_attainment(ttft_slo_s, tpot_slo_s)
                * len(self.requests) / total_time_s)

    def summary_text(self) -> str:
        """Human-readable multi-line summary (for examples/benchmarks)."""
        return "\n".join([
            f"requests: {len(self.requests)} "
            f"(preemptions: {self.total_preemptions})",
            f"TTFT: {self.ttft}",
            f"TPOT: {self.tpot}",
            f"E2E:  {self.e2e}",
        ])

    def to_json(self) -> dict:
        """Structured export of every summary gauge (JSON-serializable).

        Covers all of :meth:`summary_text` plus the gauges it omits
        (queue/transfer delays, speculation, precision violations), so
        nothing here is print-only.
        """
        return {
            "num_requests": len(self.requests),
            "ttft": self.ttft.to_json(),
            "tpot": self.tpot.to_json(),
            "e2e": self.e2e.to_json(),
            "queue_delay": self.queue_delay.to_json(),
            "transfer_delay": self.transfer_delay.to_json(),
            "total_preemptions": self.total_preemptions,
            "total_migrations": self.total_migrations,
            "draft_proposed_tokens": self.draft_proposed_tokens,
            "draft_accepted_tokens": self.draft_accepted_tokens,
            "acceptance_rate": self.acceptance_rate,
            "precision_violations": self.precision_violations,
            "by_tier": {
                tier: {"num_requests": len(metrics),
                       "ttft": metrics.ttft.to_json(),
                       "tpot": metrics.tpot.to_json()}
                for tier, metrics in self.by_tier().items()
            },
            "by_model": {
                model: {"num_requests": len(metrics),
                        "ttft": metrics.ttft.to_json(),
                        "tpot": metrics.tpot.to_json()}
                for model, metrics in self.by_model().items()
                if model != "-"
            },
        }
