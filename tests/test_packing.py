"""Tests for INT4 packing and RLP interleaving (Figure 13)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    deinterleave_from_rlp,
    interleave_for_rlp,
    pack_int4,
    rlp_unpack_uint4x8,
    unpack_int4,
)


def test_pack_unpack_roundtrip():
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 16, size=(4, 64)).astype(np.uint8)
    assert np.array_equal(unpack_int4(pack_int4(codes)), codes)


def test_pack_rejects_bad_inputs():
    with pytest.raises(ValueError):
        pack_int4(np.array([1, 2, 3]))       # odd length
    with pytest.raises(ValueError):
        pack_int4(np.array([16, 0]))         # out of range


def test_interleave_roundtrip_and_pattern():
    codes = np.arange(32, dtype=np.uint8)
    inter = interleave_for_rlp(codes)
    # Figure 13: w0, w16, w1, w17, ...
    assert list(inter[:6]) == [0, 16, 1, 17, 2, 18]
    assert np.array_equal(deinterleave_from_rlp(inter), codes)


def test_interleave_requires_multiple_of_32():
    with pytest.raises(ValueError):
        interleave_for_rlp(np.arange(33))


def test_rlp_unpack_recovers_low_and_high_halves_with_three_ops():
    """After interleaving + packing, the three logical operations of Figure 13
    recover w0..w15 in the low words and w16..w31 in the high words."""
    rng = np.random.default_rng(5)
    codes = rng.integers(0, 16, size=32).astype(np.uint8)
    packed_bytes = pack_int4(interleave_for_rlp(codes))
    words = packed_bytes.view(np.uint32)
    low, high, ops = rlp_unpack_uint4x8(words)
    assert ops == 3 * words.size
    assert np.array_equal(low.view(np.uint8), codes[:16])
    assert np.array_equal(high.view(np.uint8), codes[16:])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
def test_property_full_pipeline_roundtrip(seed, blocks):
    """Property: interleave -> pack -> unpack -> deinterleave is the identity."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 16, size=blocks * 32).astype(np.uint8)
    roundtrip = deinterleave_from_rlp(unpack_int4(pack_int4(interleave_for_rlp(codes))))
    assert np.array_equal(roundtrip, codes)
