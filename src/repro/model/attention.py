"""Multi-head / grouped-query attention with an optional quantized KV cache.

Implements Equation (1) of the paper: queries attend over the concatenation of
cached keys/values and the new tokens' keys/values, with ``h_kv = floor(h/r)``
mapping query heads onto KV heads for GQA.  The KV cache can be fake-quantized
on write (per-head dynamic INT4/INT8) to model QServe's KV4/KV8 storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.model.layers import softmax
from repro.quant.kv_quant import KVQuantConfig, kv_fake_quantize

__all__ = ["AttentionConfig", "KVCache", "multi_head_attention"]


@dataclass(frozen=True)
class AttentionConfig:
    """Static attention geometry for one layer."""

    num_heads: int
    num_kv_heads: int
    head_dim: int

    @property
    def gqa_ratio(self) -> int:
        return self.num_heads // self.num_kv_heads


@dataclass
class KVCache:
    """Per-layer KV cache holding ``[tokens, kv_heads, head_dim]`` tensors.

    Values are stored *after* the (optional) fake quantization so that every
    later read observes exactly what a 4-bit cache would have retained —
    matching the dynamic, per-head quantization QServe performs when a token's
    KV vectors are appended to a cache page.
    """

    config: AttentionConfig
    quant: KVQuantConfig = field(default_factory=lambda: KVQuantConfig(bits=16))
    keys: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return 0 if self.keys is None else self.keys.shape[0]

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new tokens' keys/values (quantizing them if configured)."""
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if self.quant.enabled:
            k = kv_fake_quantize(k, self.quant)
            v = kv_fake_quantize(v, self.quant)
        if self.keys is None:
            self.keys, self.values = k, v
        else:
            self.keys = np.concatenate([self.keys, k], axis=0)
            self.values = np.concatenate([self.values, v], axis=0)

    def contents(self) -> tuple[np.ndarray, np.ndarray]:
        if self.keys is None:
            raise RuntimeError("KV cache is empty")
        return self.keys, self.values


def _expand_kv(kv: np.ndarray, ratio: int) -> np.ndarray:
    """Repeat each KV head ``ratio`` times to align with query heads."""
    if ratio == 1:
        return kv
    return np.repeat(kv, ratio, axis=1)


def multi_head_attention(
    q: np.ndarray,
    k_new: np.ndarray,
    v_new: np.ndarray,
    config: AttentionConfig,
    cache: Optional[KVCache] = None,
    causal: bool = True,
) -> np.ndarray:
    """Compute attention output for ``q`` of shape ``[tokens, heads, head_dim]``.

    ``k_new`` / ``v_new`` are the *current* tokens' keys/values with shape
    ``[tokens, kv_heads, head_dim]``.  If ``cache`` is given, the new KV pairs
    are appended (after optional quantization) and attention runs over the
    full history; otherwise only the new tokens are attended (with a causal
    mask when ``causal``).
    """
    q = np.asarray(q, dtype=np.float64)
    n_new = q.shape[0]

    if cache is not None:
        prior = len(cache)
        cache.append(k_new, v_new)
        keys, values = cache.contents()
    else:
        prior = 0
        keys, values = np.asarray(k_new, np.float64), np.asarray(v_new, np.float64)

    ratio = config.gqa_ratio
    keys_full = _expand_kv(keys, ratio)        # [total, heads, head_dim]
    values_full = _expand_kv(values, ratio)

    # scores[h, i, j] = q[i, h] . k[j, h] / sqrt(D)
    scale = 1.0 / np.sqrt(config.head_dim)
    scores = np.einsum("ihd,jhd->hij", q, keys_full) * scale

    if causal:
        total = keys_full.shape[0]
        # Query token i (absolute position prior + i) may attend to absolute
        # positions <= prior + i.
        q_pos = prior + np.arange(n_new)[:, None]
        k_pos = np.arange(total)[None, :]
        mask = k_pos > q_pos
        scores = np.where(mask[None, :, :], -np.inf, scores)

    probs = softmax(scores, axis=-1)
    out = np.einsum("hij,jhd->ihd", probs, values_full)
    return out
