"""Table 5 — long-context accuracy, BF16 versus QoQ W4A8KV4 g128.

Uses the synthetic long-context retrieval suite: a needle planted deep in a
long context must survive 4-bit KV-cache quantization to be retrieved.  The
reproduced quantity is that QoQ's degradation relative to the full-precision
model is minimal (the paper reports 38.52 → 38.38 average).
"""

from __future__ import annotations

from typing import Optional

from repro.data import build_long_context_suite, evaluate_task_accuracy
from repro.data.tasks import LONG_CONTEXT_TASK_NAMES
from repro.experiments.accuracy_common import AccuracySetup, build_setup
from repro.experiments.runner import ExperimentReport
from repro.qoq import QoQConfig, quantize_model_qoq

__all__ = ["run"]


def run(scale: str = "tiny", seed: int = 0, num_examples: int = 6,
        context_len: int = 192,
        setup: Optional[AccuracySetup] = None) -> ExperimentReport:
    setup = setup or build_setup(scale, seed=seed)
    suite = build_long_context_suite(setup.corpus, num_examples_per_task=num_examples,
                                     context_len=context_len, seed=seed)
    headers = ["Model", *LONG_CONTEXT_TASK_NAMES, "Average"]
    report = ExperimentReport(
        experiment_id="table5",
        title="Long-context (LongBench-style) accuracy: BF16 vs QoQ W4A8KV4",
        headers=headers,
        notes=f"scale={setup.scale}; context length {context_len} tokens.",
    )

    acc = evaluate_task_accuracy(setup.model, suite)
    report.add_row("BF16", *[acc[t] for t in LONG_CONTEXT_TASK_NAMES], acc["Avg."])
    res = quantize_model_qoq(setup.model, setup.calibration,
                             QoQConfig(group_size=setup.group_size))
    acc_q = evaluate_task_accuracy(res.model, suite, res.forward_config)
    report.add_row("QoQ", *[acc_q[t] for t in LONG_CONTEXT_TASK_NAMES], acc_q["Avg."])
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.3f}"))
