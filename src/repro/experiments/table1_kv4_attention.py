"""Table 1 — decode attention latency: KV8 vs naive KV4 vs QServe KV4.

Also covers the Section 6.4 "improvement breakdown for KV4 attention": the
intermediate kernels (bit-trick dequantization, simplified control flow) are
reported alongside the naive and final kernels.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import A100, GPUSpec, KV_KERNELS, attention_decode_latency
from repro.model import get_config

__all__ = ["run", "run_breakdown"]


def run(model_name: str = "llama-2-7b", gpu: GPUSpec = A100, batch: int = 64,
        seq_lens: Sequence[int] = (128, 256, 512, 1024, 1536)) -> ExperimentReport:
    cfg = get_config(model_name)
    report = ExperimentReport(
        experiment_id="table1",
        title=f"Decode attention latency on {gpu.name} ({model_name}, batch {batch})",
        headers=["Seq len", "8-bit KV (ms)", "4-bit KV naive (ms)", "naive speedup",
                 "4-bit KV QServe (ms)", "QServe speedup"],
    )
    for seq in seq_lens:
        args = (batch, seq, cfg.num_heads, cfg.num_kv_heads, cfg.head_dim)
        kv8 = attention_decode_latency(gpu, KV_KERNELS["kv8-trt"], *args).total
        naive = attention_decode_latency(gpu, KV_KERNELS["kv4-naive"], *args).total
        ours = attention_decode_latency(gpu, KV_KERNELS["kv4-qserve"], *args).total
        report.add_row(seq, kv8 * 1e3, naive * 1e3, kv8 / naive, ours * 1e3, kv8 / ours)
    return report


def run_breakdown(model_name: str = "llama-2-7b", gpu: GPUSpec = A100,
                  batch: int = 64, seq_len: int = 1024) -> ExperimentReport:
    """Section 6.4: step-by-step KV4 kernel optimisation breakdown."""
    cfg = get_config(model_name)
    stages = [
        ("Naive dynamic per-head KV4", "kv4-naive"),
        ("+ bit-trick dequantization", "kv4-bittrick"),
        ("+ simplified control flow", "kv4-simplectrl"),
        ("+ FP16 arithmetic & prefetch (QServe)", "kv4-qserve"),
    ]
    report = ExperimentReport(
        experiment_id="table1-breakdown",
        title=f"KV4 attention optimisation breakdown ({gpu.name}, seq {seq_len})",
        headers=["Stage", "Latency (ms)", "Speedup over KV8"],
    )
    args = (batch, seq_len, cfg.num_heads, cfg.num_kv_heads, cfg.head_dim)
    kv8 = attention_decode_latency(gpu, KV_KERNELS["kv8-trt"], *args).total
    for label, kernel in stages:
        lat = attention_decode_latency(gpu, KV_KERNELS[kernel], *args).total
        report.add_row(label, lat * 1e3, kv8 / lat)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.2f}"))
    print(run_breakdown().to_text("{:.2f}"))
