"""Serving engine: per-iteration latency model + full serving loop.

``ServingEngine`` binds a model geometry, a GPU and a serving-system preset.
It answers two kinds of questions:

* *kernel-level*: how long does one decode iteration (or one prefill) take at
  a given batch size and context length?  These latencies come from the GPU
  cost model (:mod:`repro.gpu.gemm`, :mod:`repro.gpu.attention_kernel`) and
  drive Figures 2a, 17 and the throughput tables.
* *system-level*: given a workload and a memory budget, run the continuous
  batching loop (prefill newly admitted requests, decode the running batch,
  retire finished requests) on a simulated clock and report the generation
  throughput — the quantity Table 4 calls "maximum achievable throughput".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.attention_kernel import KV_KERNELS, attention_decode_latency
from repro.gpu.gemm import GEMM_PRECISIONS, gemm_latency
from repro.gpu.specs import GPUSpec
from repro.model.config import ModelConfig
from repro.serving.kv_cache_manager import PagedKVCacheManager
from repro.serving.precision import SystemConfig
from repro.serving.request import Workload
from repro.serving.scheduler import ContinuousBatchingScheduler

__all__ = ["StepBreakdown", "ServingResult", "ServingEngine"]

#: Fixed per-iteration overhead for kernels not modelled explicitly
#: (normalisation, rotary embedding, sampling, python/runtime launch gaps).
_STEP_OVERHEAD_S = 100e-6


@dataclass
class StepBreakdown:
    """Latency decomposition of one model iteration (seconds)."""

    gemm: float
    attention: float
    other: float

    @property
    def total(self) -> float:
        return self.gemm + self.attention + self.other

    def fraction(self, part: str) -> float:
        value = getattr(self, part)
        return 0.0 if self.total == 0 else value / self.total


@dataclass
class ServingResult:
    """Outcome of a full serving-loop simulation."""

    total_time_s: float
    generated_tokens: int
    prompt_tokens: int
    peak_batch: int
    num_iterations: int

    @property
    def generation_throughput(self) -> float:
        """Generated tokens per second — the paper's headline metric."""
        return 0.0 if self.total_time_s == 0 else self.generated_tokens / self.total_time_s


class ServingEngine:
    """Cost-model-driven serving simulator for one (model, GPU, system) triple."""

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 max_seq_len: int = 2048) -> None:
        self.model = model
        self.gpu = gpu
        self.system = system
        self.max_seq_len = max_seq_len
        self.gemm_precision = GEMM_PRECISIONS[system.gemm_precision]
        self.attention_kernel = KV_KERNELS[system.attention_kernel]

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def weight_bytes(self) -> float:
        return float(self.model.weight_bytes(self.system.weight_bits))

    def kv_capacity_bytes(self) -> float:
        """Device memory left over for the KV cache."""
        weights = self.weight_bytes()
        workspace = weights * self.system.activation_workspace_factor + 1.0 * (1 << 30)
        return max(0.0, self.gpu.memory_bytes - weights - workspace)

    def new_kv_manager(self) -> PagedKVCacheManager:
        return PagedKVCacheManager(
            model=self.model, system=self.system,
            capacity_bytes=self.kv_capacity_bytes(),
            max_seq_len=self.max_seq_len)

    # ------------------------------------------------------------------
    # Kernel-level latency
    # ------------------------------------------------------------------
    def _block_gemm_latency(self, tokens: int) -> float:
        """Sum of one transformer block's GEMM latencies for ``tokens`` rows."""
        h = self.model.hidden_size
        kv = self.model.kv_dim
        inter = self.model.intermediate_size
        p = self.gemm_precision
        shapes = [
            (tokens, h + 2 * kv, h),        # fused QKV projection
            (tokens, h, h),                 # output projection
            (tokens, 2 * inter, h),         # fused gate + up projection
            (tokens, h, inter),             # down projection
        ]
        total = 0.0
        for m, n, k in shapes:
            total += gemm_latency(self.gpu, m, n, k, p).total
        if self.model.num_experts > 1:
            # MoE: each token is routed to `experts_per_token` experts; GEMM
            # work scales accordingly but weight traffic covers all experts'
            # parameters once per iteration (they all must be resident).
            moe_factor = self.model.experts_per_token
            ffn = (gemm_latency(self.gpu, tokens, 2 * inter, h, p).total
                   + gemm_latency(self.gpu, tokens, h, inter, p).total)
            total += ffn * (moe_factor - 1)
        return total

    def decode_step(self, batch: int, context_len: int) -> StepBreakdown:
        """Latency of one decoding iteration for ``batch`` sequences."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        gemm = self._block_gemm_latency(batch) * self.model.num_layers
        attn = attention_decode_latency(
            self.gpu, self.attention_kernel, batch, max(1, context_len),
            self.model.num_heads, self.model.num_kv_heads, self.model.head_dim,
        ).total * self.model.num_layers
        # LM head (kept in FP16 by every system).
        lm = gemm_latency(self.gpu, batch, self.model.vocab_size,
                          self.model.hidden_size, GEMM_PRECISIONS["fp16"]).total
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=(gemm + lm) / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff)

    def prefill(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Latency of prefilling ``batch`` prompts of ``prompt_len`` tokens."""
        tokens = batch * prompt_len
        gemm = self._block_gemm_latency(tokens) * self.model.num_layers
        # Prefill attention is a compute-bound FP16 matmul of cost
        # 2 * b * S^2 * H * D MACs per layer (QK^T and SV), on tensor cores.
        macs = 2.0 * batch * prompt_len * prompt_len * self.model.num_heads * self.model.head_dim
        attn = (2.0 * macs / (self.gpu.tensor_core_tops("fp16") * 1e12
                              * self.gpu.compute_efficiency)) * self.model.num_layers
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=gemm / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff)

    # ------------------------------------------------------------------
    # System-level serving loop
    # ------------------------------------------------------------------
    def serve(self, workload: Workload, max_num_seqs: Optional[int] = None) -> ServingResult:
        """Run the continuous-batching loop over ``workload`` on a simulated clock."""
        kv_manager = self.new_kv_manager()
        scheduler = ContinuousBatchingScheduler(
            kv_manager=kv_manager,
            max_num_seqs=max_num_seqs or 10**9)
        scheduler.submit(list(workload.requests))

        now = 0.0
        iterations = 0
        peak_batch = 0
        generated = 0
        guard = 0
        max_iterations = 10_000_000

        while not scheduler.all_done:
            guard += 1
            if guard > max_iterations:
                raise RuntimeError("serving loop failed to terminate")
            admitted = scheduler.admit(now)
            if admitted:
                prompt_len = max(r.prompt_len for r in admitted)
                now += self.prefill(len(admitted), prompt_len).total
                scheduler.complete_prefill(now)
                iterations += 1
                continue
            decoding = scheduler.decoding_requests()
            if not decoding:
                # Nothing runnable: jump to the next arrival.
                future = [r.arrival_time for r in scheduler.waiting]
                if not future:
                    break
                now = max(now, min(future))
                continue
            batch = len(decoding)
            peak_batch = max(peak_batch, batch)
            context = int(sum(r.context_len for r in decoding) / batch)
            now += self.decode_step(batch, context).total
            scheduler.record_decode_step(now)
            generated += batch
            iterations += 1

        return ServingResult(
            total_time_s=now,
            generated_tokens=generated,
            prompt_tokens=workload.total_prompt_tokens,
            peak_batch=peak_batch,
            num_iterations=iterations,
        )
