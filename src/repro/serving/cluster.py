"""Multi-replica cluster simulator: routers + aggregated serving results.

One :class:`repro.serving.engine.ServingEngine` models a single model
replica (possibly tensor-parallel across several GPUs).  Production
deployments run many such replicas behind a load balancer; this module
simulates that tier.  :class:`ClusterEngine` drives N replica
:class:`~repro.serving.engine.EngineStepper` loops against one shared clock:
requests are dispatched in arrival order, every replica is advanced to the
arrival instant first, and the pluggable :class:`Router` then picks a
replica using the queue state *at that moment* — exactly the information a
real load balancer has.

Routers shipped by default:

* ``round-robin`` — cyclic assignment, blind to load.  The baseline every
  cluster study compares against.
* ``least-outstanding`` — the replica with the fewest unfinished requests;
  the classic least-outstanding-requests (LOR) balancer.
* ``shortest-queue`` — the replica owing the fewest pending prefill tokens,
  a length-aware refinement of LOR for LLM serving where a single 3k-token
  prompt costs far more than several short ones.

Per-replica :class:`~repro.serving.engine.ServingResult`s are aggregated
into a :class:`ClusterResult` with cluster-level throughput (makespan-based),
merged latency percentiles and SLO goodput.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.gpu.specs import GPUSpec
from repro.model.config import ModelConfig
from repro.serving.engine import EngineStepper, ServingEngine, ServingResult
from repro.serving.metrics import ServingMetrics
from repro.serving.parallel import ParallelConfig
from repro.serving.policies import SchedulingConfig
from repro.serving.precision import SystemConfig
from repro.serving.request import Request, Workload

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "ShortestQueueRouter",
    "ROUTERS",
    "get_router",
    "ClusterResult",
    "ClusterEngine",
]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class Router(abc.ABC):
    """Chooses the replica each arriving request is dispatched to.

    ``route`` sees the replica steppers with their simulation advanced to
    the request's arrival time, so queue-state views
    (:attr:`EngineStepper.outstanding_requests`,
    :attr:`EngineStepper.pending_prefill_tokens`) reflect what a load
    balancer would observe at that instant.  Ties break toward the lowest
    replica index, keeping every router deterministic.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        """Index of the replica that should serve ``request``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cyclic assignment, blind to per-replica load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastOutstandingRouter(Router):
    """Send to the replica with the fewest unfinished requests."""

    name = "least-outstanding"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].outstanding_requests, i))


class ShortestQueueRouter(Router):
    """Send to the replica owing the fewest pending prefill tokens.

    Counting tokens instead of requests makes the router robust to
    heavy-tailed prompt lengths: one 3k-token prompt weighs as much as many
    short chats.  Outstanding requests break ties so decode-heavy backlogs
    still register.
    """

    name = "shortest-queue"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_prefill_tokens,
                                  replicas[i].outstanding_requests, i))


ROUTERS: Dict[str, Type[Router]] = {
    cls.name: cls
    for cls in (RoundRobinRouter, LeastOutstandingRouter, ShortestQueueRouter)
}


def get_router(name: str) -> Router:
    """Instantiate a router by registry name."""
    try:
        return ROUTERS[name]()
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise KeyError(f"unknown router {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Cluster result
# ----------------------------------------------------------------------
@dataclass
class ClusterResult:
    """Aggregate outcome of serving one workload on an N-replica cluster."""

    replica_results: List[ServingResult]
    #: Number of requests each replica was routed.
    requests_per_replica: List[int]
    #: Cluster-wide latency metrics (union of all replicas' finished requests).
    metrics: ServingMetrics = field(default_factory=ServingMetrics)

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def total_time_s(self) -> float:
        """Cluster makespan: the clock of the last replica to finish."""
        return max((r.total_time_s for r in self.replica_results), default=0.0)

    @property
    def generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.replica_results)

    @property
    def prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.replica_results)

    @property
    def num_finished(self) -> int:
        return sum(r.num_finished for r in self.replica_results)

    @property
    def num_unserved(self) -> int:
        return sum(r.num_unserved for r in self.replica_results)

    @property
    def num_preemptions(self) -> int:
        return sum(r.num_preemptions for r in self.replica_results)

    @property
    def generation_throughput(self) -> float:
        """Cluster generated tokens per second over the makespan."""
        total = self.total_time_s
        return 0.0 if total == 0 else self.generated_tokens / total

    def slo_goodput(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """Cluster requests per second completed within the latency SLO."""
        return self.metrics.slo_goodput(ttft_slo_s, tpot_slo_s,
                                        self.total_time_s)


# ----------------------------------------------------------------------
# Cluster engine
# ----------------------------------------------------------------------
class ClusterEngine:
    """N identical replica engines behind a pluggable router.

    Every replica shares the same (model, GPU, system, parallel) engine —
    the cost model is stateless — but owns its scheduler, KV cache and
    clock.  Replicas are independent once requests are assigned, so the
    shared-clock simulation only has to synchronise at routing decisions:
    before each dispatch all replicas advance to the request's arrival time,
    giving the router an honest view of queue depths at that instant.
    """

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 num_replicas: int, max_seq_len: int = 2048,
                 parallel: Optional[ParallelConfig] = None) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self.engine = ServingEngine(model, gpu, system, max_seq_len=max_seq_len,
                                    parallel=parallel)

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster (replicas x TP degree)."""
        return self.num_replicas * self.engine.tp_degree

    def serve(self, workload: Workload,
              router: Union[str, Router] = "least-outstanding",
              max_num_seqs: Optional[int] = None,
              scheduling: Optional[SchedulingConfig] = None) -> ClusterResult:
        """Serve ``workload`` across the cluster and aggregate the results.

        ``router`` is a registry name or a :class:`Router` instance (fresh
        instances keep round-robin state per run).  ``max_num_seqs`` and
        ``scheduling`` apply per replica, exactly as in
        :meth:`ServingEngine.serve`.
        """
        if isinstance(router, str):
            router = get_router(router)
        replicas = [EngineStepper(self.engine, scheduling=scheduling,
                                  max_num_seqs=max_num_seqs)
                    for _ in range(self.num_replicas)]
        assignments: List[List[Request]] = [[] for _ in replicas]

        for request in sorted(workload.requests,
                              key=lambda r: (r.arrival_time, r.request_id)):
            for replica in replicas:
                replica.run_until(request.arrival_time)
            index = router.route(request, replicas)
            replicas[index].submit(request)
            assignments[index].append(request)
        for replica in replicas:
            replica.run()

        results = [replica.result(Workload(requests=assigned))
                   for replica, assigned in zip(replicas, assignments)]
        merged = ServingMetrics(
            requests=[m for r in results if r.metrics is not None
                      for m in r.metrics.requests])
        return ClusterResult(
            replica_results=results,
            requests_per_replica=[len(a) for a in assignments],
            metrics=merged,
        )
