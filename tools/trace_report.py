#!/usr/bin/env python
"""SLO-attribution report over a saved Chrome trace.

Answers the question end-of-run aggregates cannot: *which phase caused the
TTFT violations*.  The input is a trace written by
``repro.serving.telemetry.write_chrome_trace`` (single engine or merged
cluster); every finished request is reconstructed from its span events —
TTFT/TPOT come out bitwise-identical to the live ``ServingMetrics`` values,
because the closing span event carries the raw timestamps — and each
request's TTFT window is attributed to the lifecycle phases it overlapped
(queued / prefill / stall / transfer / decode).

Usage::

    PYTHONPATH=src python tools/trace_report.py trace.json \
        --ttft-slo 0.2 --tpot-slo 0.05 [--top 5] [--json]

The text report shows attainment, the mean phase breakdown over all requests
vs. the violators, the dominant violator phase, and the worst offenders.
``--json`` emits the same numbers machine-readably instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.serving.telemetry import PHASES, SLOAttribution, attribute_slo


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank-free linear-interpolation percentile (numpy-compatible)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f} ms"


def _phase_line(phases: dict) -> str:
    parts = [f"{name} {_ms(phases[name])}" for name in (*PHASES, "other")]
    return " / ".join(parts)


def render_text(att: SLOAttribution, top: int) -> str:
    records = att.records
    lines = [
        f"requests reconstructed: {len(records)} "
        f"(TTFT SLO {_ms(att.ttft_slo_s)}, TPOT SLO {_ms(att.tpot_slo_s)})",
        f"SLO attainment: {att.attainment * 100:.1f}% "
        f"({len(att.violators)} violators)",
    ]
    ttfts = [r.ttft for r in records]
    lines.append(
        f"TTFT: p50 {_ms(_percentile(ttfts, 50))} / "
        f"p95 {_ms(_percentile(ttfts, 95))} / "
        f"p99 {_ms(_percentile(ttfts, 99))}")
    lines.append("mean TTFT phase breakdown (all requests):")
    lines.append("  " + _phase_line(att.mean_phase_seconds()))
    if att.violators:
        lines.append("mean TTFT phase breakdown (violators only):")
        lines.append("  " + _phase_line(
            att.mean_phase_seconds(violators_only=True)))
        lines.append(f"dominant violator phase: {att.dominant_phase()}")
    else:
        lines.append("no violators — every request met the SLO")
    worst = att.worst(top)
    if worst:
        lines.append(f"worst {len(worst)} requests by TTFT:")
        for r in worst:
            marker = "" if r.meets_slo(att.ttft_slo_s, att.tpot_slo_s) \
                else "  <-- violation"
            phases = ", ".join(
                f"{name}={_ms(r.phase_s.get(name, 0.0))}"
                for name in (*PHASES,) if r.phase_s.get(name, 0.0) > 0)
            lines.append(
                f"  req {r.request_id} (replica {r.replica}): "
                f"ttft {_ms(r.ttft)}, tpot {_ms(r.tpot)}, "
                f"{r.preemptions} preempts, {r.migrations} migrations"
                f"{' [' + phases + ']' if phases else ''}{marker}")
    return "\n".join(lines)


def render_json(att: SLOAttribution, top: int) -> dict:
    return {
        "num_requests": len(att.records),
        "ttft_slo_s": att.ttft_slo_s,
        "tpot_slo_s": att.tpot_slo_s,
        "attainment": att.attainment,
        "num_violators": len(att.violators),
        "mean_phase_seconds": att.mean_phase_seconds(),
        "violator_mean_phase_seconds":
            att.mean_phase_seconds(violators_only=True),
        "dominant_violator_phase": att.dominant_phase(),
        "ttft_p99_s": _percentile([r.ttft for r in att.records], 99),
        "worst": [
            {"request_id": r.request_id, "replica": r.replica,
             "ttft_s": r.ttft, "tpot_s": r.tpot,
             "preemptions": r.preemptions, "migrations": r.migrations,
             "phase_seconds": r.phase_s}
            for r in att.worst(top)
        ],
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Attribute SLO violations to lifecycle phases from a "
                    "saved Chrome trace")
    parser.add_argument("trace", help="trace JSON written by "
                                      "write_chrome_trace")
    parser.add_argument("--ttft-slo", type=float, default=0.2,
                        help="TTFT objective in seconds (default 0.2)")
    parser.add_argument("--tpot-slo", type=float, default=0.05,
                        help="TPOT objective in seconds (default 0.05)")
    parser.add_argument("--top", type=int, default=5,
                        help="worst offenders to list (default 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    args = parser.parse_args(argv)

    with open(args.trace) as fh:
        trace = json.load(fh)
    att = attribute_slo(trace, args.ttft_slo, args.tpot_slo)
    if not att.records:
        print("no finished requests found in trace", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(render_json(att, args.top), indent=2,
                         sort_keys=True))
    else:
        print(render_text(att, args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
