"""In-flight (continuous) batching scheduler.

QServe, vLLM and TensorRT-LLM all admit new requests into the running batch as
soon as KV-cache pages free up, instead of waiting for the whole batch to
finish.  The scheduler below implements that policy: FCFS admission subject to
page availability and a maximum concurrent-sequence cap, immediate reclamation
of pages on completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.serving.kv_cache_manager import PagedKVCacheManager
from repro.serving.request import Request, RequestState

__all__ = ["ContinuousBatchingScheduler"]


@dataclass
class ContinuousBatchingScheduler:
    """FCFS continuous-batching scheduler over a paged KV cache."""

    kv_manager: PagedKVCacheManager
    max_num_seqs: int = 256
    waiting: List[Request] = field(default_factory=list)
    running: List[Request] = field(default_factory=list)
    finished: List[Request] = field(default_factory=list)

    def submit(self, requests: List[Request]) -> None:
        """Add requests to the waiting queue (sorted by arrival time)."""
        self.waiting.extend(requests)
        self.waiting.sort(key=lambda r: (r.arrival_time, r.request_id))

    # ------------------------------------------------------------------
    def admit(self, now: float) -> List[Request]:
        """Admit as many waiting requests as memory allows; returns new admits."""
        admitted: List[Request] = []
        still_waiting: List[Request] = []
        for request in self.waiting:
            if request.arrival_time > now or len(self.running) + len(admitted) >= self.max_num_seqs:
                still_waiting.append(request)
                continue
            # Reserve pages for the request's *final* length (prompt plus the
            # full output budget) so a running request can never be starved of
            # pages mid-generation — the conservative admission policy
            # TensorRT-LLM uses when preemption is disabled.
            final_len = request.prompt_len + request.output_len
            if self.kv_manager.can_allocate(request.request_id, final_len):
                self.kv_manager.allocate(request.request_id, final_len)
                request.state = RequestState.PREFILLING
                admitted.append(request)
            else:
                still_waiting.append(request)
        self.waiting = still_waiting
        self.running.extend(admitted)
        return admitted

    def complete_prefill(self, now: float) -> None:
        """Move freshly prefilled requests into the decoding state."""
        for request in self.running:
            if request.state is RequestState.PREFILLING:
                request.state = RequestState.DECODING
                request.prefill_done_time = now

    def record_decode_step(self, now: float) -> List[Request]:
        """Account one generated token per decoding request; retire finished ones."""
        completed: List[Request] = []
        survivors: List[Request] = []
        for request in self.running:
            if request.state is not RequestState.DECODING:
                survivors.append(request)
                continue
            request.generated += 1
            if request.finished:
                request.state = RequestState.FINISHED
                request.finish_time = now
                self.kv_manager.free(request.request_id)
                completed.append(request)
            else:
                # Grow the allocation to cover the newly generated token.
                self.kv_manager.allocate(request.request_id, request.context_len)
                survivors.append(request)
        self.running = survivors
        self.finished.extend(completed)
        return completed

    # ------------------------------------------------------------------
    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def all_done(self) -> bool:
        return not self.waiting and not self.running

    def decoding_requests(self) -> List[Request]:
        return [r for r in self.running if r.state is RequestState.DECODING]

    def prefilling_requests(self) -> List[Request]:
        return [r for r in self.running if r.state is RequestState.PREFILLING]
