"""Table 3 — zero-shot accuracy on five common-sense tasks.

The synthetic five-task suite of :mod:`repro.data.tasks` is scored by model
likelihood exactly like lm-eval scores PIQA/ARC/HellaSwag/WinoGrande.  The
reproduced quantity is the accuracy *gap* each quantization method opens
against the FP16 reference (QoQ small, QuaRot/Atom larger).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import quantize_atom, quantize_quarot
from repro.data import build_zero_shot_suite, evaluate_task_accuracy
from repro.data.tasks import ZERO_SHOT_TASK_NAMES
from repro.experiments.accuracy_common import AccuracySetup, build_setup
from repro.experiments.runner import ExperimentReport
from repro.qoq import QoQConfig, quantize_model_qoq

__all__ = ["run"]


def run(scale: str = "tiny", seed: int = 0, num_examples: int = 12,
        setup: Optional[AccuracySetup] = None) -> ExperimentReport:
    setup = setup or build_setup(scale, seed=seed)
    g = setup.group_size
    suite = build_zero_shot_suite(setup.corpus, num_examples_per_task=num_examples,
                                  seed=seed)
    headers = ["Precision", "Method", *ZERO_SHOT_TASK_NAMES, "Avg."]
    report = ExperimentReport(
        experiment_id="table3",
        title="Zero-shot accuracy on five synthetic common-sense tasks",
        headers=headers,
        notes=f"scale={setup.scale}; {num_examples} examples per task.",
    )

    def add(precision: str, method: str, model, fwd=None) -> None:
        acc = evaluate_task_accuracy(model, suite, fwd)
        report.add_row(precision, method, *[acc[t] for t in ZERO_SHOT_TASK_NAMES],
                       acc["Avg."])

    add("FP16", "-", setup.model)
    mm, fwd = quantize_quarot(setup.model, setup.calibration, group_size=None)
    add("W4A4", "QuaRot", mm, fwd)
    mm, fwd = quantize_atom(setup.model, setup.calibration, group_size=g)
    add(f"W4A4 g{g}", "Atom", mm, fwd)
    res = quantize_model_qoq(setup.model, setup.calibration, QoQConfig(group_size=None))
    add("W4A8KV4", "QoQ", res.model, res.forward_config)
    res = quantize_model_qoq(setup.model, setup.calibration, QoQConfig(group_size=g))
    add(f"W4A8KV4 g{g}", "QoQ", res.model, res.forward_config)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.3f}"))
