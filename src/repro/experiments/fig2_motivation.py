"""Figure 2 — motivation: latency breakdown and W4A4 system throughput.

* Figure 2a: fraction of decode-iteration latency spent in attention, GEMM and
  everything else for Llama-2-7B on A100 as the batch size grows 1→64.
* Figure 2b: maximum achievable A100 throughput of Llama-2-7B under
  TensorRT-LLM (FP16 / W4A16 / W8A8) and the W4A4 systems Atom and QuaRot —
  demonstrating that W4A4 fails to beat even FP16 end to end.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import A100
from repro.model import get_config
from repro.serving import SYSTEM_PRESETS, ServingEngine, max_achievable_throughput

__all__ = ["run_latency_breakdown", "run_system_throughput", "run"]


def run_latency_breakdown(model_name: str = "llama-2-7b",
                          batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
                          context_len: int = 1024) -> ExperimentReport:
    """Figure 2a: attention / GEMM / other share of decode latency vs batch."""
    model = get_config(model_name)
    engine = ServingEngine(model, A100, SYSTEM_PRESETS["trt-w8a8"])
    report = ExperimentReport(
        experiment_id="fig2a",
        title="Decode latency share by operator (Llama-2-7B, A100, W8A8)",
        headers=["Batch", "Attention %", "GEMM %", "Other %"],
        notes=f"context length {context_len} tokens.",
    )
    for batch in batches:
        step = engine.decode_step(batch, context_len)
        report.add_row(batch, 100 * step.fraction("attention"),
                       100 * step.fraction("gemm"), 100 * step.fraction("other"))
    return report


def run_system_throughput(model_name: str = "llama-2-7b") -> ExperimentReport:
    """Figure 2b: Llama-2-7B maximum achievable throughput on A100 by system."""
    model = get_config(model_name)
    report = ExperimentReport(
        experiment_id="fig2b",
        title="Llama-2-7B system throughput on A100 (tokens/s)",
        headers=["System", "Throughput (tok/s)", "Batch"],
    )
    for name in ["trt-fp16", "trt-w4a16", "trt-w8a8", "atom-w4a4", "quarot-w4a4"]:
        result = max_achievable_throughput(model, A100, SYSTEM_PRESETS[name])
        report.add_row(name, result.tokens_per_second, result.batch)
    return report


def run(model_name: str = "llama-2-7b") -> ExperimentReport:
    """Combined report (2a series plus 2b rows in the notes)."""
    breakdown = run_latency_breakdown(model_name)
    throughput = run_system_throughput(model_name)
    breakdown.notes += "\n" + throughput.to_text("{:.0f}")
    breakdown.extra["fig2b"] = throughput
    return breakdown


if __name__ == "__main__":  # pragma: no cover
    print(run_latency_breakdown().to_text("{:.1f}"))
    print(run_system_throughput().to_text("{:.0f}"))
