"""Reactive replica autoscaling for the cluster simulator.

Production serving fleets are not fixed-size: a deployment provisions
replicas against the *current* load and pays for what it keeps warm.  This
module models the reactive tier of that control loop — the part a
Kubernetes HPA or an in-house fleet controller implements — on the
simulator's shared cluster clock:

* :class:`AutoscalerConfig` declares the policy: fleet bounds, the
  evaluation ``interval_s``, the scale-up signals (queue depth per replica,
  optionally recent TTFT SLO attainment), the scale-down idleness test, and
  the up/down cooldowns that give the loop hysteresis so one burst does not
  make the fleet flap.
* :class:`ReactiveAutoscaler` is the decision procedure: a pure function of
  the :class:`FleetSnapshot` observed at each tick plus the cooldown
  clocks, emitting at most one action per tick.
* Cold start is *priced*, not free: a scale-up decision at ``t`` yields a
  replica that starts serving at ``t + cold_start_s`` where the dominant
  term is shipping the model weights across the host link
  (:attr:`AutoscalerConfig.host_link`, PCIe by default — weights come from
  host memory or local cache, not over NVLink).
* :class:`AutoscaleReport` records what happened — every
  :class:`ScalingEvent` and each replica slot's active windows — and turns
  the windows into the cost metric capacity planning compares on:
  GPU-seconds actually provisioned, versus a static fleet's
  ``replicas x makespan``.

The cluster integration lives in
:meth:`repro.serving.cluster.ClusterEngine.serve` (``autoscaler=`` keyword):
scale-down drains a replica through the same migration machinery as
disaggregated serving, so in-flight decodes move with their KV state priced
on the wire instead of being killed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpu.specs import InterconnectSpec, PCIE_GEN4

__all__ = [
    "weight_transfer_s",
    "AutoscalerConfig",
    "FleetSnapshot",
    "ScalingEvent",
    "ReactiveAutoscaler",
    "AutoscaleReport",
]


def weight_transfer_s(weight_bytes: float, host_link: InterconnectSpec,
                      provision_s: float = 0.0) -> float:
    """Seconds to bring a model's weights onto a replica over ``host_link``.

    ``provision_s`` of fixed bring-up plus the time to ship ``weight_bytes``
    across the host link.  For a tensor-parallel replica pass the whole
    model's bytes; the shards load in parallel but each GPU's share crosses
    the same host link its neighbours contend on, so the full-model transfer
    time is the honest lower bound.

    This is the single pricing formula for every "weights move onto a GPU"
    event in the simulator: autoscaler cold starts
    (:meth:`AutoscalerConfig.cold_start_s`) and multi-model residency
    swap-ins (:class:`repro.serving.multiplex.ModelResidency`) both charge
    exactly this.
    """
    return provision_s + host_link.transfer_latency(weight_bytes)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs of the reactive autoscaler.

    The fleet scales between ``min_replicas`` and ``max_replicas`` (the
    cluster's replica pool size when ``None``).  Every ``interval_s`` the
    controller takes a :class:`FleetSnapshot` and applies, in order:

    * **scale up** when the fleet-wide waiting-queue depth exceeds
      ``scale_up_queue_depth`` requests per provisioned replica, or — with
      ``ttft_slo_s`` set — when fewer than ``slo_floor`` of the requests
      finished since the last tick met their TTFT SLO (given at least
      ``slo_min_samples`` of them, so one slow request cannot trigger a
      replica).
    * **scale down** when the queue is no deeper than
      ``scale_down_queue_depth``, the outstanding work would fit on the
      remaining replicas at ``scale_down_outstanding`` requests each, and no
      replica is still provisioning.

    ``up_cooldown_s`` / ``down_cooldown_s`` are the hysteresis: after a
    scale-up, further ups wait ``up_cooldown_s`` and downs wait
    ``down_cooldown_s`` (so capacity added for a burst is given time to
    prove itself before being reclaimed); after a scale-down, further downs
    wait ``down_cooldown_s``.

    A new replica is not free: it serves only after
    :meth:`cold_start_s` — ``provision_s`` of instance/process bring-up plus
    the model weights crossing ``host_link`` (PCIe from host memory by
    default).
    """

    min_replicas: int = 1
    max_replicas: Optional[int] = None
    interval_s: float = 5.0
    scale_up_queue_depth: float = 4.0
    scale_down_queue_depth: float = 0.0
    scale_down_outstanding: float = 1.0
    up_cooldown_s: float = 10.0
    down_cooldown_s: float = 30.0
    provision_s: float = 2.0
    host_link: InterconnectSpec = PCIE_GEN4
    ttft_slo_s: Optional[float] = None
    slo_floor: float = 0.9
    slo_min_samples: int = 5

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas is not None \
                and self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ValueError("cooldowns must be non-negative")
        if self.provision_s < 0:
            raise ValueError("provision_s must be non-negative")
        if not 0.0 < self.slo_floor <= 1.0:
            raise ValueError("slo_floor must be in (0, 1]")
        if self.slo_min_samples < 1:
            raise ValueError("slo_min_samples must be >= 1")

    def cold_start_s(self, weight_bytes: int) -> float:
        """Delay between a scale-up decision and the replica serving.

        ``provision_s`` of bring-up plus the time to ship ``weight_bytes``
        of model weights over ``host_link`` — for a tensor-parallel replica
        pass the whole model's bytes; the shards load in parallel but each
        GPU's share crosses the same host link its neighbours contend on,
        so the full-model transfer time is the honest lower bound.
        """
        return weight_transfer_s(weight_bytes, self.host_link,
                                 self.provision_s)


@dataclass(frozen=True)
class FleetSnapshot:
    """What the controller observes at one evaluation tick."""

    #: Tick time on the shared cluster clock.
    now: float
    #: Replicas currently serving.
    num_active: int
    #: Replicas provisioning (scale-up decided, cold start not elapsed).
    num_starting: int
    #: Waiting (queued, unadmitted) requests across the active replicas.
    queue_depth: int
    #: Waiting + running requests across the active replicas.
    outstanding: int
    #: Requests finished since the previous tick (SLO signal window).
    recent_finished: int = 0
    #: Of those, how many met the TTFT SLO.
    recent_slo_ok: int = 0


@dataclass(frozen=True)
class ScalingEvent:
    """One committed autoscaling action."""

    time_s: float
    #: ``"up"`` or ``"down"``.
    action: str
    #: Replica slot provisioned or drained.
    replica: int
    #: Replicas *serving* immediately after the action (a scale-up does not
    #: raise this until its cold start elapses).
    num_active: int
    #: Which signal fired: ``"queue-depth"``, ``"slo-attainment"``, ``"idle"``.
    reason: str

    def to_json(self) -> Dict:
        return {"time_s": self.time_s, "action": self.action,
                "replica": self.replica, "num_active": self.num_active,
                "reason": self.reason}


class ReactiveAutoscaler:
    """The tick-by-tick decision procedure.

    Stateless apart from the cooldown clocks and the committed event log —
    the cluster loop owns the fleet itself (which slots run, cold-start
    completion, draining).  :meth:`decide` proposes at most one action for
    the snapshot; the loop applies it and calls :meth:`commit`, which is
    when the cooldown clocks advance (a decision that is never applied does
    not consume a cooldown).
    """

    def __init__(self, config: AutoscalerConfig, max_replicas: int) -> None:
        if max_replicas < config.min_replicas:
            raise ValueError("max_replicas must be >= config.min_replicas")
        self.config = config
        self.max_replicas = max_replicas
        self.events: List[ScalingEvent] = []
        self._last_up = float("-inf")
        self._last_down = float("-inf")

    def decide(self, snapshot: FleetSnapshot
               ) -> Optional[Tuple[str, str]]:
        """``("up"|"down", reason)`` for this tick, or ``None`` to hold."""
        cfg = self.config
        capacity = snapshot.num_active + snapshot.num_starting
        if (capacity < self.max_replicas
                and snapshot.now - self._last_up >= cfg.up_cooldown_s):
            if snapshot.queue_depth > cfg.scale_up_queue_depth * capacity:
                return ("up", "queue-depth")
            if (cfg.ttft_slo_s is not None
                    and snapshot.recent_finished >= cfg.slo_min_samples
                    and snapshot.recent_slo_ok
                    < cfg.slo_floor * snapshot.recent_finished):
                return ("up", "slo-attainment")
        if (snapshot.num_active > cfg.min_replicas
                and snapshot.num_starting == 0
                and snapshot.now - self._last_up >= cfg.down_cooldown_s
                and snapshot.now - self._last_down >= cfg.down_cooldown_s
                and snapshot.queue_depth <= cfg.scale_down_queue_depth
                and snapshot.outstanding
                <= cfg.scale_down_outstanding * (snapshot.num_active - 1)):
            return ("down", "idle")
        return None

    def commit(self, event: ScalingEvent) -> None:
        """Record an applied action and start its cooldown."""
        self.events.append(event)
        if event.action == "up":
            self._last_up = event.time_s
        else:
            self._last_down = event.time_s


@dataclass
class AutoscaleReport:
    """What the autoscaler did over one run, and what it cost.

    ``windows`` holds, per replica slot, the ``(start, end)`` intervals the
    slot was *provisioned* — from the scale-up decision (the GPU is held
    while weights load) to the drain, or to the makespan for slots still up
    at the end.  Summed and multiplied by the replica's GPU count they give
    :attr:`gpu_seconds`, the quantity a capacity plan compares against a
    static fleet's ``num_replicas x makespan``.
    """

    events: List[ScalingEvent] = field(default_factory=list)
    #: Per replica slot: provisioned ``(start, end)`` windows.
    windows: List[List[Tuple[float, float]]] = field(default_factory=list)
    #: Cold-start delay priced into every scale-up of this run.
    cold_start_s: float = 0.0
    #: GPUs per replica (tensor-parallel degree).
    gpus_per_replica: int = 1
    #: Cluster makespan the open windows were closed at.
    makespan_s: float = 0.0

    @property
    def num_scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "up")

    @property
    def num_scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "down")

    @property
    def replica_seconds(self) -> float:
        """Total provisioned replica-time across all windows."""
        return sum(end - start
                   for slot in self.windows for start, end in slot)

    @property
    def gpu_seconds(self) -> float:
        """Provisioned GPU-time: the autoscaled fleet's cost metric."""
        return self.replica_seconds * self.gpus_per_replica

    @property
    def peak_replicas(self) -> int:
        """Most replicas provisioned at any instant."""
        bounds = []
        for slot in self.windows:
            for start, end in slot:
                bounds.append((start, 1))
                bounds.append((end, -1))
        peak = current = 0
        for _, delta in sorted(bounds):
            current += delta
            peak = max(peak, current)
        return peak

    def to_json(self) -> Dict:
        return {
            "events": [e.to_json() for e in self.events],
            "windows": [[list(w) for w in slot] for slot in self.windows],
            "cold_start_s": self.cold_start_s,
            "gpus_per_replica": self.gpus_per_replica,
            "makespan_s": self.makespan_s,
            "num_scale_ups": self.num_scale_ups,
            "num_scale_downs": self.num_scale_downs,
            "replica_seconds": self.replica_seconds,
            "gpu_seconds": self.gpu_seconds,
            "peak_replicas": self.peak_replicas,
        }
