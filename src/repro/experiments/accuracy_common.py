"""Shared setup for the accuracy experiments (Tables 2/3/5, Figure 16).

Builds the synthetic corpus, the calibrated model, calibration batches and the
evaluation sequences at one of two scales:

* ``"tiny"`` — 2-layer, 64-hidden model; seconds per configuration.  Used by
  the test suite and CI.  Orderings between closely spaced methods are noisy
  at this scale.
* ``"small"`` — 4-layer, 128-hidden model with a larger evaluation set; used
  for the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data import (
    CorpusConfig,
    SyntheticCorpus,
    evaluate_perplexity,
    sample_calibration_batches,
)
from repro.model import TransformerModel, generate_model, get_config
from repro.model.weights import OutlierProfile
from repro.model.transformer import ForwardConfig

__all__ = ["AccuracySetup", "build_setup", "SCALES"]


@dataclass(frozen=True)
class ScaleSpec:
    model_name: str
    group_size: int
    num_classes: int
    train_tokens: int
    eval_tokens: int
    eval_seq_len: int
    eval_sequences: int
    calib_batches: int
    calib_seq_len: int


SCALES: Dict[str, ScaleSpec] = {
    "tiny": ScaleSpec(model_name="tiny-llama", group_size=32, num_classes=16,
                      train_tokens=6144, eval_tokens=2048, eval_seq_len=128,
                      eval_sequences=6, calib_batches=4, calib_seq_len=48),
    "small": ScaleSpec(model_name="small-llama", group_size=32, num_classes=24,
                       train_tokens=8192, eval_tokens=4096, eval_seq_len=256,
                       eval_sequences=16, calib_batches=6, calib_seq_len=64),
    "medium": ScaleSpec(model_name="medium-llama", group_size=64, num_classes=48,
                        train_tokens=16384, eval_tokens=8192, eval_seq_len=256,
                        eval_sequences=32, calib_batches=8, calib_seq_len=64),
}

#: Outlier structure used for all accuracy experiments: strong activation
#: outliers (~20x) and Key outliers (~8x) so that the failure modes QoQ
#: targets dominate the quantization error.
ACCURACY_PROFILE = OutlierProfile(
    activation_outlier_scale=20.0,
    key_outlier_scale=8.0,
    heavy_tail_fraction=0.02,
)


@dataclass
class AccuracySetup:
    """Everything an accuracy experiment needs."""

    scale: str
    spec: ScaleSpec
    corpus: SyntheticCorpus
    model: TransformerModel
    calibration: List[np.ndarray]
    eval_sequences: List[np.ndarray]

    @property
    def group_size(self) -> int:
        return self.spec.group_size

    def perplexity(self, model: TransformerModel,
                   forward_config: ForwardConfig | None = None) -> float:
        return evaluate_perplexity(model, self.eval_sequences, forward_config)


def build_setup(scale: str = "tiny", seed: int = 0) -> AccuracySetup:
    """Build the corpus, model and calibration data for one scale."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    spec = SCALES[scale]
    config = get_config(spec.model_name)
    corpus = SyntheticCorpus(CorpusConfig(
        vocab_size=config.vocab_size,
        num_train_tokens=spec.train_tokens,
        num_eval_tokens=spec.eval_tokens,
        num_classes=spec.num_classes,
        seed=seed,
    ))
    model = generate_model(
        config, seed=seed, profile=ACCURACY_PROFILE,
        bigram_matrix=corpus.transition_matrix,
        token_classes=corpus.token_classes,
        train_tokens=corpus.train_tokens,
    )
    calibration = sample_calibration_batches(
        corpus, num_batches=spec.calib_batches, seq_len=spec.calib_seq_len, seed=seed)
    eval_sequences = corpus.chunks("eval", spec.eval_seq_len)[:spec.eval_sequences]
    return AccuracySetup(scale=scale, spec=spec, corpus=corpus, model=model,
                         calibration=calibration, eval_sequences=eval_sequences)
