"""QServe / QoQ reproduction library.

A pure-Python (NumPy) reproduction of *QServe: W4A8KV4 Quantization and
System Co-design for Efficient LLM Serving* (MLSys 2025).

The package is organised in two halves that mirror the paper:

* the **QoQ quantization algorithm** (:mod:`repro.quant`, :mod:`repro.qoq`,
  :mod:`repro.baselines`) operating on a from-scratch NumPy LLM substrate
  (:mod:`repro.model`, :mod:`repro.data`);
* the **QServe serving system** reproduced as an analytical GPU cost model
  plus a discrete serving simulator (:mod:`repro.gpu`, :mod:`repro.serving`),
  with one experiment module per paper table/figure
  (:mod:`repro.experiments`).
"""

from repro._version import __version__

__all__ = ["__version__"]
