"""INT4 packing and register-level-parallelism interleaving (Figure 13).

QServe stores two UINT4 weights per byte.  To unpack them with only three
logical operations per eight weights, the kernel relies on an offline
interleaving: every 32 consecutive weights ``w0..w31`` are stored as
``w0, w16, w1, w17, ..., w15, w31`` so that, after packing pairs into bytes,

* ``packed & 0x0F`` (per byte) recovers ``w0..w15`` and
* ``(packed >> 4) & 0x0F`` recovers ``w16..w31``,

each already laid out contiguously for the tensor-core fragment.  The
functions below implement the interleaving, the packing, and the unpacking
exactly as byte-level operations so that tests can verify the three-operation
claim and the round trip.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_int4",
    "unpack_int4",
    "interleave_for_rlp",
    "deinterleave_from_rlp",
    "rlp_unpack_uint4x8",
    "RLP_BLOCK",
]

#: Number of UINT4 values grouped into one register-level-parallelism block.
RLP_BLOCK = 32


def pack_int4(codes: np.ndarray) -> np.ndarray:
    """Pack an even-length array of UINT4 codes into bytes, two per byte.

    Element ``2i`` goes to the low nibble and ``2i+1`` to the high nibble of
    output byte ``i``, matching the little-endian layout the CUDA kernel
    expects.  Works on the last axis of any shape with an even final
    dimension.
    """
    codes = np.asarray(codes)
    if codes.shape[-1] % 2 != 0:
        raise ValueError("last dimension must be even to pack two nibbles per byte")
    if codes.min() < 0 or codes.max() > 15:
        raise ValueError("codes must be UINT4 values in [0, 15]")
    c = codes.astype(np.uint8)
    low = c[..., 0::2]
    high = c[..., 1::2]
    return (low | (high << 4)).astype(np.uint8)


def unpack_int4(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_int4`."""
    packed = np.asarray(packed, dtype=np.uint8)
    low = packed & 0x0F
    high = (packed >> 4) & 0x0F
    out = np.empty(packed.shape[:-1] + (packed.shape[-1] * 2,), dtype=np.uint8)
    out[..., 0::2] = low
    out[..., 1::2] = high
    return out


def interleave_for_rlp(codes: np.ndarray) -> np.ndarray:
    """Reorder each 32-wide block ``w0..w31`` into ``w0,w16,w1,w17,...``.

    Operates on the last axis, whose length must be a multiple of
    :data:`RLP_BLOCK`.  This is the offline reordering of Figure 13 that makes
    the low nibbles of a packed register hold ``w0..w15`` and the high nibbles
    hold ``w16..w31``.
    """
    codes = np.asarray(codes)
    n = codes.shape[-1]
    if n % RLP_BLOCK != 0:
        raise ValueError(f"last dimension ({n}) must be a multiple of {RLP_BLOCK}")
    blocks = codes.reshape(codes.shape[:-1] + (n // RLP_BLOCK, 2, RLP_BLOCK // 2))
    # blocks[..., 0, :] = w0..w15, blocks[..., 1, :] = w16..w31.
    interleaved = np.stack([blocks[..., 0, :], blocks[..., 1, :]], axis=-1)
    return interleaved.reshape(codes.shape)


def deinterleave_from_rlp(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave_for_rlp`."""
    codes = np.asarray(codes)
    n = codes.shape[-1]
    if n % RLP_BLOCK != 0:
        raise ValueError(f"last dimension ({n}) must be a multiple of {RLP_BLOCK}")
    pairs = codes.reshape(codes.shape[:-1] + (n // RLP_BLOCK, RLP_BLOCK // 2, 2))
    low = pairs[..., 0]
    high = pairs[..., 1]
    return np.concatenate([low, high], axis=-1).reshape(codes.shape)


def rlp_unpack_uint4x8(packed_words: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Unpack interleaved UINT4 weights from 32-bit register words.

    ``packed_words`` is a ``uint32`` array in which each word holds eight
    interleaved UINT4 weights (produced by :func:`interleave_for_rlp` followed
    by :func:`pack_int4` and a little-endian view as ``uint32``).  Returns
    ``(low, high, n_ops)`` where ``low``/``high`` are ``uint32`` words whose
    four bytes contain ``w0..w3`` / ``w16..w19`` style UINT8 values, and
    ``n_ops`` counts the logical ALU operations used — three per word, as
    stated in Figure 13 (one AND for the low nibbles, one shift and one AND
    for the high nibbles).
    """
    words = np.asarray(packed_words, dtype=np.uint32)
    low = words & np.uint32(0x0F0F0F0F)            # op 1
    shifted = words >> np.uint32(4)                # op 2
    high = shifted & np.uint32(0x0F0F0F0F)         # op 3
    return low, high, 3 * words.size
