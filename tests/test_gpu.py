"""Tests for the GPU cost model: specs, roofline, GEMM, attention kernels."""

import numpy as np
import pytest

from repro.gpu import (
    A100,
    GEMM_PRECISIONS,
    KV_KERNELS,
    L40S,
    attention_decode_latency,
    attention_roofline_tops,
    dequant_overhead_fraction,
    gemm_latency,
    gemm_roofline_tops,
    get_gpu,
    roofline_crossover_batch,
)


def test_gpu_registry_and_constants():
    assert get_gpu("a100") is A100
    assert get_gpu("L40S") is L40S
    with pytest.raises(KeyError):
        get_gpu("h100")
    # Paper footnote 1: 312/624/1248 TOPS, ~2 TB/s.
    assert A100.tensor_core_tops("fp16") == 312
    assert A100.tensor_core_tops("int4") == 1248
    assert A100.memory_bandwidth_gbps == pytest.approx(2039)
    # Section 3.2: FP32 CUDA peak is ~2% of INT4 tensor core peak.
    assert A100.fp32_cuda_tflops / A100.int4_tensor_tops < 0.025
    # Section 5.3: A100 FP32 CUDA roofline turning point ~9.8 ops/byte.
    assert A100.cuda_core_roofline_turning_point("fp32") == pytest.approx(9.6, abs=1.0)
    # Section 6.3: L40S has relatively stronger CUDA cores than A100.
    assert (L40S.fp32_cuda_tflops / L40S.int8_tensor_tops
            > A100.fp32_cuda_tflops / A100.int8_tensor_tops)


def test_roofline_crossover_near_78():
    assert roofline_crossover_batch(A100, 4, 16, 8, 8) == pytest.approx(78, abs=3)


def test_w4a8_roofline_dominates_w4a16_and_w8a8():
    for m in (1, 8, 32, 78, 128, 192):
        w4a8 = gemm_roofline_tops(A100, m, 4, 8)
        assert w4a8 >= gemm_roofline_tops(A100, m, 4, 16) - 1e-9
        assert w4a8 >= gemm_roofline_tops(A100, m, 8, 8) - 1e-9


def test_attention_roofline_doubles_per_precision_halving():
    fp16 = attention_roofline_tops(A100, 16)
    int8 = attention_roofline_tops(A100, 8)
    int4 = attention_roofline_tops(A100, 4)
    assert int8 == pytest.approx(2 * fp16)
    assert int4 == pytest.approx(2 * int8)


def test_gemm_latency_breakdown_and_monotonicity():
    p = GEMM_PRECISIONS["w8a8"]
    small = gemm_latency(A100, 8, 4096, 4096, p)
    large = gemm_latency(A100, 64, 4096, 4096, p)
    assert large.total >= small.total
    assert small.cuda_core == 0.0  # W8A8 has no main-loop dequantization
    with pytest.raises(ValueError):
        gemm_latency(A100, 0, 4096, 4096, p)


def test_w4a8_gemm_faster_than_w8a8_in_memory_bound_region():
    w8a8 = gemm_latency(A100, 16, 4096, 4096, GEMM_PRECISIONS["w8a8"]).total
    w4a8 = gemm_latency(A100, 16, 4096, 4096, GEMM_PRECISIONS["w4a8-qserve-grp"]).total
    assert w8a8 / w4a8 > 1.3  # paper: ~1.5x over cuBLAS W8A8


def test_dequant_overhead_ordering_fig18():
    """W8A8 has zero overhead; Atom's W4A4 has the largest; QServe W4A8 is
    comparable to (and not larger than) TRT W4A16."""
    for m in (8, 32, 128):
        over = {name: dequant_overhead_fraction(A100, m, 4096, 4096,
                                                GEMM_PRECISIONS[name])
                for name in ("w8a8", "w4a16", "w4a4-atom", "w4a8-qserve-grp")}
        assert over["w8a8"] == 0.0
        assert over["w4a4-atom"] >= max(over["w4a16"], over["w4a8-qserve-grp"])
        assert over["w4a8-qserve-grp"] <= over["w4a16"] + 1e-9
    assert dequant_overhead_fraction(
        A100, 8, 4096, 4096, GEMM_PRECISIONS["w4a4-atom"]) > 0.6


def _llama7b_attention(gpu, kernel, seq=1024, batch=64):
    return attention_decode_latency(gpu, KV_KERNELS[kernel], batch, seq, 32, 32, 128)


def test_table1_shape_on_a100():
    """Naive KV4 is slower than KV8 on A100; the QServe kernel is 1.3-2x faster."""
    for seq in (256, 1024, 1536):
        kv8 = _llama7b_attention(A100, "kv8-trt", seq).total
        naive = _llama7b_attention(A100, "kv4-naive", seq).total
        ours = _llama7b_attention(A100, "kv4-qserve", seq).total
        assert naive > kv8 * 0.99
        assert 1.2 < kv8 / ours < 2.2


def test_naive_kv4_faster_on_l40s_due_to_stronger_cuda_cores():
    kv8 = _llama7b_attention(L40S, "kv8-trt").total
    naive = _llama7b_attention(L40S, "kv4-naive").total
    assert kv8 / naive > 1.4  # paper: ~1.7x


def test_naive_kv4_compute_bound_on_a100_memory_bound_on_l40s():
    a100 = _llama7b_attention(A100, "kv4-naive")
    l40s = _llama7b_attention(L40S, "kv4-naive")
    assert a100.is_compute_bound
    assert not l40s.is_compute_bound


def test_kv4_breakdown_monotonically_improves():
    stages = ["kv4-naive", "kv4-bittrick", "kv4-simplectrl", "kv4-qserve"]
    latencies = [_llama7b_attention(A100, s).total for s in stages]
    assert all(latencies[i + 1] <= latencies[i] + 1e-12
               for i in range(len(latencies) - 1))


def test_attention_latency_validation():
    with pytest.raises(ValueError):
        attention_decode_latency(A100, KV_KERNELS["kv8-trt"], 0, 128, 32, 32, 128)
    with pytest.raises(ValueError):
        A100.tensor_core_tops("int2")
    with pytest.raises(ValueError):
        A100.cuda_core_tops("int2")
