"""Requests and workloads for the serving simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["RequestState", "Request", "Workload", "make_uniform_workload"]


class RequestState(str, enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    WAITING = "waiting"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass
class Request:
    """One generation request.

    The throughput benchmark of the paper uses 1024 prompt tokens and 512
    output tokens per request; :func:`make_uniform_workload` builds exactly
    that.
    """

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float = 0.0
    state: RequestState = RequestState.WAITING
    generated: int = 0
    prefill_done_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")

    @property
    def context_len(self) -> int:
        """Tokens currently occupying KV cache (prompt + generated)."""
        return self.prompt_len + self.generated

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_len


@dataclass
class Workload:
    """A batch of requests plus summary helpers."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_len for r in self.requests)


def make_uniform_workload(num_requests: int, prompt_len: int = 1024,
                          output_len: int = 512,
                          arrival_rate: Optional[float] = None,
                          seed: int = 0) -> Workload:
    """Build the paper's benchmark workload.

    With ``arrival_rate=None`` every request is available at time zero (the
    "maximum achievable throughput" setting); otherwise arrivals follow a
    Poisson process with the given rate (requests/second).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    requests = [
        Request(request_id=i, prompt_len=prompt_len, output_len=output_len,
                arrival_time=float(arrivals[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)
