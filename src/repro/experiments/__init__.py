"""One module per paper table/figure.

Every experiment module exposes a ``run(...)`` function returning a
:class:`repro.experiments.runner.ExperimentReport` that can be printed as the
rows/series of the corresponding table or figure.  The benchmark harness in
``benchmarks/`` and the scripts in ``examples/`` are thin wrappers over these.

Efficiency experiments (roofline, kernel latencies, throughput) are pure cost
model evaluations and run in seconds.  Accuracy experiments (perplexity,
zero-shot, ablation) run the NumPy models; their cost is controlled by the
``scale`` argument ("tiny" for CI, "small" for the reported numbers).
"""

from repro.experiments.runner import ExperimentReport, format_table

__all__ = ["ExperimentReport", "format_table"]
