"""Benchmark regenerating Table 3 (zero-shot accuracy on five tasks)."""

from repro.experiments import table3_zeroshot


def test_table3_zeroshot(benchmark, accuracy_setup):
    report = benchmark.pedantic(table3_zeroshot.run,
                                kwargs={"setup": accuracy_setup, "num_examples": 8},
                                rounds=1, iterations=1)
    print()
    print(report.to_text("{:.3f}"))
    avg = dict(zip((f"{r[0]}/{r[1]}" for r in report.rows), report.column("Avg.")))
    # FP16 is better than chance (0.25 on four choices).
    assert avg["FP16/-"] > 0.3
