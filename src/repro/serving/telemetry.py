"""Serving telemetry: lifecycle tracing, iteration timelines, counters.

The simulator's five serving subsystems (chunked prefill, prefix caching,
disaggregated migration, speculation, precision tiers) interact in ways that
end-of-run aggregates cannot explain: when p99 TTFT spikes, a
:class:`~repro.serving.metrics.ServingMetrics` percentile says *that* it
spiked, not *which phase* — queueing, a preemption stall, a KV transfer, a
dequant pass — ate the budget.  This module is the measurement layer that
answers the second question.

Three recorders, all **default-off and zero-overhead when disabled** (every
hook sits behind an ``if tracer is not None`` guard and never touches the
simulated clock, so an untraced run is bitwise-identical to the
pre-telemetry engine — and a *traced* run is too, because telemetry only
observes):

* **Request lifecycle spans** — every request's path through
  queued → admitted → prefill chunks → decode → preempt / migrate / finish,
  as timestamped events.  Phase durations (queued, prefill, stall, transfer,
  decode) are derived from the event stream at export time, off the hot
  path.
* **Per-iteration records** — one record per engine iteration: batch
  composition (prefill chunk tokens, decode batch), tokens committed, step
  latency, free pages, KV utilization, queue depth.
* **Sampled time series** — queue depth, running batch, KV utilization and
  finished-request counts sampled every ``sample_interval_s`` of *simulated*
  time, the inputs of a rolling-goodput plot.

Scattered run counters (admission scans, page conservation ledgers, prefix
and speculation stats, precision violations) are unified in a
:class:`CounterRegistry` with a Prometheus-style text snapshot
(:meth:`CounterRegistry.prometheus_text`); :func:`collect_counters` builds
one from any :class:`~repro.serving.engine.EngineStepper`, traced or not.

Two consumers ship with the tracer:

* :func:`chrome_trace` / :func:`write_chrome_trace` export Chrome
  trace-event JSON — replicas as processes, requests as async spans with
  nested phase spans, iterations as duration slices, time series as counter
  tracks — loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Timestamps are simulated microseconds, so two
  identical runs produce **byte-identical** trace files.
* :func:`trace_phase_records` + :func:`attribute_slo` reconstruct each
  request's TTFT/TPOT *exactly* (the closing span event carries the raw
  second-resolution timestamps, and JSON round-trips doubles losslessly)
  and attribute every TTFT to its phases — the engine behind
  ``tools/trace_report.py``'s "which phase caused the p99 violations"
  report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TelemetryConfig",
    "CounterRegistry",
    "collect_counters",
    "Tracer",
    "PHASES",
    "chrome_trace",
    "write_chrome_trace",
    "trace_phase_records",
    "PhaseRecord",
    "attribute_slo",
    "SLOAttribution",
]

#: Span names of the request-lifecycle phases, in canonical display order.
#: ``queued`` is arrival → admission, ``prefill`` admission → prefill
#: completion, ``stall`` a preemption's eviction → readmission gap,
#: ``transfer`` a disaggregated KV migration's exposed delay, and ``decode``
#: everything from prefill completion (or adoption) to the final token.
PHASES = ("queued", "prefill", "stall", "transfer", "decode")

_US = 1e6  # seconds → Chrome trace-event microseconds


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TelemetryConfig:
    """What a :class:`Tracer` records.

    All recorders default on — construct a config only to turn one off or to
    change the sampling cadence.  ``sample_interval_s`` is *simulated* time:
    the time-series recorder emits at most one sample per interval, at
    iteration boundaries (the only instants the simulation state changes).
    """

    spans: bool = True
    iterations: bool = True
    timeseries: bool = True
    sample_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")


# ----------------------------------------------------------------------
# Counter registry
# ----------------------------------------------------------------------
class CounterRegistry:
    """Named numeric counters/gauges with a Prometheus-style text snapshot.

    A thin, deterministic mapping: names are ``snake_case`` strings, values
    plain ints or floats.  ``kind`` distinguishes monotonic ``counter``s
    (summable across replicas) from point-in-time ``gauge``s; :meth:`merge`
    sums both, which is the right aggregation for every counter this
    simulator emits (capacity gauges like ``kv_total_pages`` sum to the
    cluster-wide capacity).
    """

    def __init__(self) -> None:
        self._values: Dict[str, Union[int, float]] = {}
        self._kinds: Dict[str, str] = {}

    def set(self, name: str, value: Union[int, float],
            kind: str = "counter") -> None:
        """Set ``name`` to ``value`` (registering it on first use)."""
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unknown counter kind {kind!r}")
        self._values[name] = value
        self._kinds[name] = kind

    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to ``name`` (0-initialised on first use)."""
        self._values[name] = self._values.get(name, 0) + value
        self._kinds.setdefault(name, "counter")

    def get(self, name: str, default: Union[int, float] = 0
            ) -> Union[int, float]:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        # Value equality (exact, bitwise for floats) so results carrying a
        # registry still compare by content, e.g. in determinism tests.
        if not isinstance(other, CounterRegistry):
            return NotImplemented
        return (self._values == other._values
                and self._kinds == other._kinds)

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Name → value mapping, sorted by name (deterministic)."""
        return {name: self._values[name] for name in sorted(self._values)}

    def merge(self, other: "CounterRegistry") -> "CounterRegistry":
        """Sum ``other`` into this registry (cluster-level aggregation)."""
        for name in sorted(other._values):
            self._values[name] = self._values.get(name, 0) + other._values[name]
            self._kinds.setdefault(name, other._kinds[name])
        return self

    def prometheus_text(self, prefix: str = "repro_") -> str:
        """Prometheus exposition-format snapshot (sorted, deterministic)."""
        lines: List[str] = []
        for name in sorted(self._values):
            value = self._values[name]
            lines.append(f"# TYPE {prefix}{name} {self._kinds[name]}")
            rendered = repr(float(value)) if isinstance(value, float) \
                else str(value)
            lines.append(f"{prefix}{name} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")


def collect_counters(stepper) -> CounterRegistry:
    """Unified counter snapshot of one :class:`EngineStepper`'s run.

    Gathers every counter the run's components kept — scheduler admission
    instrumentation, the KV manager's page-conservation ledger, prefix-cache
    and speculation stats — into one registry, so nothing the human-readable
    summaries print is out of programmatic reach.  Works on any stepper,
    traced or untraced.
    """
    reg = CounterRegistry()
    reg.set("engine_iterations_total", stepper.iterations)
    reg.set("engine_generated_tokens_total", stepper.generated)
    reg.set("engine_busy_seconds_total", stepper.busy_s)
    reg.set("engine_clock_seconds", stepper.now, kind="gauge")
    reg.set("engine_peak_batch", stepper.peak_batch, kind="gauge")
    reg.set("kv_utilization_peak", stepper.kv_utilization_peak, kind="gauge")

    scheduler = stepper.scheduler
    reg.set("scheduler_admission_scanned_requests_total",
            scheduler.admission_scanned_requests)
    reg.set("scheduler_admission_fast_skips_total",
            scheduler.admission_fast_skips)
    reg.set("scheduler_preemptions_total", scheduler.num_preemptions)
    reg.set("scheduler_recomputed_prefill_tokens_total",
            scheduler.recomputed_prefill_tokens)
    reg.set("scheduler_finished_requests_total", len(scheduler.finished))
    reg.set("scheduler_waiting_requests", len(scheduler.waiting), kind="gauge")
    reg.set("scheduler_running_requests", len(scheduler.running), kind="gauge")
    reg.set("scheduler_tier_deferrals_total", scheduler.tier_deferrals)
    reg.set("scheduler_dropped_requests_total", len(scheduler.dropped))
    for tier in sorted(scheduler.drops_by_tier):
        reg.set(f"scheduler_dropped_tier_{tier}_total",
                scheduler.drops_by_tier[tier])

    kv = scheduler.kv_manager
    reg.set("kv_total_pages", kv.total_pages, kind="gauge")
    reg.set("kv_used_pages", kv.used_pages, kind="gauge")
    reg.set("kv_shared_pages", kv.shared_pages, kind="gauge")
    reg.set("kv_demoted_pages", kv.demoted_pages, kind="gauge")
    reg.set("kv_pages_allocated_total", kv.pages_allocated_total)
    reg.set("kv_pages_freed_total", kv.pages_freed_total)
    reg.set("kv_pages_transferred_in_total", kv.pages_transferred_in_total)
    reg.set("kv_pages_demoted_total", kv.pages_demoted_total)
    reg.set("kv_pages_promoted_total", kv.pages_promoted_total)
    reg.set("kv_double_free_total", kv.double_free_count)

    cache = stepper.prefix_cache
    if cache is not None:
        s = cache.stats
        reg.set("prefix_lookups_total", s.lookups)
        reg.set("prefix_hit_tokens_total", s.hit_tokens)
        reg.set("prefix_miss_tokens_total", s.miss_tokens)
        reg.set("prefix_inserted_pages_total", s.inserted_pages)
        reg.set("prefix_deduped_pages_total", s.deduped_pages)
        reg.set("prefix_evicted_pages_total", s.evicted_pages)
        reg.set("prefix_peak_cached_pages", s.peak_cached_pages, kind="gauge")
        reg.set("prefix_demoted_pages_total", s.demoted_pages_total)
        reg.set("prefix_promoted_pages_total", s.promoted_pages_total)
        reg.set("prefix_demoted_hit_tokens_total", s.demoted_hit_tokens)
        reg.set("prefix_peak_demoted_pages", s.peak_demoted_pages,
                kind="gauge")
    if stepper.spec is not None:
        s = stepper.spec.stats
        reg.set("spec_steps_total", s.spec_steps)
        reg.set("spec_proposed_tokens_total", s.proposed_tokens)
        reg.set("spec_accepted_tokens_total", s.accepted_tokens)
        reg.set("spec_committed_tokens_total", s.committed_tokens)
        reg.set("spec_draft_seconds_total", s.draft_time_s)
        reg.set("spec_verify_seconds_total", s.verify_time_s)
    # Multi-model multiplexing: the serving loop attaches each replica's
    # residency manager to exactly one of its steppers, so fleet-level
    # merges count every swap once.
    residency = getattr(stepper, "residency", None)
    if residency is not None:
        reg.set("multiplex_swap_ins_total", residency.swap_ins)
        reg.set("multiplex_swap_outs_total", residency.swap_outs)
        reg.set("multiplex_swap_seconds_total", residency.swap_in_s)
        reg.set("multiplex_resident_models", len(residency.resident),
                kind="gauge")
    return reg


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class Tracer:
    """Per-replica telemetry recorder, threaded through engine and scheduler.

    Hook methods are called by :class:`~repro.serving.engine.EngineStepper`
    and :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` at the
    lifecycle points they own; each appends one small tuple, so the traced
    hot path stays within the perf harness's overhead budget.  All
    timestamps are simulated seconds — the tracer never reads a wall clock,
    which is what makes traced runs deterministic.

    ``events`` is the raw span stream: ``(ts, kind, request_id, a, b)``
    tuples where ``a``/``b`` carry kind-specific payloads (chunk token
    counts, span end times, the finish-summary tuple).  ``iterations`` holds
    ``(t_start, t_end, prefill_tokens, num_chunks, decode_batch,
    committed_tokens, free_pages, kv_utilization, queue_depth)`` and
    ``series`` the sampled ``(t, queue_depth, running, kv_utilization,
    free_pages, finished)`` points.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 replica_index: int = 0,
                 replica_name: Optional[str] = None) -> None:
        self.config = config or TelemetryConfig()
        self.replica_index = replica_index
        self.replica_name = replica_name or f"replica{replica_index}"
        self.events: List[Tuple] = []
        self.iterations: List[Tuple] = []
        self.series: List[Tuple] = []
        #: Model weight swap-in windows ``(t0, t1, model)`` — multiplexed
        #: serving only; empty lists add nothing to exported traces.
        self.swaps: List[Tuple] = []
        self.counters: Optional[CounterRegistry] = None
        #: Largest simulated timestamp seen; closes dangling spans at export.
        self.clock = 0.0
        self._spans = self.config.spans
        self._next_sample = 0.0
        self._finished = 0

    # -- span hooks (scheduler/stepper call sites) ----------------------
    def request_queued(self, request) -> None:
        """Request entered a waiting queue (submission or migration landing)."""
        if self._spans:
            self.events.append((request.available_time, "queued",
                                request.request_id, request.prompt_len,
                                request.output_len))

    def request_admitted(self, request, now: float) -> None:
        """Admission granted pages and began this residency.

        ``a`` records the residency's prefill target (0 for a ``kv_ready``
        migration adoption, which skips prefill) so phase derivation knows
        whether a prefill span follows.
        """
        if self._spans:
            self.events.append((now, "admitted", request.request_id,
                                request.prefill_target,
                                request.cached_tokens))

    def prefill_chunk(self, request, tokens: int, t0: float,
                      t1: float) -> None:
        """One prefill chunk of ``tokens`` executed over ``[t0, t1]``."""
        if self._spans:
            self.events.append((t0, "chunk", request.request_id, tokens, t1))

    def prefill_done(self, request, now: float) -> None:
        if self._spans:
            self.events.append((now, "prefill_done", request.request_id,
                                request.prompt_len, 0))

    def first_token(self, request, now: float) -> None:
        if self._spans:
            self.events.append((now, "first_token", request.request_id, 0, 0))

    def request_preempted(self, request, now: float) -> None:
        if self._spans:
            self.events.append((now, "preempted", request.request_id,
                                request.preemptions, 0))

    def request_exported(self, request, now: float) -> None:
        """Prefill-role replica handed the request off for migration."""
        if self._spans:
            self.events.append((now, "exported", request.request_id, 0, 0))

    def request_dropped(self, request, now: float) -> None:
        """Tier-aware admission shed the request (terminal, never served)."""
        if self._spans:
            self.events.append((now, "dropped", request.request_id,
                                request.tier, 0))

    def transfer(self, request, start: float, end: float) -> None:
        """A KV migration bound for *this* replica occupies ``[start, end]``."""
        if self._spans:
            self.events.append((start, "transfer", request.request_id,
                                end, 0))

    def kv_dequant(self, request, now: float, tokens: int,
                   seconds: float) -> None:
        """Demoted-prefix dequantization charged at this request's prefill."""
        if self._spans:
            self.events.append((now, "dequant", request.request_id, tokens,
                                seconds))

    def model_swap(self, model: str, t0: float, t1: float) -> None:
        """A weight swap-in of ``model`` held the replica busy over
        ``[t0, t1]`` (multiplexed serving)."""
        if self._spans:
            self.swaps.append((t0, t1, model))
            if t1 > self.clock:
                self.clock = t1

    def request_finished(self, request, now: float) -> None:
        """Final token committed; capture the exact latency timestamps.

        The payload tuple carries the raw second-resolution times the
        metrics layer uses, so a trace consumer reconstructs TTFT/TPOT
        bitwise-identically to :class:`~repro.serving.metrics.RequestMetrics`.
        """
        if self._spans:
            self.events.append((now, "finished", request.request_id,
                                (request.arrival_time,
                                 request.first_token_time,
                                 request.finish_time,
                                 request.output_len,
                                 request.prompt_len,
                                 request.preemptions,
                                 request.migrations,
                                 request.transfer_delay_s), 0))

    # -- iteration + time-series hook -----------------------------------
    def iteration(self, t0: float, t1: float, prefill_tokens: int,
                  num_chunks: int, decode_batch: int, committed: int,
                  stepper) -> None:
        """Record one executed iteration ``[t0, t1]`` and sample the series."""
        if t1 > self.clock:
            self.clock = t1
        scheduler = stepper.scheduler
        self._finished = len(scheduler.finished)
        if self.config.iterations:
            kv = scheduler.kv_manager
            self.iterations.append((
                t0, t1, prefill_tokens, num_chunks, decode_batch, committed,
                kv.free_pages, kv.utilization(), len(scheduler.waiting)))
        if self.config.timeseries and t1 >= self._next_sample:
            kv = scheduler.kv_manager
            self.series.append((t1, len(scheduler.waiting),
                                len(scheduler.running), kv.utilization(),
                                kv.free_pages, self._finished))
            interval = self.config.sample_interval_s
            # Next grid point strictly after t1 (skip idle gaps in one step).
            self._next_sample = (t1 // interval + 1.0) * interval

    def finalize(self, stepper) -> None:
        """Snapshot the run's counters (called once, at result assembly)."""
        self.counters = collect_counters(stepper)
        if stepper.now > self.clock:
            self.clock = stepper.now

    # -- export ----------------------------------------------------------
    def _request_events(self) -> Dict[int, List[Tuple]]:
        by_request: Dict[int, List[Tuple]] = {}
        for event in self.events:
            by_request.setdefault(event[2], []).append(event)
        # Stable by timestamp: within one instant, preserve append order
        # (which is causal order inside a step).
        for events in by_request.values():
            events.sort(key=lambda e: e[0])
        return by_request

    def phase_spans(self, end_time: Optional[float] = None
                    ) -> Dict[int, List[Tuple[str, float, float]]]:
        """Derive each request's phase spans from its event stream.

        Returns ``request_id → [(phase, t_start, t_end), ...]`` with phases
        from :data:`PHASES`, in time order.  Requests still in flight when
        the run stopped have their open phase closed at ``end_time``
        (default: the tracer's final clock).
        """
        horizon = self.clock if end_time is None else end_time
        spans: Dict[int, List[Tuple[str, float, float]]] = {}
        for rid, events in self._request_events().items():
            out: List[Tuple[str, float, float]] = []
            phase: Optional[str] = None
            since = 0.0
            for event in events:
                ts, kind = event[0], event[1]
                if kind == "transfer":
                    out.append(("transfer", ts, event[3]))
                    continue
                if kind in ("chunk", "first_token", "dequant"):
                    continue
                if kind == "queued":
                    phase, since = "queued", ts
                elif kind == "admitted":
                    if phase is not None:
                        out.append((phase, since, ts))
                    # A zero prefill target means the KV state was adopted
                    # from a transfer: decode starts immediately.
                    phase = "prefill" if event[3] > 0 else "decode"
                    since = ts
                elif kind == "prefill_done":
                    if phase is not None:
                        out.append((phase, since, ts))
                    phase, since = "decode", ts
                elif kind == "preempted":
                    if phase is not None:
                        out.append((phase, since, ts))
                    phase, since = "stall", ts
                elif kind in ("exported", "finished", "dropped"):
                    if phase is not None:
                        out.append((phase, since, ts))
                    phase = None
            if phase is not None:
                out.append((phase, since, max(horizon, since)))
            spans[rid] = out
        return spans

    def chrome_events(self, end_time: Optional[float] = None) -> List[Dict]:
        """This replica's Chrome trace events (see :func:`chrome_trace`)."""
        horizon = self.clock if end_time is None else end_time
        pid = self.replica_index
        events: List[Dict] = [
            {"ph": "M", "pid": pid, "tid": 0, "ts": 0, "cat": "__metadata",
             "name": "process_name", "args": {"name": self.replica_name}},
            {"ph": "M", "pid": pid, "tid": 0, "ts": 0, "cat": "__metadata",
             "name": "thread_name", "args": {"name": "requests"}},
            {"ph": "M", "pid": pid, "tid": 1, "ts": 0, "cat": "__metadata",
             "name": "thread_name", "args": {"name": "iterations"}},
        ]
        for it in self.iterations:
            (t0, t1, prefill_tokens, num_chunks, decode_batch, committed,
             free_pages, kv_util, queue_depth) = it
            events.append({
                "ph": "X", "pid": pid, "tid": 1, "ts": t0 * _US,
                "dur": (t1 - t0) * _US, "cat": "iteration", "name": "iter",
                "args": {"prefill_tokens": prefill_tokens,
                         "prefill_chunks": num_chunks,
                         "decode_batch": decode_batch,
                         "committed_tokens": committed,
                         "free_pages": free_pages,
                         "kv_utilization": kv_util,
                         "queue_depth": queue_depth}})
        # Weight swap-in windows share the GPU-timeline thread with the
        # iterations they delayed; absent (every single-model run) the
        # exported trace is byte-identical to the pre-multiplexing format.
        for t0, t1, model in self.swaps:
            events.append({
                "ph": "X", "pid": pid, "tid": 1, "ts": t0 * _US,
                "dur": (t1 - t0) * _US, "cat": "swap",
                "name": f"swap:{model}",
                "args": {"model": model, "seconds": t1 - t0}})
        for t, queue_depth, running, kv_util, free_pages, finished in self.series:
            for name, value in (("queue_depth", queue_depth),
                                ("running", running),
                                ("kv_utilization", kv_util),
                                ("free_pages", free_pages),
                                ("finished", finished)):
                events.append({"ph": "C", "pid": pid, "tid": 1, "ts": t * _US,
                               "cat": "timeseries", "name": name,
                               "args": {"value": value}})
        by_request = self._request_events()
        phase_spans = self.phase_spans(end_time=horizon)
        for rid in sorted(by_request):
            req_events = by_request[rid]
            rid_str = str(rid)
            name = f"req {rid}"
            first_ts = req_events[0][0]
            finish_payload = None
            last_ts = first_ts
            for event in req_events:
                ts, kind = event[0], event[1]
                last_ts = max(last_ts, ts)
                if kind == "finished":
                    finish_payload = event[3]
                elif kind == "transfer":
                    last_ts = max(last_ts, event[3])
            end_ts = last_ts
            open_ended = finish_payload is None and not any(
                e[1] in ("exported", "dropped") for e in req_events)
            if open_ended:
                end_ts = max(last_ts, horizon)
            events.append({"ph": "b", "pid": pid, "tid": 0, "cat": "request",
                           "id": rid_str, "ts": first_ts * _US, "name": name,
                           "args": {"prompt_len": req_events[0][3]
                                    if req_events[0][1] == "queued" else 0}})
            for phase, t0, t1 in phase_spans[rid]:
                events.append({"ph": "b", "pid": pid, "tid": 0,
                               "cat": "request", "id": rid_str,
                               "ts": t0 * _US, "name": phase})
                events.append({"ph": "e", "pid": pid, "tid": 0,
                               "cat": "request", "id": rid_str,
                               "ts": t1 * _US, "name": phase})
            for event in req_events:
                ts, kind = event[0], event[1]
                if kind == "first_token":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "first_token"})
                elif kind == "preempted":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "preempted",
                                   "args": {"count": event[3]}})
                elif kind == "exported":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "exported"})
                elif kind == "dropped":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "dropped",
                                   "args": {"tier": event[3]}})
                elif kind == "dequant":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "kv_dequant",
                                   "args": {"tokens": event[3],
                                            "seconds": event[4]}})
                elif kind == "chunk":
                    events.append({"ph": "n", "pid": pid, "tid": 0,
                                   "cat": "request", "id": rid_str,
                                   "ts": ts * _US, "name": "prefill_chunk",
                                   "args": {"tokens": event[3],
                                            "end_ts": event[4] * _US}})
            end_args: Dict[str, object] = {}
            if finish_payload is not None:
                (arrival, first, finish, output_len, prompt_len, preempts,
                 migrations, transfer_delay) = finish_payload
                end_args = {"arrival_time_s": arrival,
                            "first_token_time_s": first,
                            "finish_time_s": finish,
                            "output_len": output_len,
                            "prompt_len": prompt_len,
                            "preemptions": preempts,
                            "migrations": migrations,
                            "transfer_delay_s": transfer_delay}
            elif open_ended:
                end_args = {"unfinished": True}
            elif any(e[1] == "dropped" for e in req_events):
                end_args = {"dropped": True}
            events.append({"ph": "e", "pid": pid, "tid": 0, "cat": "request",
                           "id": rid_str, "ts": end_ts * _US, "name": name,
                           "args": end_args})
        return events

    def chrome_trace(self) -> Dict:
        """Single-replica convenience wrapper around :func:`chrome_trace`."""
        return chrome_trace([self])


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace(tracers: Sequence[Tracer]) -> Dict:
    """Merge per-replica tracers into one Chrome trace-event JSON object.

    Replicas become trace *processes* (their ``replica_index`` is the pid),
    requests async spans (with nested :data:`PHASES` sub-spans and instant
    markers), iterations duration slices on each process's ``iterations``
    thread, and sampled time series counter tracks.  All tracers share the
    cluster's simulated clock, so merging is a deterministic sort — two
    identical runs serialize to byte-identical files.
    """
    if not tracers:
        raise ValueError("chrome_trace needs at least one tracer")
    horizon = max(t.clock for t in tracers)
    events: List[Dict] = []
    for tracer in tracers:
        events.extend(tracer.chrome_events(end_time=horizon))
    # Metadata first, then global time order; pid/name break ties so the
    # ordering is total and stable across runs.
    events.sort(key=lambda e: (e["ph"] != "M", e["ts"], e["pid"],
                               e.get("id", ""), e["name"]))
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(path_or_file: Union[str, IO[str]],
                       tracers: Union[Tracer, Sequence[Tracer], Dict]) -> None:
    """Serialize a trace to ``path_or_file`` (deterministic byte output).

    Accepts a single tracer, a sequence of tracers, or an already-built
    trace dict.  Keys are sorted and floats rendered by ``repr`` (exact
    round-trip), so identical runs write identical bytes.
    """
    if isinstance(tracers, Tracer):
        trace = chrome_trace([tracers])
    elif isinstance(tracers, dict):
        trace = tracers
    else:
        trace = chrome_trace(list(tracers))
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(trace, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
    else:
        json.dump(trace, path_or_file, sort_keys=True, separators=(",", ":"))
        path_or_file.write("\n")


# ----------------------------------------------------------------------
# Trace consumption: phase records + SLO attribution
# ----------------------------------------------------------------------
@dataclass
class PhaseRecord:
    """One finished request reconstructed from a Chrome trace.

    ``ttft``/``tpot``/``e2e`` are computed from the raw second-resolution
    timestamps the closing span event carries, with the same expressions as
    :class:`~repro.serving.metrics.RequestMetrics` — bitwise-identical to
    the live metrics.  ``phase_s`` attributes the TTFT window
    ``[arrival, first_token]`` to the :data:`PHASES` it overlapped.
    """

    request_id: int
    replica: int
    arrival_time: float
    first_token_time: float
    finish_time: float
    prompt_len: int
    output_len: int
    preemptions: int
    migrations: int
    transfer_delay_s: float
    phase_s: Dict[str, float] = field(default_factory=dict)

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        if self.output_len <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.output_len - 1)

    @property
    def e2e_latency(self) -> float:
        return self.finish_time - self.arrival_time

    def meets_slo(self, ttft_slo_s: float, tpot_slo_s: float) -> bool:
        if self.ttft > ttft_slo_s:
            return False
        return self.output_len <= 1 or self.tpot <= tpot_slo_s


def trace_phase_records(trace: Dict) -> List[PhaseRecord]:
    """Reconstruct every finished request from a Chrome trace dict.

    Walks the ``request``-category async spans: the closing event named
    ``req <id>`` carries the exact latency timestamps; the nested phase
    spans (possibly spread over several replicas for migrated requests) are
    clipped to the TTFT window ``[arrival, first_token]`` and accumulated
    into per-phase seconds.  Spans never covered by a phase (e.g. the time
    between routing and queue entry) land in no bucket; the report exposes
    the residual as ``other``.
    """
    finish_args: Dict[str, Tuple[int, Dict]] = {}
    spans: Dict[str, List[Tuple[str, float, float, int]]] = {}
    open_spans: Dict[Tuple[int, str, str], List[Tuple[str, float]]] = {}
    for event in trace.get("traceEvents", []):
        if event.get("cat") != "request":
            continue
        rid = event["id"]
        ph = event["ph"]
        name = event["name"]
        if ph == "b" and name in PHASES:
            open_spans.setdefault((event["pid"], rid, name), []).append(
                (name, event["ts"]))
        elif ph == "e" and name in PHASES:
            stack = open_spans.get((event["pid"], rid, name))
            if stack:
                phase, t0 = stack.pop()
                spans.setdefault(rid, []).append(
                    (phase, t0 / _US, event["ts"] / _US, event["pid"]))
        elif ph == "e" and name.startswith("req "):
            args = event.get("args") or {}
            if "finish_time_s" in args:
                finish_args[rid] = (event["pid"], args)
    records: List[PhaseRecord] = []
    for rid, (pid, args) in sorted(finish_args.items(),
                                   key=lambda kv: int(kv[0])):
        record = PhaseRecord(
            request_id=int(rid), replica=pid,
            arrival_time=args["arrival_time_s"],
            first_token_time=args["first_token_time_s"],
            finish_time=args["finish_time_s"],
            prompt_len=args.get("prompt_len", 0),
            output_len=args.get("output_len", 0),
            preemptions=args.get("preemptions", 0),
            migrations=args.get("migrations", 0),
            transfer_delay_s=args.get("transfer_delay_s", 0.0))
        window0, window1 = record.arrival_time, record.first_token_time
        phase_s = {phase: 0.0 for phase in PHASES}
        for phase, t0, t1, _pid in spans.get(rid, []):
            overlap = min(t1, window1) - max(t0, window0)
            if overlap > 0:
                phase_s[phase] += overlap
        record.phase_s = phase_s
        records.append(record)
    return records


@dataclass
class SLOAttribution:
    """Where the TTFT budget went: all requests vs. the SLO violators."""

    ttft_slo_s: float
    tpot_slo_s: float
    records: List[PhaseRecord]
    violators: List[PhaseRecord]

    @property
    def attainment(self) -> float:
        if not self.records:
            return 0.0
        return 1.0 - len(self.violators) / len(self.records)

    @staticmethod
    def _mean_phases(records: Sequence[PhaseRecord]) -> Dict[str, float]:
        out = {phase: 0.0 for phase in PHASES}
        out["other"] = 0.0
        if not records:
            return out
        for record in records:
            accounted = 0.0
            for phase in PHASES:
                seconds = record.phase_s.get(phase, 0.0)
                out[phase] += seconds
                accounted += seconds
            out["other"] += max(0.0, record.ttft - accounted)
        return {phase: total / len(records) for phase, total in out.items()}

    def mean_phase_seconds(self, violators_only: bool = False
                           ) -> Dict[str, float]:
        """Mean per-phase TTFT seconds over all requests or the violators."""
        return self._mean_phases(self.violators if violators_only
                                 else self.records)

    def dominant_phase(self) -> Optional[str]:
        """The phase eating the largest share of the violators' TTFT."""
        if not self.violators:
            return None
        means = self.mean_phase_seconds(violators_only=True)
        return max(means, key=lambda phase: (means[phase], phase))

    def worst(self, n: int = 5) -> List[PhaseRecord]:
        """The ``n`` requests with the largest TTFT."""
        return sorted(self.records, key=lambda r: (-r.ttft, r.request_id))[:n]


def attribute_slo(trace: Dict, ttft_slo_s: float,
                  tpot_slo_s: float) -> SLOAttribution:
    """Answer "which phase caused the SLO violations" for one saved trace."""
    records = trace_phase_records(trace)
    violators = [r for r in records
                 if not r.meets_slo(ttft_slo_s, tpot_slo_s)]
    return SLOAttribution(ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s,
                          records=records, violators=violators)
