"""Integer format descriptors.

The paper manipulates four integer formats: signed INT8 weights/activations,
unsigned UINT4 second-level weights and zero points, unsigned UINT8
second-level scales, and signed INT4 (only used by the W4A4 baselines).
``IntFormat`` captures the representable range and the NumPy storage dtype of
each format so that the rest of the code never hard-codes magic constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IntFormat",
    "INT4",
    "UINT4",
    "INT8",
    "UINT8",
    "PROTECTIVE_INT8",
    "FP16",
]


@dataclass(frozen=True)
class IntFormat:
    """Descriptor of an integer quantization format.

    Attributes
    ----------
    bits:
        Number of bits in the format.
    signed:
        Whether the format is two's-complement signed.
    qmin, qmax:
        Smallest / largest representable value.  For *symmetric* signed
        formats the codomain is usually restricted to ``[-qmax, qmax]``;
        ``symmetric_qmax`` exposes that bound.
    storage_dtype:
        NumPy dtype used to hold values of this format.  Sub-byte formats are
        stored one value per byte unless explicitly packed by
        :mod:`repro.quant.packing`.
    """

    name: str
    bits: int
    signed: bool
    qmin: int
    qmax: int
    storage_dtype: np.dtype

    @property
    def levels(self) -> int:
        """Number of representable levels."""
        return self.qmax - self.qmin + 1

    @property
    def symmetric_qmax(self) -> int:
        """Largest magnitude used for symmetric quantization."""
        return self.qmax if not self.signed else min(self.qmax, -self.qmin - 1)

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clip ``values`` into the representable range (keeps dtype)."""
        return np.clip(values, self.qmin, self.qmax)

    def contains(self, values: np.ndarray) -> bool:
        """Return ``True`` iff every element is representable in this format."""
        v = np.asarray(values)
        if v.size == 0:
            return True
        return bool((v.min() >= self.qmin) and (v.max() <= self.qmax))

    def astype(self, values: np.ndarray) -> np.ndarray:
        """Cast ``values`` to the storage dtype after range validation."""
        v = np.asarray(values)
        if not self.contains(v):
            raise ValueError(
                f"values outside {self.name} range [{self.qmin}, {self.qmax}]: "
                f"observed [{v.min()}, {v.max()}]"
            )
        return v.astype(self.storage_dtype)


def _fmt(name: str, bits: int, signed: bool, dtype: type) -> IntFormat:
    if signed:
        qmin, qmax = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        qmin, qmax = 0, (1 << bits) - 1
    return IntFormat(name=name, bits=bits, signed=signed, qmin=qmin, qmax=qmax,
                     storage_dtype=np.dtype(dtype))


#: Signed 4-bit integers, [-8, 7].  Used by the W4A4 baselines (Atom, QuaRot).
INT4 = _fmt("int4", 4, True, np.int8)

#: Unsigned 4-bit integers, [0, 15].  QoQ second-level weights and zero points.
UINT4 = _fmt("uint4", 4, False, np.uint8)

#: Signed 8-bit integers, [-128, 127].  Activations and first-level weights.
INT8 = _fmt("int8", 8, True, np.int8)

#: Unsigned 8-bit integers, [0, 255].  QoQ second-level scales.
UINT8 = _fmt("uint8", 8, False, np.uint8)

#: The *protective* INT8 range of progressive group quantization (Section 4.1):
#: restricting level-1 symmetric quantization to [-119, 119] guarantees that
#: level-2 dequantization never produces a value outside [-128, 127].
PROTECTIVE_INT8 = IntFormat(
    name="int8_protective",
    bits=8,
    signed=True,
    qmin=-119,
    qmax=119,
    storage_dtype=np.dtype(np.int8),
)

#: Half precision, used for first-level scales and all floating-point
#: activations crossing kernel boundaries in QServe.
FP16 = np.dtype(np.float16)
