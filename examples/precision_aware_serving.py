"""Precision-aware serving walkthrough.

Precision is a *serving dimension*, not a build-time constant.  Two levers:

1. **Heterogeneous mixed-precision fleets** — run an FP16 latency/quality
   tier and a W4A8KV4 throughput tier behind one router.  Interactive
   requests carrying a quality floor (``precision_floor_bits``) must land on
   a replica whose ``min_precision_bits`` satisfies it, and the SLO
   accounting counts a floor violation as a failed request exactly like a
   latency violation.  An all-KV4 fleet is fast but fails every floored
   request; an all-FP16 fleet serves every floor but saturates on batch
   decode.  The precision-aware router splits traffic so the mixed fleet
   escapes both failure modes.
2. **Dynamic KV-cache precision under memory pressure** — instead of
   LRU-evicting cold prefix-cache blocks, demote them to a 4-bit tier first
   (QServe's KV4 format): ~3/4 of the page capacity comes back while the
   block stays hittable, at the price of a dequant pass when it is re-hit.

Three sections:

1. **Fleet sweep** — FP16 x4 vs W4A8KV4 x4 vs mixed 2+2 over rising
   arrival rates: the SLO-goodput frontier.
2. **Router view** — what the precision-aware router actually does with the
   mixed fleet's traffic (per-replica splits, violations).
3. **KV demotion** — chat traffic under a tight HBM budget: plain LRU vs
   demote-before-evict hit rates, evictions and dequant charges.

Run with:  python examples/precision_aware_serving.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    get_system,
    make_chat_workload,
    make_mixed_precision_workload,
)

#: Latency SLO shared by every fleet; precision floors join it per request.
TTFT_SLO_S, TPOT_SLO_S = 0.5, 0.05

FLEETS = {
    "fp16 x4": ["trt-fp16"] * 4,
    "w4a8kv4 x4": ["qserve-w4a8kv4-chn"] * 4,
    "mixed 2+2": ["trt-fp16", "trt-fp16",
                  "qserve-w4a8kv4-chn", "qserve-w4a8kv4-chn"],
}


def _cluster(model_name: str, systems) -> ClusterEngine:
    return ClusterEngine(get_config(model_name), A100, get_system("trt-fp16"),
                         num_replicas=len(systems), systems=systems)


def fleet_sweep(model_name: str) -> None:
    rows = []
    for rate in (4.0, 8.0, 12.0, 16.0, 20.0):
        row = [f"{rate:.0f} req/s"]
        for name, systems in FLEETS.items():
            workload = make_mixed_precision_workload(num_requests=120,
                                                     arrival_rate=rate, seed=1)
            router = ("precision-aware" if name == "mixed 2+2"
                      else "least-outstanding")
            result = _cluster(model_name, systems).serve(workload,
                                                         router=router)
            row.append(round(result.slo_goodput(TTFT_SLO_S, TPOT_SLO_S), 2))
        rows.append(row)
    print(f"SLO-goodput frontier for {model_name} on 4x A100 "
          f"(35% interactive traffic with an FP16 quality floor, "
          f"TTFT < {TTFT_SLO_S:.1f} s, TPOT < {TPOT_SLO_S * 1e3:.0f} ms):\n")
    print(format_table(["Arrival rate"] + list(FLEETS), rows))
    print("\nThe all-KV4 fleet is capped by precision violations (every "
          "floored request\nfails its quality SLO); the all-FP16 fleet "
          "saturates on batch decode as load\nrises.  The mixed fleet routes "
          "each tier to the replicas that can serve it and\ndominates the "
          "frontier at every rate.")


def router_view(model_name: str) -> None:
    workload = make_mixed_precision_workload(num_requests=120,
                                             arrival_rate=12.0, seed=1)
    rows = []
    for name, systems in FLEETS.items():
        router = ("precision-aware" if name == "mixed 2+2"
                  else "least-outstanding")
        result = _cluster(model_name, systems).serve(workload.copy_fresh(),
                                                     router=router)
        m = result.metrics
        rows.append([name,
                     str(result.requests_per_replica),
                     m.precision_violations,
                     round(m.ttft.p95 * 1e3, 1),
                     round(m.slo_attainment(TTFT_SLO_S, TPOT_SLO_S) * 100, 1)])
    print("\nRouter view at 12 req/s — where the traffic lands and what "
          "fails:\n")
    print(format_table(
        ["Fleet", "Requests per replica", "Precision violations",
         "TTFT p95 (ms)", "SLO attainment (%)"], rows))
    print("\nIn the mixed fleet the first two replicas are FP16: the router "
          "pins the\nquality-floored interactive tier there and sends the "
          "long-prompt batch tier to\nthe KV4 replicas, whose 4-bit KV cache "
          "holds ~4x the pages per GiB.")


def kv_demotion(model_name: str) -> None:
    engine = ServingEngine(get_config(model_name), A100,
                           SYSTEM_PRESETS["trt-fp16"], max_seq_len=4096)
    # Simulate a tight HBM budget: 96 pages of KV instead of tens of GiB.
    capacity = 96 * engine.new_kv_manager().bytes_per_page()
    engine.kv_capacity_bytes = lambda: capacity
    workload = make_chat_workload(num_sessions=8, turns_per_session=4,
                                  system_prompt_len=192, user_len=32,
                                  assistant_len=64, think_time_s=6.0, seed=11)
    rows = []
    for preset in ("prefix", "prefix-demote"):
        result = engine.serve(workload.copy_fresh(), max_num_seqs=3,
                              scheduling=SCHEDULING_PRESETS[preset])
        stats = result.prefix_stats
        rows.append([preset,
                     round(result.cache_hit_rate * 100, 1),
                     stats.evicted_pages,
                     stats.demoted_pages_total,
                     stats.demoted_hit_tokens,
                     round(result.metrics.ttft.mean * 1e3, 1)])
    print(f"\nKV-cache demotion under memory pressure ({model_name}, FP16 KV, "
          f"96-page budget,\nmulti-turn chat):\n")
    print(format_table(
        ["Scheduling", "Hit rate (%)", "Evicted pages", "Demoted pages",
         "Demoted-hit tokens", "TTFT mean (ms)"], rows))
    print("\nDemoting a cold FP16 block to the 4-bit tier reclaims ~3/4 of "
          "its page while\nkeeping it hittable; re-hits pay a dequant pass "
          "(priced through the Fig. 18\nkernel model) instead of a full "
          "prefill of the lost prefix.")


def main(model_name: str = "llama-2-7b") -> None:
    fleet_sweep(model_name)
    router_view(model_name)
    kv_demotion(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
