"""Multi-replica cluster simulator: routers + aggregated serving results.

One :class:`repro.serving.engine.ServingEngine` models a single model
replica (possibly tensor-parallel across several GPUs).  Production
deployments run many such replicas behind a load balancer; this module
simulates that tier.  :class:`ClusterEngine` drives N replica
:class:`~repro.serving.engine.EngineStepper` loops against one shared clock:
requests are dispatched in arrival order, every replica is advanced to the
arrival instant first, and the pluggable :class:`Router` then picks a
replica using the queue state *at that moment* — exactly the information a
real load balancer has.

Routers shipped by default:

* ``round-robin`` — cyclic assignment, blind to load.  The baseline every
  cluster study compares against.
* ``least-outstanding`` — the replica with the fewest unfinished requests;
  the classic least-outstanding-requests (LOR) balancer.
* ``shortest-queue`` — the replica owing the fewest pending prefill tokens,
  a length-aware refinement of LOR for LLM serving where a single 3k-token
  prompt costs far more than several short ones.
* ``prefix-affinity`` — cache-locality routing for prefix-cached clusters:
  probe every replica's prefix cache for the request's prompt and prefer the
  warmest one (load-penalized), keeping same-prefix sessions on the replica
  that already holds their KV blocks; cold requests stick by session so a
  conversation lands on one replica from its first turn.
* ``disaggregated`` — the prefill/decode split's router: arrivals go to the
  prefill-capable replica owing the fewest pending prefill tokens, and on
  prefill completion the request migrates to the least-loaded decode
  replica.
* ``precision-aware`` — the heterogeneous fleet's router: quality-floored
  and short interactive requests go to the highest-precision replica group,
  throughput traffic to the lowest-precision (cheapest) group,
  least-outstanding within a group.  Degrades to least-outstanding on a
  homogeneous fleet.
* ``model-aware`` — the multiplexed fleet's router: prefer a replica where
  the request's model is already warm, falling back to the least-loaded
  replica worth warming by scoring every candidate
  ``swap_cost_s + queue_cost_s * outstanding``.  Degrades to
  least-outstanding on single-model fleets.

**Multiplexed serving** (``serve(..., multiplex=MultiplexConfig(...))``)
puts several models on every replica: a
:class:`~repro.serving.multiplex.ModelResidency` accounts each model's
weight + workspace footprint against HBM next to the statically carved
per-model KV pools, swaps weights LRU when the residency limit is hit, and
prices each swap-in like an autoscaler cold start — the weights cross the
host link as a replica-busy window on the shared clock.  Co-resident
models are serialized on one GPU timeline per replica; prefix caches are
namespaced by model so no block is ever adopted across models.

**Disaggregated serving** (DistServe/Splitwise-style) gives each replica a
*role*: ``prefill`` replicas run prompt processing only and export every
request the instant its prefill completes, ``decode`` replicas adopt the
transferred KV state and generate tokens, and ``mixed`` replicas (the
default) do both — a cluster of only mixed replicas is bitwise-identical to
the pre-disaggregation engine.  The handoff is priced by a KV-transfer cost
model: the prompt's KV bytes (minus whatever prefix the target replica
already caches) cross an :class:`~repro.gpu.specs.InterconnectSpec` link,
overlappable with the first decode iteration (layer-by-layer streaming), and
the exposed delay lands on the request's TTFT and is reported per request.

Per-replica :class:`~repro.serving.engine.ServingResult`s are aggregated
into a :class:`ClusterResult` with cluster-level throughput (makespan-based),
merged latency percentiles, SLO goodput and — for disaggregated runs —
per-role utilization, migration counts and transfer-delay percentiles.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.gpu.specs import GPUSpec, InterconnectSpec, NVLINK
from repro.model.config import ModelConfig
from repro.serving.autoscaler import (
    AutoscaleReport,
    AutoscalerConfig,
    FleetSnapshot,
    ReactiveAutoscaler,
    ScalingEvent,
)
from repro.serving.engine import EngineStepper, ServingEngine, ServingResult
from repro.serving.metrics import LatencySummary, ServingMetrics
from repro.serving.multiplex import (
    ModelResidency,
    MultiplexConfig,
    MultiplexReport,
)
from repro.serving.parallel import ParallelConfig
from repro.serving.policies import SchedulingConfig
from repro.serving.precision import SystemConfig, get_system
from repro.serving.request import Request, RequestState, Workload
from repro.serving.speculative import SpeculativeConfig
from repro.serving.telemetry import (
    CounterRegistry,
    TelemetryConfig,
    Tracer,
    chrome_trace,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "ShortestQueueRouter",
    "PrefixAffinityRouter",
    "DisaggregatedRouter",
    "PrecisionAwareRouter",
    "ModelAwareRouter",
    "ROUTERS",
    "get_router",
    "REPLICA_ROLES",
    "ClusterResult",
    "ClusterEngine",
]

#: Valid replica roles for disaggregated serving.
REPLICA_ROLES = ("prefill", "decode", "mixed")


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class Router(abc.ABC):
    """Chooses the replica each arriving request is dispatched to.

    ``route`` sees the replica steppers with their simulation advanced to
    the request's arrival time, so queue-state views
    (:attr:`EngineStepper.outstanding_requests`,
    :attr:`EngineStepper.pending_prefill_tokens`) reflect what a load
    balancer would observe at that instant.  Ties break toward the lowest
    replica index, keeping every router deterministic.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        """Index of the replica that should serve ``request``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cyclic assignment, blind to per-replica load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastOutstandingRouter(Router):
    """Send to the replica with the fewest unfinished requests."""

    name = "least-outstanding"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].outstanding_requests, i))


class ShortestQueueRouter(Router):
    """Send to the replica owing the fewest pending prefill tokens.

    Counting tokens instead of requests makes the router robust to
    heavy-tailed prompt lengths: one 3k-token prompt weighs as much as many
    short chats.  Outstanding requests break ties so decode-heavy backlogs
    still register.
    """

    name = "shortest-queue"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_prefill_tokens,
                                  replicas[i].outstanding_requests, i))


class PrefixAffinityRouter(Router):
    """Send same-prefix sessions to the replica holding their KV cache.

    Each arriving request probes every replica's prefix cache
    (:meth:`EngineStepper.cached_prefix_tokens`) and is routed to the
    replica with the best ``hit_tokens - load_penalty_tokens * outstanding``
    score, so cache affinity wins until the warm replica's queue grows
    ``load_penalty_tokens`` worth of backlog per waiting request.  Requests
    that hit nowhere (first turns, caching disabled) are routed
    least-outstanding but *stick* by session key — the first two prompt
    segments, i.e. (system prompt, first user message) — so a session's
    later turns find their history where the first turn built it.
    """

    name = "prefix-affinity"

    def __init__(self, load_penalty_tokens: int = 512) -> None:
        if load_penalty_tokens < 0:
            raise ValueError("load_penalty_tokens must be non-negative")
        self.load_penalty_tokens = load_penalty_tokens
        self._sticky: Dict[tuple, int] = {}

    @staticmethod
    def _session_key(request: Request) -> Optional[tuple]:
        if not request.prompt_segments:
            return None
        return tuple(request.prompt_segments[:2])

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        probes = [replica.cached_prefix_tokens(request) for replica in replicas]
        key = self._session_key(request)
        if max(probes) > 0:
            index = min(range(len(replicas)),
                        key=lambda i: (-(probes[i] - self.load_penalty_tokens
                                         * replicas[i].outstanding_requests), i))
        elif key is not None and key in self._sticky:
            index = self._sticky[key]
        else:
            index = min(range(len(replicas)),
                        key=lambda i: (replicas[i].outstanding_requests, i))
        if key is not None:
            self._sticky[key] = index
        return index


class DisaggregatedRouter(Router):
    """Router for prefill/decode-split clusters.

    ``route`` places *arrivals*: it sees only the prefill-capable replicas
    (roles ``prefill`` and ``mixed``) and picks the one owing the fewest
    pending prefill tokens — prompt work is what a prefill tier queues on.
    ``route_decode`` places *migrations*: among the decode-role replicas it
    picks the least-loaded one (fewest outstanding requests, pending-token
    tiebreak), counting in-flight transfers already bound for a replica so a
    burst of simultaneous prefill completions cannot dogpile one target.
    Outside a disaggregated cluster it degrades to shortest-queue routing.
    """

    name = "disaggregated"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].pending_prefill_tokens,
                                  replicas[i].outstanding_requests, i))

    def route_decode(self, request: Request,
                     replicas: Sequence[EngineStepper]) -> int:
        """Index of the decode replica a finished prefill should migrate to."""
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].outstanding_requests,
                                  replicas[i].pending_prefill_tokens, i))


class PrecisionAwareRouter(Router):
    """Route by precision tier in a heterogeneous mixed-precision fleet.

    Replicas are grouped by their system preset's
    :attr:`~repro.serving.precision.SystemConfig.min_precision_bits`.
    Requests carrying a quality floor (``precision_floor_bits > 0``) go to
    the replicas that satisfy it; short interactive requests (total work at
    most ``interactive_tokens`` prompt+output tokens) go to the
    highest-precision group, whose replicas are also the fastest per token
    to first byte under light load in a mixed FP16 + W4A8KV4 fleet's
    latency tier; everything else — throughput traffic — lands on the
    lowest-precision (cheapest) group.  Within a group the least-outstanding
    replica wins, lowest index on ties.  On a homogeneous fleet every group
    is the whole fleet, so the router degrades to least-outstanding exactly.
    """

    name = "precision-aware"

    def __init__(self, interactive_tokens: int = 256) -> None:
        if interactive_tokens < 0:
            raise ValueError("interactive_tokens must be non-negative")
        self.interactive_tokens = interactive_tokens

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        bits = [replica.engine.system.min_precision_bits
                for replica in replicas]
        hi, lo = max(bits), min(bits)
        if hi == lo:
            group = range(len(replicas))
        elif request.precision_floor_bits > 0.0:
            group = [i for i in range(len(replicas))
                     if bits[i] >= request.precision_floor_bits]
            if not group:
                # No replica meets the floor; fail toward the best quality
                # available rather than refusing to route.
                group = [i for i in range(len(replicas)) if bits[i] == hi]
        elif request.prompt_len + request.output_len <= self.interactive_tokens:
            group = [i for i in range(len(replicas)) if bits[i] == hi]
        else:
            group = [i for i in range(len(replicas)) if bits[i] == lo]
        return min(group,
                   key=lambda i: (replicas[i].outstanding_requests, i))


class ModelAwareRouter(Router):
    """Route to a replica where the request's model is already warm.

    On a multiplexed fleet every candidate replica is scored as::

        swap_cost_s(model) + queue_cost_s * outstanding_requests

    A warm replica has zero swap cost, so warm replicas win unless their
    queues are deep enough that paying for a swap-in elsewhere is cheaper
    than waiting — the "least-loaded replica worth warming" fallback falls
    out of the same rule.  Ties break toward the lowest replica index.  On
    fleets whose replicas expose no residency manager (plain single-model
    replicas), the router degrades to least-outstanding exactly.
    """

    name = "model-aware"

    def route(self, request: Request, replicas: Sequence[EngineStepper]) -> int:
        if not hasattr(replicas[0], "swap_cost_s"):
            return min(range(len(replicas)),
                       key=lambda i: (replicas[i].outstanding_requests, i))
        model = replicas[0].resolve_model(request)
        queue_cost = replicas[0].queue_cost_s
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].swap_cost_s(model)
                           + queue_cost * replicas[i].outstanding_requests,
                           i))


ROUTERS: Dict[str, Type[Router]] = {
    cls.name: cls
    for cls in (RoundRobinRouter, LeastOutstandingRouter, ShortestQueueRouter,
                PrefixAffinityRouter, DisaggregatedRouter,
                PrecisionAwareRouter, ModelAwareRouter)
}


def get_router(name: str) -> Router:
    """Instantiate a router by registry name."""
    try:
        return ROUTERS[name]()
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise KeyError(f"unknown router {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Cluster result
# ----------------------------------------------------------------------
@dataclass
class ClusterResult:
    """Aggregate outcome of serving one workload on an N-replica cluster."""

    replica_results: List[ServingResult]
    #: Number of requests each replica was routed (arrivals; migrated
    #: requests stay attributed to the prefill replica that admitted them).
    requests_per_replica: List[int]
    #: Cluster-wide latency metrics (union of all replicas' finished requests).
    metrics: ServingMetrics = field(default_factory=ServingMetrics)
    #: Role of each replica ("prefill" / "decode" / "mixed"); empty for
    #: results predating disaggregation.
    replica_roles: List[str] = field(default_factory=list)
    #: Migrated requests each replica *received* (all-zero without roles).
    migrations_per_replica: List[int] = field(default_factory=list)
    #: System preset name of each replica's engine; uniform for homogeneous
    #: clusters, mixed under per-replica ``systems`` (empty for results
    #: predating heterogeneous fleets).
    replica_systems: List[str] = field(default_factory=list)
    #: What the autoscaler did, for autoscaled runs (``None`` otherwise).
    #: Autoscaled results list only the replica slots that were ever
    #: provisioned; the report's windows say *when* each one was.
    autoscale: Optional[AutoscaleReport] = None
    #: GPUs per replica (tensor-parallel degree); prices
    #: :attr:`gpu_seconds` for static fleets.
    gpus_per_replica: int = 1
    #: Residency and swap accounting of a multiplexed run (``None``
    #: otherwise).  Multiplexed runs list one result slice per
    #: (replica, model) pair; this report is indexed by physical replica.
    multiplex: Optional[MultiplexReport] = None
    #: Physical GPUs-holding replicas, when result slices are finer-grained
    #: than hardware (multiplexed runs); ``None`` means one slice per
    #: replica, the historical layout.
    physical_replicas: Optional[int] = None

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    def _sum(self, attr: str) -> int:
        """Sum one numeric field across the per-replica results.

        The single summation point for every cluster-level additive gauge —
        the per-property ``sum(...)`` expressions this replaces had started
        to drift apart.
        """
        return sum(getattr(r, attr) for r in self.replica_results)

    def counters(self) -> CounterRegistry:
        """Cluster-wide counter registry: every replica's counters, summed.

        Run-level counters (pages allocated, admission scans, preemptions,
        prefix/speculation totals) merge exactly; capacity gauges sum to the
        cluster-wide capacity.  Workload-sliced quantities (``num_finished``
        etc.) stay on the properties below — in a disaggregated cluster a
        migrated request finishes on a *different* replica than the one its
        result slice is attributed to, so the two viewpoints differ by
        design.
        """
        merged = CounterRegistry()
        for result in self.replica_results:
            if result.counters is not None:
                merged.merge(result.counters)
        return merged

    @property
    def tracers(self) -> List[Tracer]:
        """The per-replica tracers of a telemetry-enabled run (else empty)."""
        return [r.telemetry for r in self.replica_results
                if r.telemetry is not None]

    def chrome_trace(self) -> Dict:
        """Merged Chrome trace of all replicas on the shared cluster clock."""
        tracers = self.tracers
        if not tracers:
            raise ValueError(
                "this run was not traced; pass telemetry=True to serve()")
        return chrome_trace(tracers)

    @property
    def num_migrations(self) -> int:
        """Prefill→decode handoffs performed during the run."""
        return sum(self.migrations_per_replica)

    @property
    def transfer_delay(self) -> LatencySummary:
        """Exposed KV-transfer delay percentiles over migrated requests."""
        return self.metrics.transfer_delay

    def role_utilization(self) -> Dict[str, float]:
        """Busy-time fraction of each role's replicas over the makespan.

        The quantity disaggregation tuning stares at: a prefill:decode ratio
        is right when neither role sits idle while the other saturates.
        """
        roles = self.replica_roles or ["mixed"] * self.num_replicas
        total = self.total_time_s
        out: Dict[str, float] = {}
        for role in sorted(set(roles)):
            members = [r for r, ro in zip(self.replica_results, roles)
                       if ro == role]
            busy = sum(r.busy_time_s for r in members)
            out[role] = 0.0 if total == 0 else busy / (len(members) * total)
        return out

    @property
    def total_time_s(self) -> float:
        """Cluster makespan: the clock of the last replica to finish."""
        return max((r.total_time_s for r in self.replica_results), default=0.0)

    @property
    def generated_tokens(self) -> int:
        return self._sum("generated_tokens")

    @property
    def prompt_tokens(self) -> int:
        return self._sum("prompt_tokens")

    @property
    def num_finished(self) -> int:
        return self._sum("num_finished")

    @property
    def num_unserved(self) -> int:
        return self._sum("num_unserved")

    @property
    def num_dropped(self) -> int:
        """Requests shed by tier-aware admission (subset of unserved)."""
        return self._sum("num_dropped")

    @property
    def gpu_seconds(self) -> float:
        """Provisioned GPU-time: the fleet's cost over the run.

        A static fleet holds every replica for the whole makespan; an
        autoscaled fleet pays only for each slot's provisioned windows —
        the number a capacity plan compares the two on.
        """
        if self.autoscale is not None:
            return self.autoscale.gpu_seconds
        replicas = (self.num_replicas if self.physical_replicas is None
                    else self.physical_replicas)
        return replicas * self.gpus_per_replica * self.total_time_s

    @property
    def num_preemptions(self) -> int:
        return self._sum("num_preemptions")

    @property
    def generation_throughput(self) -> float:
        """Cluster generated tokens per second over the makespan."""
        total = self.total_time_s
        return 0.0 if total == 0 else self.generated_tokens / total

    @property
    def saved_prefill_tokens(self) -> int:
        """Prefill tokens skipped via prefix-cache hits across all replicas."""
        return self._sum("saved_prefill_tokens")

    @property
    def acceptance_rate(self) -> float:
        """Cluster-wide draft-token acceptance rate (0 when speculation is off).

        Aggregated over the replicas that ran speculative decoding — in a
        disaggregated cluster, the decode tier.
        """
        proposed = sum(r.spec_stats.proposed_tokens for r in self.replica_results
                       if r.spec_stats is not None)
        accepted = sum(r.spec_stats.accepted_tokens for r in self.replica_results
                       if r.spec_stats is not None)
        return 0.0 if proposed == 0 else accepted / proposed

    @property
    def cache_hit_rate(self) -> float:
        """Cluster-wide prefix-cache token hit rate (0 when caching is off)."""
        hits = sum(r.prefix_stats.hit_tokens for r in self.replica_results
                   if r.prefix_stats is not None)
        misses = sum(r.prefix_stats.miss_tokens for r in self.replica_results
                     if r.prefix_stats is not None)
        total = hits + misses
        return 0.0 if total == 0 else hits / total

    def slo_goodput(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """Cluster requests per second completed within the latency SLO."""
        return self.metrics.slo_goodput(ttft_slo_s, tpot_slo_s,
                                        self.total_time_s)

    def to_json(self) -> Dict:
        """Structured (JSON-serializable) export of the cluster run.

        Cluster-level aggregates plus the full per-replica
        :meth:`~repro.serving.engine.ServingResult.to_json` payloads and the
        merged counter registry.
        """
        return {
            "num_replicas": self.num_replicas,
            "total_time_s": self.total_time_s,
            "generated_tokens": self.generated_tokens,
            "prompt_tokens": self.prompt_tokens,
            "num_finished": self.num_finished,
            "num_unserved": self.num_unserved,
            "num_dropped": self.num_dropped,
            "num_preemptions": self.num_preemptions,
            "num_migrations": self.num_migrations,
            "gpu_seconds": self.gpu_seconds,
            "autoscale": (None if self.autoscale is None
                          else self.autoscale.to_json()),
            "multiplex": (None if self.multiplex is None
                          else self.multiplex.to_json()),
            "generation_throughput": self.generation_throughput,
            "saved_prefill_tokens": self.saved_prefill_tokens,
            "acceptance_rate": self.acceptance_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "requests_per_replica": list(self.requests_per_replica),
            "migrations_per_replica": list(self.migrations_per_replica),
            "replica_roles": list(self.replica_roles),
            "replica_systems": list(self.replica_systems),
            "role_utilization": self.role_utilization(),
            "metrics": self.metrics.to_json(),
            "counters": self.counters().as_dict(),
            "replica_results": [r.to_json() for r in self.replica_results],
        }


# ----------------------------------------------------------------------
# Multiplexed replica
# ----------------------------------------------------------------------
class _MultiplexReplica:
    """One physical replica hosting several models behind one GPU clock.

    Holds one :class:`EngineStepper` per servable model plus the replica's
    :class:`~repro.serving.multiplex.ModelResidency`.  The steppers share
    the accelerator: this wrapper serializes them on a single timeline —
    at any instant at most one model's iteration (or weight swap-in)
    occupies the GPU — while each stepper keeps its own scheduler, KV pool
    and model-namespaced prefix cache, all carved statically by the
    residency manager.
    """

    def __init__(self, config: MultiplexConfig,
                 steppers: List[EngineStepper],
                 residency: ModelResidency) -> None:
        self.config = config
        self.steppers = steppers
        self.by_model: Dict[str, EngineStepper] = {
            stepper.model_name: stepper for stepper in steppers}
        self.residency = residency
        # Fleet counter merges must count each swap once: the residency
        # manager reports through this replica's first stepper only.
        steppers[0].residency = residency
        #: Serialized GPU frontier: the time up to which the accelerator
        #: is committed (iterations and swap windows of *any* model).
        self.clock = 0.0

    # -- router-facing views -------------------------------------------
    @property
    def outstanding_requests(self) -> int:
        return sum(s.outstanding_requests for s in self.steppers)

    @property
    def pending_prefill_tokens(self) -> int:
        return sum(s.pending_prefill_tokens for s in self.steppers)

    def cached_prefix_tokens(self, request: Request) -> int:
        return self.by_model[self.resolve_model(request)] \
            .cached_prefix_tokens(request)

    @property
    def queue_cost_s(self) -> float:
        return self.config.queue_cost_s

    def resolve_model(self, request: Request) -> str:
        """The model this request runs on (fleet default when untagged)."""
        model = (request.model if request.model is not None
                 else self.config.default_model)
        if model not in self.by_model:
            raise ValueError(
                f"request {request.request_id} targets model {model!r}, "
                f"not in this fleet's multiplex set "
                f"{sorted(self.by_model)}")
        return model

    def swap_cost_s(self, model: str) -> float:
        return self.residency.swap_cost_s(model)

    # -- serving --------------------------------------------------------
    def submit(self, request: Request) -> EngineStepper:
        """Queue ``request`` on its model's stepper, swapping in if cold.

        A cold model pays its weight transfer as a replica-busy window on
        the shared clock — priced exactly like an autoscaler cold start —
        before the stepper may run an iteration for it.
        """
        model = self.resolve_model(request)
        stepper = self.by_model[model]
        cost = self.residency.ensure_resident(model)
        if cost > 0.0:
            stepper.sync_clock(max(self.clock, request.arrival_time))
            t0 = stepper.charge_busy(cost)
            self.clock = stepper.now
            if stepper.tracer is not None:
                stepper.tracer.model_swap(model, t0, stepper.now)
        stepper.submit(request)
        return stepper

    def run_until(self, t: Optional[float] = None) -> None:
        """Advance the serialized timeline until no stepper can start < ``t``.

        Repeatedly picks the stepper able to start soonest on the shared
        GPU — its own ready time, but never before the replica's committed
        frontier — lets it run one step, and folds the outcome back into
        the frontier.  Ties break toward the lowest model index.
        ``t=None`` drains everything.
        """
        stuck: set = set()
        while True:
            best = None
            for j, stepper in enumerate(self.steppers):
                if j in stuck:
                    continue
                ready = stepper.next_ready_time()
                if ready is None:
                    continue
                start = max(self.clock, ready)
                if best is None or start < best[0]:
                    best = (start, j, stepper)
            if best is None:
                return
            start, _, stepper = best
            if t is not None and start >= t:
                return
            stepper.sync_clock(start)
            if stepper.step(horizon=t):
                self.clock = max(self.clock, stepper.now)
            else:
                # No admissible work on this model before the horizon
                # (or ever); stop re-polling it this pass.
                stuck.add(best[1])

    def run(self) -> None:
        self.run_until(None)


# ----------------------------------------------------------------------
# Cluster engine
# ----------------------------------------------------------------------
class ClusterEngine:
    """N replica engines behind a pluggable router.

    By default every replica shares the same (model, GPU, system, parallel)
    engine — the cost model is stateless — but owns its scheduler, KV cache
    and clock.  Replicas are independent once requests are assigned, so the
    shared-clock simulation only has to synchronise at routing decisions:
    before each dispatch all replicas advance to the request's arrival time,
    giving the router an honest view of queue depths at that instant.

    ``systems`` makes the fleet *heterogeneous*: one system preset (name or
    :class:`~repro.serving.precision.SystemConfig`) per replica, so an FP16
    latency tier and a W4A8KV4 throughput tier serve behind one router.
    Replicas with the same preset share one engine (and its cost-model
    cache); passing a uniform ``systems`` list equal to ``system`` is
    bitwise-identical to omitting it.  Precision changes a replica's page
    geometry (KV bytes per token → KV capacity in pages), its kernel costs,
    and — for migrations between tiers — the transfer payload: KV bytes are
    priced at the *source* replica's KV precision, and landing on a replica
    with a different KV bit-width additionally pays that replica's
    transcode (dequant/requant) cost for the cold tokens.

    ``roles`` turns on disaggregated serving: one role per replica, from
    :data:`REPLICA_ROLES`.  ``prefill`` replicas export each request the
    moment its prefill completes; the request's KV state is transferred over
    ``transfer_link`` to a ``decode`` replica, which adopts the pages and
    generates every output token.  ``mixed`` replicas (the default when
    ``roles`` is omitted) serve requests end to end exactly as before.  With
    ``transfer_overlap`` (layer-by-layer streaming, DistServe-style) the
    transfer hides behind one decode iteration's worth of time and only the
    remainder — floored at the link's message latency — is exposed as delay.
    """

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 num_replicas: int, max_seq_len: int = 2048,
                 parallel: Optional[ParallelConfig] = None,
                 roles: Optional[Sequence[str]] = None,
                 transfer_link: InterconnectSpec = NVLINK,
                 transfer_overlap: bool = True,
                 systems: Optional[Sequence[Union[str, SystemConfig]]] = None
                 ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self.engine = ServingEngine(model, gpu, system, max_seq_len=max_seq_len,
                                    parallel=parallel)
        if systems is None:
            self.engines: List[ServingEngine] = [self.engine] * num_replicas
        else:
            if len(systems) != num_replicas:
                raise ValueError(
                    f"systems has {len(systems)} entries for "
                    f"{num_replicas} replicas")
            resolved = [get_system(s) if isinstance(s, str) else s
                        for s in systems]
            # One engine per distinct preset: replicas with the same system
            # share cost-model caches, and a replica matching the base
            # ``system`` reuses ``self.engine`` itself, so a uniform
            # ``systems`` list is the homogeneous cluster by construction.
            built: Dict[str, ServingEngine] = {
                self.engine.system.name: self.engine}
            self.engines = []
            for sys_config in resolved:
                engine = built.get(sys_config.name)
                if engine is None:
                    engine = ServingEngine(model, gpu, sys_config,
                                           max_seq_len=max_seq_len,
                                           parallel=parallel)
                    built[sys_config.name] = engine
                self.engines.append(engine)
        self.roles = list(roles) if roles is not None else \
            ["mixed"] * num_replicas
        if len(self.roles) != num_replicas:
            raise ValueError(
                f"roles has {len(self.roles)} entries for "
                f"{num_replicas} replicas")
        unknown = sorted(set(self.roles) - set(REPLICA_ROLES))
        if unknown:
            raise ValueError(f"unknown replica roles {unknown}; "
                             f"valid: {', '.join(REPLICA_ROLES)}")
        if self.disaggregated:
            if not any(r in ("prefill", "mixed") for r in self.roles):
                raise ValueError(
                    "disaggregated cluster has no prefill-capable replica")
            if "prefill" in self.roles and "decode" not in self.roles:
                raise ValueError(
                    "prefill-role replicas need at least one decode replica "
                    "to migrate to")
            if "decode" in self.roles and "prefill" not in self.roles:
                # Only prefill-role replicas export; mixed replicas serve
                # end to end, so a decode replica without a prefill feeder
                # would idle for the whole run.
                raise ValueError(
                    "decode-role replicas need at least one prefill replica "
                    "to receive migrations from")
        self.transfer_link = transfer_link
        self.transfer_overlap = transfer_overlap
        #: KV bytes per cached token under this system's KV precision — the
        #: payload density of a prefill→decode transfer.
        self.kv_bytes_per_token = self.engine.kv_bytes_per_token()

    @property
    def disaggregated(self) -> bool:
        """Whether any replica is role-specialised (prefill or decode)."""
        return any(role != "mixed" for role in self.roles)

    @property
    def heterogeneous(self) -> bool:
        """Whether replicas run under more than one system preset."""
        return len({engine.system.name for engine in self.engines}) > 1

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster (replicas x TP degree)."""
        return self.num_replicas * self.engine.tp_degree

    def _replica_tracers(self, telemetry: Union[None, bool, TelemetryConfig]
                         ) -> List[Optional[Tracer]]:
        """One tracer per replica (or all ``None`` with telemetry off).

        Replica index becomes the trace's process id; role-specialised
        replicas carry their role in the process name so the Perfetto view
        reads as the deployment does.
        """
        if telemetry is None or telemetry is False:
            return [None] * self.num_replicas
        if telemetry is True:
            config = TelemetryConfig()
        elif isinstance(telemetry, TelemetryConfig):
            config = telemetry
        else:
            raise TypeError(
                f"cluster telemetry must be None, bool or TelemetryConfig, "
                f"got {type(telemetry).__name__}")
        tracers: List[Optional[Tracer]] = []
        for i, role in enumerate(self.roles):
            suffix = "" if role == "mixed" else f" ({role})"
            tracers.append(Tracer(config, replica_index=i,
                                  replica_name=f"replica{i}{suffix}"))
        return tracers

    def serve(self, workload: Workload,
              router: Union[str, Router] = "least-outstanding",
              max_num_seqs: Optional[int] = None,
              scheduling: Optional[SchedulingConfig] = None,
              speculative: Optional[SpeculativeConfig] = None,
              telemetry: Union[None, bool, TelemetryConfig] = None,
              autoscaler: Optional[AutoscalerConfig] = None,
              multiplex: Optional[MultiplexConfig] = None
              ) -> ClusterResult:
        """Serve ``workload`` across the cluster and aggregate the results.

        ``router`` is a registry name or a :class:`Router` instance (fresh
        instances keep round-robin state per run).  ``max_num_seqs`` and
        ``scheduling`` apply per replica, exactly as in
        :meth:`ServingEngine.serve`.  ``speculative`` enables speculative
        decoding on every decode-capable replica (``decode`` and ``mixed``
        roles; prefill-role replicas never decode, so they keep their full
        KV budget instead of hosting a draft model).  In a disaggregated
        cluster the router sees only the prefill-capable replicas; migration
        targets are picked by :meth:`DisaggregatedRouter.route_decode`
        (least-loaded fallback for routers without one).  ``telemetry``
        attaches one :class:`~repro.serving.telemetry.Tracer` per replica,
        all on the shared cluster clock; merge them with
        :meth:`ClusterResult.chrome_trace`.

        ``autoscaler`` turns the fixed fleet into a reactive one:
        ``num_replicas`` becomes the replica *pool* and the
        :class:`~repro.serving.autoscaler.AutoscalerConfig` decides, every
        ``interval_s`` on the shared clock, how many of its slots are
        provisioned.  Scale-ups pay a priced cold start before serving;
        scale-downs drain through the migration machinery (decoding
        requests move with their KV state, prefilling ones are recomputed
        elsewhere).  Incompatible with role-specialised replicas.

        ``multiplex`` turns every replica into a multi-model host: a
        :class:`~repro.serving.multiplex.MultiplexConfig` names the model
        set, how many may hold weights in HBM at once, and the host link
        swap-ins are priced over.  Each replica serializes its models on
        one GPU timeline; routing sees whole replicas (pass
        ``router="model-aware"`` for warm-first placement) and the result
        carries one slice per (replica, model) plus a
        :class:`~repro.serving.multiplex.MultiplexReport`.  Incompatible
        with roles, heterogeneous ``systems`` and autoscaling.
        """
        if isinstance(router, str):
            router = get_router(router)
        if multiplex is not None:
            if autoscaler is not None:
                raise ValueError(
                    "multiplexing and autoscaling are mutually exclusive")
            if self.disaggregated:
                raise ValueError(
                    "multiplexing and role-specialised replicas are "
                    "mutually exclusive; use mixed roles")
            if self.heterogeneous:
                raise ValueError(
                    "multiplexing and per-replica systems are mutually "
                    "exclusive")
            return self._serve_multiplexed(workload, router, max_num_seqs,
                                           scheduling, speculative,
                                           telemetry, multiplex)
        if autoscaler is not None:
            if self.disaggregated:
                raise ValueError(
                    "autoscaling and role-specialised replicas are mutually "
                    "exclusive; use mixed roles")
            return self._serve_autoscaled(workload, router, max_num_seqs,
                                          scheduling, speculative,
                                          telemetry, autoscaler)
        if self.disaggregated:
            return self._serve_disaggregated(workload, router, max_num_seqs,
                                             scheduling, speculative,
                                             telemetry=telemetry)
        tracers = self._replica_tracers(telemetry)
        replicas = [EngineStepper(engine, scheduling=scheduling,
                                  max_num_seqs=max_num_seqs,
                                  speculative=speculative,
                                  telemetry=tracer)
                    for engine, tracer in zip(self.engines, tracers)]
        assignments: List[List[Request]] = [[] for _ in replicas]

        for request in sorted(workload.requests,
                              key=lambda r: (r.arrival_time, r.request_id)):
            for replica in replicas:
                replica.run_until(request.arrival_time)
            index = router.route(request, replicas)
            replicas[index].submit(request)
            assignments[index].append(request)
        for replica in replicas:
            replica.run()

        return self._assemble(replicas, assignments,
                              [0] * self.num_replicas)

    def _assemble(self, replicas: List[EngineStepper],
                  assignments: List[List[Request]],
                  migrations_in: List[int],
                  engines: Optional[List[ServingEngine]] = None,
                  roles: Optional[List[str]] = None,
                  autoscale: Optional[AutoscaleReport] = None
                  ) -> ClusterResult:
        results = [replica.result(Workload(requests=assigned))
                   for replica, assigned in zip(replicas, assignments)]
        merged = ServingMetrics(
            requests=[m for r in results if r.metrics is not None
                      for m in r.metrics.requests])
        engines = self.engines if engines is None else engines
        roles = self.roles if roles is None else roles
        return ClusterResult(
            replica_results=results,
            requests_per_replica=[len(a) for a in assignments],
            metrics=merged,
            replica_roles=list(roles),
            migrations_per_replica=list(migrations_in),
            replica_systems=[engine.system.name for engine in engines],
            autoscale=autoscale,
            gpus_per_replica=self.engine.tp_degree,
        )

    # ------------------------------------------------------------------
    # Multiplexed serving
    # ------------------------------------------------------------------
    def _multiplex_tracers(self, telemetry: Union[None, bool, TelemetryConfig],
                           config: MultiplexConfig
                           ) -> List[Optional[Tracer]]:
        """One tracer per (replica, model) stepper, flat in replica order.

        Each stepper gets its own trace process named
        ``replica<i>/<model>`` so a multiplexed Perfetto view separates
        the co-resident models' iterations and swap windows.
        """
        names = [model.name for model in config.models]
        flat = self.num_replicas * len(names)
        if telemetry is None or telemetry is False:
            return [None] * flat
        if telemetry is True:
            tconfig = TelemetryConfig()
        elif isinstance(telemetry, TelemetryConfig):
            tconfig = telemetry
        else:
            raise TypeError(
                f"cluster telemetry must be None, bool or TelemetryConfig, "
                f"got {type(telemetry).__name__}")
        tracers: List[Optional[Tracer]] = []
        for i in range(self.num_replicas):
            for name in names:
                tracers.append(Tracer(tconfig, replica_index=len(tracers),
                                      replica_name=f"replica{i}/{name}"))
        return tracers

    def _serve_multiplexed(self, workload: Workload, router: Router,
                           max_num_seqs: Optional[int],
                           scheduling: Optional[SchedulingConfig],
                           speculative: Optional[SpeculativeConfig],
                           telemetry: Union[None, bool, TelemetryConfig],
                           config: MultiplexConfig) -> ClusterResult:
        """Serve a multi-model workload on replicas that multiplex weights.

        Every replica hosts one stepper per model in ``config.models``
        (engines are shared across replicas per model — the cost model is
        stateless) plus a :class:`~repro.serving.multiplex.ModelResidency`
        that accounts weight memory against HBM and prices LRU swap-ins on
        the shared clock.  The event loop mirrors static serving: advance
        all replicas to each arrival, route against whole replicas, then
        drain.  The result lists one slice per (replica, model);
        ``physical_replicas`` keeps GPU-seconds priced by hardware.
        """
        base = self.engine
        engines: Dict[str, ServingEngine] = {}
        for model in config.models:
            if model.name == base.model.name:
                engines[model.name] = base
            else:
                engines[model.name] = ServingEngine(
                    model, base.gpu, base.system,
                    max_seq_len=base.max_seq_len, parallel=base.parallel)
        weight = {name: engine.weight_bytes()
                  for name, engine in engines.items()}
        workspace = {
            name: (engine.weight_bytes_per_gpu()
                   * engine.system.activation_workspace_factor
                   + 1.0 * (1 << 30)) * engine.tp_degree
            for name, engine in engines.items()}

        tracers = self._multiplex_tracers(telemetry, config)
        replicas: List[_MultiplexReplica] = []
        steppers_flat: List[EngineStepper] = []
        engines_flat: List[ServingEngine] = []
        for i in range(self.num_replicas):
            residency = ModelResidency(config, base.gpu, weight, workspace,
                                       tp_degree=base.tp_degree)
            steppers = []
            for j, model in enumerate(config.models):
                stepper = EngineStepper(
                    engines[model.name], scheduling=scheduling,
                    max_num_seqs=max_num_seqs, speculative=speculative,
                    telemetry=tracers[i * len(config.models) + j],
                    model_name=model.name,
                    kv_capacity_bytes=residency.kv_pool_bytes())
                steppers.append(stepper)
                steppers_flat.append(stepper)
                engines_flat.append(engines[model.name])
            replicas.append(_MultiplexReplica(config, steppers, residency))

        assignments: List[List[Request]] = [[] for _ in steppers_flat]
        requests_by_model: Dict[str, int] = {
            model.name: 0 for model in config.models}
        slot = {id(stepper): k for k, stepper in enumerate(steppers_flat)}

        for request in sorted(workload.requests,
                              key=lambda r: (r.arrival_time, r.request_id)):
            for replica in replicas:
                replica.run_until(request.arrival_time)
            target = router.route(request, replicas)
            stepper = replicas[target].submit(request)
            assignments[slot[id(stepper)]].append(request)
            requests_by_model[replicas[target].resolve_model(request)] += 1
        for replica in replicas:
            replica.run()

        result = self._assemble(steppers_flat, assignments,
                                [0] * len(steppers_flat),
                                engines=engines_flat,
                                roles=["mixed"] * len(steppers_flat))
        result.multiplex = MultiplexReport(
            replicas=[replica.residency.snapshot() for replica in replicas],
            requests_by_model=requests_by_model)
        result.physical_replicas = self.num_replicas
        return result

    # ------------------------------------------------------------------
    # Disaggregated serving
    # ------------------------------------------------------------------
    def transfer_delay(self, request: Request, cached_tokens: int = 0,
                       source: Optional[ServingEngine] = None,
                       target: Optional[ServingEngine] = None) -> float:
        """Exposed delay of shipping ``request``'s KV state to a decode replica.

        The payload is the KV bytes of the prompt's context minus
        ``cached_tokens`` the target replica already holds in its prefix
        cache (those blocks need no transfer).  It crosses ``transfer_link``
        as one point-to-point message; with ``transfer_overlap`` the
        layer-by-layer stream hides behind one decode iteration at the
        request's context length and only the remainder — never less than
        the link's message latency — is exposed on the critical path.

        In a heterogeneous fleet ``source``/``target`` name the two
        replicas' engines (both default to the cluster's base engine): the
        wire payload is priced at the *source* engine's KV precision —
        that is what the exporter holds — and when the two tiers store KV
        at different bit-widths the landing replica additionally pays its
        transcode cost to rewrite the cold tokens into its own format
        before decode can touch them.
        """
        src = self.engine if source is None else source
        dst = self.engine if target is None else target
        cold_tokens = max(0, request.context_len - cached_tokens)
        raw = self.transfer_link.transfer_latency(
            src.kv_bytes_per_token() * cold_tokens)
        if src.system.kv_bits != dst.system.kv_bits:
            raw += dst.kv_transcode_latency(cold_tokens, src.system)
        if not self.transfer_overlap:
            return raw
        overlap = dst.decode_step(1, request.context_len).total
        return max(self.transfer_link.latency_s, raw - overlap)

    def _serve_disaggregated(self, workload: Workload, router: Router,
                             max_num_seqs: Optional[int],
                             scheduling: Optional[SchedulingConfig],
                             speculative: Optional[SpeculativeConfig] = None,
                             telemetry: Union[None, bool,
                                              TelemetryConfig] = None
                             ) -> ClusterResult:
        """Event-driven serving loop with prefill→decode migrations.

        Two event streams interleave in time order: workload arrivals (routed
        among the prefill-capable replicas) and prefill completions (each
        migrating its request to a decode replica).  Before every routing
        decision all replicas advance to the event instant, so both the
        arrival router and the migration target choice observe live queue
        state.  The migrated request is submitted with its
        ``migration_ready_time`` set to completion + exposed transfer delay;
        the target's scheduler admits it no earlier (the transfer occupies
        the interconnect, not the GPU, so other decodes proceed meanwhile).
        """
        tracers = self._replica_tracers(telemetry)
        replicas = [EngineStepper(engine, scheduling=scheduling,
                                  max_num_seqs=max_num_seqs,
                                  migrate_out=(role == "prefill"),
                                  speculative=(None if role == "prefill"
                                               else speculative),
                                  telemetry=tracer)
                    for engine, role, tracer in zip(self.engines, self.roles,
                                                    tracers)]
        prefill_idx = [i for i, role in enumerate(self.roles)
                       if role in ("prefill", "mixed")]
        decode_idx = [i for i, role in enumerate(self.roles)
                      if role == "decode"]
        prefill_replicas = [replicas[i] for i in prefill_idx]
        decode_replicas = [replicas[i] for i in decode_idx]
        assignments: List[List[Request]] = [[] for _ in replicas]
        migrations_in = [0] * self.num_replicas
        arrivals = sorted(workload.requests,
                          key=lambda r: (r.arrival_time, r.request_id))
        arrival_pos = 0
        #: (prefill completion time, tiebreak, source replica index, request)
        #: — min-heap of finished prefills awaiting migration routing.  The
        #: source index prices the transfer payload at the exporter's KV
        #: precision in a heterogeneous fleet.
        handoffs: List[Tuple[float, int, int, Request]] = []
        tiebreak = itertools.count()

        def drain_outboxes() -> None:
            for source, replica in enumerate(replicas):
                while replica.outbox:
                    request = replica.outbox.pop(0)
                    heapq.heappush(handoffs, (request.prefill_done_time,
                                              next(tiebreak), source, request))

        decode_router = (router if isinstance(router, DisaggregatedRouter)
                         else DisaggregatedRouter())

        def migrate(done_time: float, request: Request, source: int) -> None:
            target = decode_idx[decode_router.route_decode(request,
                                                           decode_replicas)]
            # Pinning the target's matched prefix keeps the priced payload
            # honest: the credited blocks cannot be evicted mid-transfer.
            delay = self.transfer_delay(
                request, replicas[target].pin_for_import(request),
                source=self.engines[source], target=self.engines[target])
            if request.demoted_hit_tokens:
                # The pinned prefix includes blocks the target had demoted
                # to the 4-bit tier; they are restored before decode adopts
                # them, and the restore rides the transfer window.
                delay += self.engines[target].kv_dequant_latency(
                    request.demoted_hit_tokens)
                request.demoted_hit_tokens = 0
            request.migrations += 1
            request.transfer_delay_s += delay
            request.migration_ready_time = done_time + delay
            target_tracer = replicas[target].tracer
            if target_tracer is not None:
                # The transfer occupies the interconnect toward the target
                # replica for its exposed window; the span lands on the
                # target's timeline, where the request decodes next.
                target_tracer.transfer(request, done_time, done_time + delay)
            replicas[target].submit(request)
            migrations_in[target] += 1

        while True:
            drain_outboxes()
            next_arrival = (arrivals[arrival_pos].arrival_time
                            if arrival_pos < len(arrivals) else None)
            next_handoff = handoffs[0][0] if handoffs else None
            if next_handoff is not None and (next_arrival is None
                                             or next_handoff <= next_arrival):
                done_time, order, source, request = heapq.heappop(handoffs)
                for replica in replicas:
                    replica.run_until(done_time)
                drain_outboxes()
                if handoffs and handoffs[0][0] < done_time:
                    # Advancing uncovered an earlier completion; keep the
                    # event order honest and route that one first.
                    heapq.heappush(handoffs, (done_time, order, source,
                                              request))
                    continue
                migrate(done_time, request, source)
            elif next_arrival is not None:
                request = arrivals[arrival_pos]
                for replica in replicas:
                    replica.run_until(request.arrival_time)
                drain_outboxes()
                if handoffs and handoffs[0][0] <= request.arrival_time:
                    continue  # advancing uncovered an earlier completion
                arrival_pos += 1
                index = prefill_idx[router.route(request, prefill_replicas)]
                replicas[index].submit(request)
                assignments[index].append(request)
            else:
                # No queued events: step the busy replicas to surface the
                # remaining prefill completions, or finish.  Replicas with
                # running work go first — they are the only possible source
                # of new events — so an idle replica does not leap to its
                # own next availability past a completion still being
                # computed elsewhere.
                busy = [r for r in replicas if not r.done]
                if not busy:
                    break
                active = [r for r in busy if r.scheduler.running]
                progressed = False
                for replica in (active or busy):
                    progressed = replica.step() or progressed
                if not progressed and active and len(active) < len(busy):
                    # The active set stalled; let the idle replicas advance
                    # to their own next availability.
                    for replica in busy:
                        progressed = replica.step() or progressed
                if not progressed:
                    drain_outboxes()
                    if not handoffs:
                        break  # only never-admittable requests remain
        return self._assemble(replicas, assignments, migrations_in)

    # ------------------------------------------------------------------
    # Autoscaled serving
    # ------------------------------------------------------------------
    def _serve_autoscaled(self, workload: Workload, router: Router,
                          max_num_seqs: Optional[int],
                          scheduling: Optional[SchedulingConfig],
                          speculative: Optional[SpeculativeConfig],
                          telemetry: Union[None, bool, TelemetryConfig],
                          config: AutoscalerConfig) -> ClusterResult:
        """Event loop with a reactive autoscaler on the shared clock.

        ``num_replicas`` is the replica *pool*; slots are provisioned and
        drained by the controller.  Three event streams interleave in time
        order: workload arrivals (routed among the *serving* replicas),
        cold-start completions (a provisioned slot starts serving), and the
        controller's evaluation ticks every ``interval_s``.  A scale-up
        decision at ``t`` provisions the lowest stopped slot, which serves
        from ``t + cold_start_s`` — its window (and GPU bill) starts at
        ``t``, when the GPU is held to load weights.  A scale-down drains
        the least-loaded serving replica through the migration machinery:
        decoding requests move to the remaining replicas with their KV
        state priced on the wire (exactly a prefill→decode handoff),
        prefilling ones are preempted and recomputed elsewhere, and the
        waiting queue is rerouted.  Ticks continue after the last arrival
        so the fleet also scales down through the drain tail.
        """
        pool = self.num_replicas
        max_replicas = (pool if config.max_replicas is None
                        else config.max_replicas)
        if max_replicas > pool:
            raise ValueError(
                f"max_replicas={max_replicas} exceeds the replica pool "
                f"(num_replicas={pool})")
        scaler = ReactiveAutoscaler(config, max_replicas)
        cold_start = config.cold_start_s(self.engine.weight_bytes())
        tracers = self._replica_tracers(telemetry)
        steppers: List[Optional[EngineStepper]] = [None] * pool
        #: "stopped" | "starting" | "active" per slot.
        state = ["stopped"] * pool
        ready_at = [0.0] * pool
        windows: List[List[List[float]]] = [[] for _ in range(pool)]
        assignments: List[List[Request]] = [[] for _ in range(pool)]
        migrations_in = [0] * pool
        seen_finished = [0] * pool

        def provision(slot: int, start: float, ready: float) -> None:
            stepper = steppers[slot]
            if stepper is None:
                stepper = EngineStepper(self.engines[slot],
                                        scheduling=scheduling,
                                        max_num_seqs=max_num_seqs,
                                        speculative=speculative,
                                        telemetry=tracers[slot])
                steppers[slot] = stepper
            # A replica cannot run before its weights land; a reactivated
            # slot also never rewinds its own clock.
            stepper.now = max(stepper.now, ready)
            ready_at[slot] = ready
            windows[slot].append([start, None])
            state[slot] = "active" if ready <= start else "starting"

        for slot in range(config.min_replicas):
            provision(slot, 0.0, 0.0)  # the initial fleet is pre-warmed

        def live_slots() -> List[int]:
            return [s for s in range(pool) if state[s] != "stopped"]

        def active_slots() -> List[int]:
            return [s for s in range(pool) if state[s] == "active"]

        def advance(t: float) -> None:
            for s in live_slots():
                steppers[s].run_until(t)
            for s in range(pool):
                if state[s] == "starting" and ready_at[s] <= t:
                    state[s] = "active"

        def least_loaded(targets: List[int]) -> int:
            return min(targets,
                       key=lambda s: (steppers[s].outstanding_requests, s))

        def drain(slot: int, now: float, targets: List[int]) -> None:
            stepper = steppers[slot]
            scheduler = stepper.scheduler
            scheduler._clock = now  # drain spans land at the decision time
            for request in list(scheduler.running):
                if request.state is RequestState.DECODING:
                    scheduler.export_request(request)
                    target = least_loaded(targets)
                    delay = self.transfer_delay(
                        request, steppers[target].pin_for_import(request),
                        source=self.engines[slot],
                        target=self.engines[target])
                    if request.demoted_hit_tokens:
                        delay += self.engines[target].kv_dequant_latency(
                            request.demoted_hit_tokens)
                        request.demoted_hit_tokens = 0
                    request.migrations += 1
                    request.transfer_delay_s += delay
                    request.migration_ready_time = now + delay
                    target_tracer = steppers[target].tracer
                    if target_tracer is not None:
                        target_tracer.transfer(request, now, now + delay)
                    steppers[target].submit(request)
                    migrations_in[target] += 1
            for request in list(scheduler.running):
                if request.state is RequestState.PREFILLING:
                    # Partial prefill is cheaper to recompute than to ship;
                    # the request re-prefills on whichever replica admits it.
                    scheduler._preempt(request)
            rerouted = scheduler.waiting
            scheduler.waiting = []
            for request in rerouted:
                steppers[least_loaded(targets)].submit(request)

        arrivals = sorted(workload.requests,
                          key=lambda r: (r.arrival_time, r.request_id))
        pos = 0
        next_tick = config.interval_s
        stalled = 0
        while True:
            next_arrival = (arrivals[pos].arrival_time
                            if pos < len(arrivals) else None)
            starting = any(state[s] == "starting" for s in range(pool))
            busy = any(not steppers[s].done for s in active_slots())
            if next_arrival is None and not busy and not starting:
                break
            if next_arrival is not None and next_arrival <= next_tick:
                advance(next_arrival)
                request = arrivals[pos]
                pos += 1
                slots = active_slots()
                view = [steppers[s] for s in slots]
                index = slots[router.route(request, view)]
                steppers[index].submit(request)
                assignments[index].append(request)
                continue
            # Controller tick.
            signature = tuple((steppers[s].now, steppers[s].iterations)
                              for s in live_slots())
            advance(next_tick)
            now, next_tick = next_tick, next_tick + config.interval_s
            if next_arrival is None and not starting:
                # Post-arrival drain tail: if no live replica progressed
                # over two full ticks, only never-admittable requests
                # remain — stop instead of ticking forever.
                progressed = signature != tuple(
                    (steppers[s].now, steppers[s].iterations)
                    for s in live_slots())
                stalled = 0 if progressed else stalled + 1
                if stalled >= 2:
                    break
            slots = active_slots()
            recent_finished = recent_ok = 0
            for s in slots:
                finished = steppers[s].scheduler.finished
                for request in finished[seen_finished[s]:]:
                    recent_finished += 1
                    if (config.ttft_slo_s is None
                            or request.first_token_time - request.arrival_time
                            <= config.ttft_slo_s):
                        recent_ok += 1
                seen_finished[s] = len(finished)
            snapshot = FleetSnapshot(
                now=now,
                num_active=len(slots),
                num_starting=sum(1 for s in range(pool)
                                 if state[s] == "starting"),
                queue_depth=sum(len(steppers[s].scheduler.waiting)
                                for s in slots),
                outstanding=sum(steppers[s].outstanding_requests
                                for s in slots),
                recent_finished=recent_finished,
                recent_slo_ok=recent_ok,
            )
            decision = scaler.decide(snapshot)
            if decision is None:
                continue
            action, reason = decision
            if action == "up":
                slot = min(s for s in range(pool) if state[s] == "stopped")
                provision(slot, now,
                          now + config.cold_start_s(
                              self.engines[slot].weight_bytes()))
                scaler.commit(ScalingEvent(now, "up", slot,
                                           len(active_slots()), reason))
            else:
                slot = min(slots, key=lambda s:
                           (steppers[s].outstanding_requests, -s))
                targets = [s for s in slots if s != slot]
                drain(slot, now, targets)
                state[slot] = "stopped"
                windows[slot][-1][1] = now
                scaler.commit(ScalingEvent(now, "down", slot,
                                           len(active_slots()), reason))

        used = [s for s in range(pool) if steppers[s] is not None]
        makespan = max(steppers[s].now for s in used)
        for s in used:
            if windows[s] and windows[s][-1][1] is None:
                windows[s][-1][1] = max(windows[s][-1][0], makespan)
        report = AutoscaleReport(
            events=scaler.events,
            windows=[[tuple(w) for w in windows[s]] for s in used],
            cold_start_s=cold_start,
            gpus_per_replica=self.engine.tp_degree,
            makespan_s=makespan,
        )
        return self._assemble(
            [steppers[s] for s in used],
            [assignments[s] for s in used],
            [migrations_in[s] for s in used],
            engines=[self.engines[s] for s in used],
            roles=["mixed"] * len(used),
            autoscale=report)
