"""GEMM latency model with main-loop dequantization on CUDA cores.

Section 3.2 / Figure 5: state-of-the-art GEMM kernels use an output-stationary
dataflow whose sequential *main loop* iterates over the reduction dimension.
Anything that has to run inside that loop on CUDA cores — INT4→FP16 weight
conversion for W4A16, INT32→FP32 partial-sum dequantization for per-group
W4A4, INT4→INT8 weight dequantization for W4A8 — competes with tensor-core
work whose peak throughput is 30-50x higher.

``gemm_latency`` charges:

* tensor-core time: ``2*m*n*k / TC_peak``;
* main-loop CUDA-core time: (dequant ops per element) x (elements touched per
  GEMM) / (CUDA-core peak), with a register-pressure penalty for dataflows
  that keep two sets of accumulators (Atom);
* memory time: weights + activations + outputs over effective bandwidth;

and reports ``max(memory, tensor + cuda)`` — memory transfers overlap with
compute (multi-stage software pipelining, Section 5.2.4) but the main loop's
CUDA-core work does not overlap with its tensor-core work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.specs import GPUSpec

__all__ = [
    "GEMMPrecision",
    "GEMM_PRECISIONS",
    "GemmLatency",
    "gemm_latency",
    "dequant_overhead_fraction",
]


@dataclass(frozen=True)
class GEMMPrecision:
    """Description of a quantized GEMM dataflow (one column of Figure 5).

    Attributes
    ----------
    weight_bits / act_bits:
        Storage precision of weights and activations.
    compute_dtype:
        Tensor-core dtype the multiply-accumulate runs in.
    weight_dequant_ops:
        CUDA-core ops per *weight element* spent in the main loop
        (weight unpacking / conversion / zero-point handling).
    psum_dequant_ops:
        CUDA-core ops per *partial-sum element per group* spent in the main
        loop (Atom-style INT32→FP32 conversion + FMA).
    cuda_dtype:
        CUDA-core dtype those ops execute in.
    register_pressure_penalty:
        Multiplier (>1) modelling reduced latency hiding when the dataflow
        doubles its accumulator registers (Section 3.2).
    group_size:
        Group size for per-group dataflows (drives the partial-sum term).
    """

    name: str
    weight_bits: int
    act_bits: int
    compute_dtype: str
    weight_dequant_ops: float = 0.0
    psum_dequant_ops: float = 0.0
    cuda_dtype: str = "fp32"
    register_pressure_penalty: float = 1.0
    group_size: int = 128

    @property
    def weight_bytes(self) -> float:
        return self.weight_bits / 8.0

    @property
    def act_bytes(self) -> float:
        return self.act_bits / 8.0


#: The dataflows compared throughout the paper.  Dequantization op counts
#: follow Section 5.2/5.3: naive INT4→FP16 conversion costs ~2 ops/element,
#: QServe's RLP unpacking costs 3 logical ops per 8 weights plus one vadd4 /
#: one multiply per 4 weights (≈0.75 ops/element for per-group, ≈0.5 for
#: per-channel where zero-point subtraction moves to the epilogue), and Atom
#: pays ~5 ops per partial sum per group plus a register-pressure penalty.
GEMM_PRECISIONS: Dict[str, GEMMPrecision] = {
    "fp16": GEMMPrecision(
        name="fp16", weight_bits=16, act_bits=16, compute_dtype="fp16"),
    "w8a8": GEMMPrecision(
        name="w8a8", weight_bits=8, act_bits=8, compute_dtype="int8"),
    "w4a16": GEMMPrecision(
        name="w4a16", weight_bits=4, act_bits=16, compute_dtype="fp16",
        weight_dequant_ops=2.0, cuda_dtype="fp32"),
    "w4a4-atom": GEMMPrecision(
        name="w4a4-atom", weight_bits=4, act_bits=4, compute_dtype="int4",
        psum_dequant_ops=10.0, cuda_dtype="fp32",
        register_pressure_penalty=1.5, group_size=128),
    "w4a4-quarot": GEMMPrecision(
        name="w4a4-quarot", weight_bits=4, act_bits=4, compute_dtype="int4",
        psum_dequant_ops=9.0, cuda_dtype="fp32",
        register_pressure_penalty=1.4, group_size=128),
    "w4a8-qserve-chn": GEMMPrecision(
        name="w4a8-qserve-chn", weight_bits=4, act_bits=8, compute_dtype="int8",
        weight_dequant_ops=0.5, cuda_dtype="int32"),
    "w4a8-qserve-grp": GEMMPrecision(
        name="w4a8-qserve-grp", weight_bits=4, act_bits=8, compute_dtype="int8",
        weight_dequant_ops=0.75, cuda_dtype="int32", group_size=128),
}


@dataclass
class GemmLatency:
    """Latency breakdown of one GEMM call (seconds)."""

    total: float
    tensor_core: float
    cuda_core: float
    memory: float

    @property
    def compute(self) -> float:
        return self.tensor_core + self.cuda_core

    @property
    def dequant_overhead(self) -> float:
        """Fraction of main-loop compute time spent on dequantization."""
        if self.compute == 0:
            return 0.0
        return self.cuda_core / self.compute


def gemm_latency(spec: GPUSpec, m: int, n: int, k: int,
                 precision: GEMMPrecision) -> GemmLatency:
    """Latency of an ``m x n x k`` GEMM under ``precision`` on ``spec``."""
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError("GEMM dimensions must be positive")
    macs = float(m) * n * k
    ops = 2.0 * macs

    tc_peak = spec.tensor_core_tops(precision.compute_dtype) * 1e12
    tc_time = ops / (tc_peak * spec.compute_efficiency)

    cuda_ops = 0.0
    if precision.weight_dequant_ops:
        cuda_ops += precision.weight_dequant_ops * n * k
    if precision.psum_dequant_ops:
        n_groups = max(1, k // precision.group_size)
        cuda_ops += precision.psum_dequant_ops * m * n * n_groups
    cuda_peak = spec.cuda_core_tops(precision.cuda_dtype) * 1e12
    cuda_time = (cuda_ops * precision.register_pressure_penalty
                 / (cuda_peak * spec.compute_efficiency))

    weight_bytes = n * k * precision.weight_bytes
    act_bytes = m * k * precision.act_bytes
    out_bytes = m * n * 2.0  # FP16 outputs for every dataflow (Figure 11)
    mem_time = (weight_bytes + act_bytes + out_bytes) / (
        spec.effective_bandwidth_gbps * 1e9)

    total = max(mem_time, tc_time + cuda_time)
    return GemmLatency(total=total, tensor_core=tc_time, cuda_core=cuda_time,
                       memory=mem_time)


def dequant_overhead_fraction(spec: GPUSpec, m: int, n: int, k: int,
                              precision: GEMMPrecision) -> float:
    """Main-loop dequantization overhead as a fraction of compute time (Fig. 18)."""
    return gemm_latency(spec, m, n, k, precision).dequant_overhead
