"""Tests for the parallel-serving tier: tensor-parallel cost model,
interconnect specs, the incremental EngineStepper, the multi-replica
ClusterEngine with its routers, and the serving-loop/metrics bugfixes that
shipped with it."""

import pytest

from repro.gpu import A100, L40S, NVLINK, PCIE_GEN4, get_interconnect
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    EngineStepper,
    IterationPlan,
    IterationPlanner,
    LatencySummary,
    ParallelConfig,
    Request,
    RequestMetrics,
    RequestState,
    SCHEDULING_PRESETS,
    SchedulingConfig,
    ServingEngine,
    ServingMetrics,
    SYSTEM_PRESETS,
    Workload,
    get_router,
    make_bursty_workload,
    make_router_study_workload,
    make_uniform_workload,
    max_achievable_batch,
    max_achievable_throughput,
    tp_sweep,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


@pytest.fixture(scope="module")
def llama70b():
    return get_config("llama-2-70b")


# ----------------------------------------------------------------------
# Interconnect specs
# ----------------------------------------------------------------------
def test_allreduce_latency_model():
    assert NVLINK.allreduce_latency(1 << 20, world_size=1) == 0.0
    t2 = NVLINK.allreduce_latency(1 << 20, world_size=2)
    t4 = NVLINK.allreduce_latency(1 << 20, world_size=4)
    assert 0.0 < t2 < t4                      # more hops, more latency terms
    # Payload scaling: bandwidth term dominates for large messages.
    big = NVLINK.allreduce_latency(1 << 30, world_size=2)
    assert big > 100 * t2 / 2
    # PCIe is strictly slower than NVLink at every size.
    assert PCIE_GEN4.allreduce_latency(1 << 20, 2) > t2


def test_get_interconnect():
    assert get_interconnect("nvlink") is NVLINK
    assert get_interconnect("PCIE") is PCIE_GEN4
    with pytest.raises(KeyError):
        get_interconnect("infiniband")


# ----------------------------------------------------------------------
# ParallelConfig / TP-aware engine
# ----------------------------------------------------------------------
def test_parallel_config_validation(llama7b):
    with pytest.raises(ValueError):
        ParallelConfig(tp_degree=0)
    ParallelConfig(tp_degree=2).validate_for(llama7b)   # 32 heads: fine
    with pytest.raises(ValueError):
        ParallelConfig(tp_degree=3).validate_for(llama7b)
    with pytest.raises(ValueError):
        ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                      parallel=ParallelConfig(tp_degree=5))


def test_tp1_is_bitwise_identical(llama7b):
    base = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=1536)
    tp1 = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                        max_seq_len=1536, parallel=ParallelConfig(tp_degree=1))
    assert tp1.kv_capacity_bytes() == base.kv_capacity_bytes()
    assert tp1.decode_step(16, 1024).total == base.decode_step(16, 1024).total
    assert tp1.prefill(4, 1024).total == base.prefill(4, 1024).total
    mixed_args = ([(128, 256)], 8, 512)
    assert tp1.mixed_step(*mixed_args).total == base.mixed_step(*mixed_args).total
    assert tp1.decode_step(16, 1024).comm == 0.0
    # Same workload end to end, bitwise.
    workload = make_uniform_workload(4, prompt_len=128, output_len=16)
    r_base = base.serve(workload.copy_fresh(), max_num_seqs=4)
    r_tp1 = tp1.serve(workload.copy_fresh(), max_num_seqs=4)
    assert r_tp1.total_time_s == r_base.total_time_s
    assert r_tp1.generated_tokens == r_base.generated_tokens


def test_tp_shards_memory_and_charges_comm(llama70b):
    system = SYSTEM_PRESETS["trt-fp16"]
    tp1 = ServingEngine(llama70b, A100, system, max_seq_len=1536)
    tp2 = ServingEngine(llama70b, A100, system, max_seq_len=1536,
                        parallel=ParallelConfig(tp_degree=2))
    assert tp2.weight_bytes_per_gpu() == pytest.approx(tp1.weight_bytes() / 2)
    assert tp1.kv_capacity_bytes() == 0.0          # weights overflow one GPU
    assert tp2.kv_capacity_bytes() > 0.0
    step = tp2.decode_step(32, 1024)
    assert step.comm > 0.0
    assert step.total == pytest.approx(
        step.gemm + step.attention + step.other + step.comm)
    # Sharding cuts per-iteration latency despite the all-reduce cost.
    assert step.total < tp1.decode_step(32, 1024).total
    # PCIe pays more communication than NVLink for the same shard.
    pcie = ServingEngine(llama70b, A100, system, max_seq_len=1536,
                         parallel=ParallelConfig(2, interconnect=PCIE_GEN4))
    assert pcie.decode_step(32, 1024).comm > step.comm


def test_tp2_serves_previously_oom_model(llama70b):
    """Acceptance: a Table 4 OOM entry (batch 0) serves at tp>=2."""
    system = SYSTEM_PRESETS["trt-fp16"]
    assert max_achievable_batch(llama70b, A100, system) == 0
    result = max_achievable_throughput(
        llama70b, A100, system, parallel=ParallelConfig(tp_degree=2))
    assert result.batch > 0
    assert result.tokens_per_second > 0
    assert result.tp_degree == 2


def test_tp_sweep_skips_indivisible_degrees():
    # llama-30b has 52 heads: tp=2 and tp=4 divide, tp=8 does not.
    results = tp_sweep(get_config("llama-30b"), L40S, SYSTEM_PRESETS["trt-fp16"],
                       tp_degrees=(1, 2, 4, 8))
    assert [r.tp_degree for r in results] == [1, 2, 4]


# ----------------------------------------------------------------------
# EngineStepper
# ----------------------------------------------------------------------
def test_stepper_matches_serve(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    workload = make_uniform_workload(6, prompt_len=128, output_len=16,
                                     arrival_rate=100.0, seed=5)
    served = engine.serve(workload.copy_fresh(), max_num_seqs=4)
    stepper = EngineStepper(engine, max_num_seqs=4)
    fresh = workload.copy_fresh()
    stepper.submit(fresh.requests)
    stepper.run()
    result = stepper.result(fresh)
    assert result.total_time_s == served.total_time_s
    assert result.generated_tokens == served.generated_tokens
    assert result.num_iterations == served.num_iterations


def test_stepper_queue_state_views(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    stepper = EngineStepper(engine, max_num_seqs=8)
    assert stepper.outstanding_requests == 0
    assert stepper.pending_prefill_tokens == 0
    stepper.submit(Request(request_id=0, prompt_len=100, output_len=8))
    stepper.submit([Request(request_id=1, prompt_len=50, output_len=8,
                            arrival_time=10.0)])
    assert stepper.outstanding_requests == 2
    assert stepper.pending_prefill_tokens == 150
    stepper.run_until(0.5)
    assert stepper.now >= 0.0 and not stepper.done
    stepper.run()
    assert stepper.done
    assert stepper.outstanding_requests == 0


def test_serve_loop_livelock_terminates(llama7b, monkeypatch):
    """Regression (serve-loop livelock): an iteration that admits nothing and
    plans nothing, with arrived-but-blocked requests and a non-empty running
    batch, must terminate deterministically instead of spinning to the
    10M-iteration guard."""

    class EmptyPlanner(IterationPlanner):
        def plan(self, scheduler, admitted):
            return IterationPlan()

    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=256)
    pages5 = 5 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages5)
    # r0 admits (4 of 5 pages); r1 arrived but stays blocked on pages; with a
    # planner that makes no progress the old loop spun at now=0 forever.
    requests = [Request(request_id=0, prompt_len=48, output_len=16),
                Request(request_id=1, prompt_len=48, output_len=16)]
    stepper = EngineStepper(engine, max_num_seqs=8)
    stepper.planner = EmptyPlanner()
    stepper.submit(requests)
    stepper.run()
    assert stepper._guard < 100                      # no spin
    assert stepper.result(Workload(requests=requests)).num_unserved == 2


def test_serve_loop_livelock_advances_to_next_arrival(llama7b, monkeypatch):
    """The livelock escape jumps the clock to the next strictly-future
    arrival (only a new admission can unwedge the loop) before giving up."""

    class EmptyPlanner(IterationPlanner):
        def plan(self, scheduler, admitted):
            return IterationPlan()

    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=256)
    pages5 = 5 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages5)
    requests = [Request(request_id=0, prompt_len=48, output_len=16),
                Request(request_id=1, prompt_len=48, output_len=16),
                Request(request_id=2, prompt_len=48, output_len=16,
                        arrival_time=5.0)]
    stepper = EngineStepper(engine, max_num_seqs=8)
    stepper.planner = EmptyPlanner()
    stepper.submit(requests)
    stepper.run()
    assert stepper.now == 5.0                        # deterministic advance
    assert stepper._guard < 100


def test_unadmittable_request_strands_only_itself(llama7b, monkeypatch):
    """Regression: an arrived request that can never be admitted must not
    terminate the loop while servable requests are still due to arrive."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=4096)
    pages200 = 200 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages200)
    requests = [Request(request_id=0, prompt_len=4000, output_len=200,
                        arrival_time=0.05)]          # footprint > whole cache
    requests += [Request(request_id=i, prompt_len=256, output_len=32,
                         arrival_time=1.0 + 0.1 * i) for i in range(1, 9)]
    result = engine.serve(Workload(requests=requests), max_num_seqs=4)
    assert result.num_unserved == 1
    assert result.num_finished == 8
    assert result.generated_tokens == 8 * 32
    assert requests[0].state is RequestState.WAITING


def test_preemption_chunked_prefill_bursty_conservation(llama7b, monkeypatch):
    """Preemption + chunked prefill under bursty arrivals: every allocated
    page is eventually reclaimed and no request is left in PREEMPTED."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 2.0 * (1 << 30))
    workload = make_bursty_workload(24, burst_rate=60.0, mean_burst_s=1.0,
                                    mean_idle_s=4.0, prompt_len=1024,
                                    output_len=256, seed=2)
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    stepper.submit(workload.requests)
    stepper.run()
    result = stepper.result(workload)
    assert result.num_finished == 24
    assert result.num_preemptions > 0                # pressure actually hit
    kv = stepper.scheduler.kv_manager
    assert kv.used_pages == 0
    assert kv.pages_allocated_total == kv.pages_freed_total > 0
    assert all(r.state is RequestState.FINISHED for r in workload.requests)


# ----------------------------------------------------------------------
# ClusterEngine + routers
# ----------------------------------------------------------------------
def test_cluster_single_replica_matches_engine(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=512)
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=1, max_seq_len=512)
    workload = make_uniform_workload(8, prompt_len=256, output_len=32,
                                     arrival_rate=50.0, seed=2)
    single = engine.serve(workload.copy_fresh(), max_num_seqs=8)
    clustered = cluster.serve(workload.copy_fresh(), router="round-robin",
                              max_num_seqs=8)
    assert clustered.total_time_s == single.total_time_s
    assert clustered.generated_tokens == single.generated_tokens
    assert clustered.metrics.ttft.p95 == single.metrics.ttft.p95


def test_cluster_conservation_invariants(llama7b):
    """Σ replica tokens == cluster tokens; every request lands exactly once."""
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=3, max_seq_len=4096)
    workload = make_bursty_workload(48, burst_rate=40.0, mean_burst_s=1.0,
                                    mean_idle_s=3.0, lognormal_lengths=True,
                                    seed=4)
    expected_tokens = workload.total_output_tokens
    result = cluster.serve(workload, router="least-outstanding")
    assert sum(result.requests_per_replica) == 48
    assert result.num_finished == 48
    assert result.num_unserved == 0
    per_replica = [r.generated_tokens for r in result.replica_results]
    assert sum(per_replica) == result.generated_tokens == expected_tokens
    assert result.prompt_tokens == workload.total_prompt_tokens
    assert len(result.metrics) == 48
    assert result.total_time_s == max(r.total_time_s
                                      for r in result.replica_results)
    assert result.generation_throughput > 0


def test_round_robin_splits_evenly(llama7b):
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=4, max_seq_len=512)
    workload = make_uniform_workload(12, prompt_len=64, output_len=8)
    result = cluster.serve(workload, router="round-robin")
    assert result.requests_per_replica == [3, 3, 3, 3]


def test_least_outstanding_beats_round_robin_on_bursty_p95(llama7b):
    """Acceptance: the queue-aware router beats load-blind round-robin on
    p95 TTFT for the bursty heavy-tailed workload of the cluster benchmark."""
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=4, max_seq_len=4096)
    workload = make_router_study_workload()
    results = {router: cluster.serve(workload.copy_fresh(), router=router,
                                     max_num_seqs=6,
                                     scheduling=SCHEDULING_PRESETS["chunked"])
               for router in ("round-robin", "least-outstanding")}
    rr = results["round-robin"].metrics.ttft
    lor = results["least-outstanding"].metrics.ttft
    assert lor.p95 < rr.p95
    assert results["least-outstanding"].num_finished == 120


def test_router_and_cluster_validation(llama7b):
    with pytest.raises(KeyError):
        get_router("random")
    with pytest.raises(ValueError):
        ClusterEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"], num_replicas=0)


def test_prefix_affinity_router_keeps_sessions_warm(llama7b):
    """The prefix-affinity router sends a session's turns to the replica
    holding its cache, beating load-blind round-robin on cluster hit rate."""
    from repro.serving import make_chat_workload

    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=4, max_seq_len=4096)
    workload = make_chat_workload(num_sessions=8, turns_per_session=4,
                                  system_prompt_len=256, user_len=48,
                                  assistant_len=96, think_time_s=6.0, seed=11)
    results = {router: cluster.serve(workload.copy_fresh(), router=router,
                                     max_num_seqs=8,
                                     scheduling=SCHEDULING_PRESETS["prefix"])
               for router in ("round-robin", "prefix-affinity")}
    for result in results.values():
        assert result.num_finished == 32
        assert result.saved_prefill_tokens > 0
    assert results["prefix-affinity"].cache_hit_rate > \
        results["round-robin"].cache_hit_rate


def test_prefix_affinity_falls_back_without_caching(llama7b):
    """With prefix caching off (no probes, no segments) the affinity router
    degrades to least-outstanding routing and still serves everything."""
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=2, max_seq_len=512)
    workload = make_uniform_workload(8, prompt_len=128, output_len=16,
                                     arrival_rate=20.0, seed=6)
    result = cluster.serve(workload, router="prefix-affinity", max_num_seqs=4)
    assert result.num_finished == 8
    assert result.cache_hit_rate == 0.0
    assert all(n > 0 for n in result.requests_per_replica)


def test_cluster_with_tensor_parallel_replicas(llama70b):
    """A 2-replica cluster of tp=2 engines serves a model that OOMs on one
    GPU — the full scale-out composition (4 GPUs total)."""
    cluster = ClusterEngine(llama70b, A100, SYSTEM_PRESETS["trt-fp16"],
                            num_replicas=2, max_seq_len=1536,
                            parallel=ParallelConfig(tp_degree=2))
    assert cluster.total_gpus == 4
    workload = make_uniform_workload(8, prompt_len=1024, output_len=64,
                                     arrival_rate=2.0, seed=3)
    result = cluster.serve(workload, router="shortest-queue", max_num_seqs=4)
    assert result.num_finished == 8
    assert result.generated_tokens == 8 * 64


# ----------------------------------------------------------------------
# Metrics bugfixes
# ----------------------------------------------------------------------
def test_queue_delay_excludes_unknown_admissions():
    """Regression (queue-delay skew): requests without an admission time must
    not drag the summary toward zero."""
    known = RequestMetrics(request_id=0, prompt_len=10, output_len=4,
                           arrival_time=0.0, first_token_time=3.0,
                           finish_time=4.0, admitted_time=2.0)
    unknown = RequestMetrics(request_id=1, prompt_len=10, output_len=4,
                             arrival_time=0.0, first_token_time=3.0,
                             finish_time=4.0, admitted_time=None)
    assert known.queue_delay == pytest.approx(2.0)
    assert unknown.queue_delay is None
    metrics = ServingMetrics(requests=[known, unknown])
    summary = metrics.queue_delay
    assert summary.mean == pytest.approx(2.0)        # not (2.0 + 0.0) / 2
    assert summary.p50 == pytest.approx(2.0)
    # All-unknown: an empty (all-zero) summary, not a fabricated one.
    assert ServingMetrics(requests=[unknown]).queue_delay == \
        LatencySummary.from_values([])


def test_one_token_outputs_judged_on_ttft_only():
    """Regression (SLO for 1-token outputs): tpot==0 must not trivially pass
    the TPOT SLO; such requests are judged on TTFT alone."""
    slow_first = RequestMetrics(request_id=0, prompt_len=10, output_len=1,
                                arrival_time=0.0, first_token_time=9.0,
                                finish_time=9.0)
    fast_first = RequestMetrics(request_id=1, prompt_len=10, output_len=1,
                                arrival_time=0.0, first_token_time=0.1,
                                finish_time=0.1)
    slow_tpot = RequestMetrics(request_id=2, prompt_len=10, output_len=11,
                               arrival_time=0.0, first_token_time=0.1,
                               finish_time=10.1)
    assert not slow_first.meets_slo(ttft_slo_s=1.0, tpot_slo_s=0.05)
    assert fast_first.meets_slo(ttft_slo_s=1.0, tpot_slo_s=0.05)
    # Multi-token requests still fail on TPOT.
    assert not slow_tpot.meets_slo(ttft_slo_s=1.0, tpot_slo_s=0.05)
    metrics = ServingMetrics(requests=[slow_first, fast_first, slow_tpot])
    assert metrics.slo_attainment(1.0, 0.05) == pytest.approx(1 / 3)
