"""QServe serving-system simulator.

The efficiency results of the paper (Table 4, Figures 15/17) measure the
*maximum achievable generation throughput* of a serving system under a fixed
device-memory budget, with 1024-token prompts and 512-token outputs.  This
package reproduces that measurement as a discrete simulation:

* :mod:`repro.serving.precision` — serving-system presets (TensorRT-LLM FP16 /
  W8A8 / W4A16, Atom, QuaRot, QServe per-channel & per-group) mapping onto the
  GPU cost model's GEMM/attention kernels;
* :mod:`repro.serving.request` — request and workload definitions;
* :mod:`repro.serving.kv_cache_manager` — paged KV cache with per-head scale
  storage;
* :mod:`repro.serving.scheduler` — in-flight (continuous) batching scheduler;
* :mod:`repro.serving.engine` — per-iteration latency from the GPU cost model
  plus the full serving loop;
* :mod:`repro.serving.throughput` — memory-budgeted maximum-batch search and
  throughput measurement.
"""

from repro.serving.precision import SystemConfig, SYSTEM_PRESETS, get_system
from repro.serving.request import Request, RequestState, Workload, make_uniform_workload
from repro.serving.kv_cache_manager import PagedKVCacheManager, PageAllocationError
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.engine import ServingEngine, StepBreakdown
from repro.serving.throughput import (
    ThroughputResult,
    max_achievable_batch,
    measure_throughput,
    max_achievable_throughput,
)

__all__ = [
    "SystemConfig", "SYSTEM_PRESETS", "get_system",
    "Request", "RequestState", "Workload", "make_uniform_workload",
    "PagedKVCacheManager", "PageAllocationError",
    "ContinuousBatchingScheduler",
    "ServingEngine", "StepBreakdown",
    "ThroughputResult", "max_achievable_batch", "measure_throughput",
    "max_achievable_throughput",
]
