"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure via the corresponding
module in :mod:`repro.experiments`.  Accuracy benchmarks default to the
``tiny`` scale so the whole suite completes in minutes; set
``QSERVE_REPRO_SCALE=small`` to reproduce the numbers recorded in
EXPERIMENTS.md.

Serving benchmarks can dump their full result payloads
(``ServingResult.to_json`` / ``ClusterResult.to_json``) for offline
analysis::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_scaling.py \
        --json results.json
"""

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store", default=None, metavar="PATH",
        dest="serving_json_path",
        help="dump the ServingResult/ClusterResult payloads recorded by the "
             "serving benchmarks to PATH as JSON")


class ServingResultRecorder:
    """Collects named serving-result payloads; written once at session end.

    Recording is a no-op unless ``--json PATH`` was given, so benchmarks can
    call :meth:`record` unconditionally without paying serialization cost on
    plain runs.
    """

    def __init__(self, path):
        self.path = path
        self.payloads = {}

    @property
    def enabled(self):
        return self.path is not None

    def record(self, name, result):
        """Record one result (or a ``{label: result}`` sweep) under ``name``.

        ``result`` is anything with a ``to_json()`` method, a dict of such
        objects, or an already-serialized dict.
        """
        if not self.enabled:
            return
        self.payloads[name] = self._serialize(result)

    def _serialize(self, obj):
        if hasattr(obj, "to_json"):
            return obj.to_json()
        if isinstance(obj, dict):
            return {str(k): self._serialize(v) for k, v in obj.items()}
        return obj

    def flush(self):
        if self.enabled and self.payloads:
            with open(self.path, "w") as fh:
                json.dump(self.payloads, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"\nwrote {len(self.payloads)} serving payload(s) "
                  f"-> {self.path}")


@pytest.fixture(scope="session")
def serving_json(request):
    recorder = ServingResultRecorder(
        request.config.getoption("serving_json_path"))
    yield recorder
    recorder.flush()


@pytest.fixture(scope="session")
def accuracy_scale() -> str:
    return os.environ.get("QSERVE_REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def accuracy_setup(accuracy_scale):
    from repro.experiments.accuracy_common import build_setup
    return build_setup(accuracy_scale, seed=0)
