"""Quantization primitives used by QoQ and every baseline.

The submodules provide:

* :mod:`repro.quant.dtypes` — integer format descriptors (INT4/INT8/…).
* :mod:`repro.quant.quantizer` — symmetric / asymmetric quantization at
  per-tensor, per-channel, per-token and per-group granularity.
* :mod:`repro.quant.progressive` — the two-level progressive group
  quantization of QoQ (per-channel INT8 with protective range followed by
  per-group UINT4).
* :mod:`repro.quant.kv_quant` — per-head dynamic KV-cache quantization.
* :mod:`repro.quant.packing` — INT4 packing and the register-level
  parallelism interleaving used by the QServe kernels.
"""

from repro.quant.dtypes import (
    INT4,
    INT8,
    UINT4,
    UINT8,
    FP16,
    IntFormat,
    PROTECTIVE_INT8,
)
from repro.quant.quantizer import (
    Granularity,
    QuantParams,
    QuantizedTensor,
    compute_qparams,
    quantize,
    dequantize,
    fake_quantize,
    quantization_error,
)
from repro.quant.progressive import (
    ProgressiveQuantizedWeight,
    TwoLevelQuantizedWeight,
    progressive_quantize,
    progressive_dequantize_level1,
    progressive_dequantize,
    legacy_two_level_quantize,
    legacy_two_level_dequantize,
)
from repro.quant.kv_quant import (
    KVQuantConfig,
    QuantizedKV,
    quantize_kv_per_head,
    dequantize_kv,
    kv_fake_quantize,
)
from repro.quant.packing import (
    pack_int4,
    unpack_int4,
    interleave_for_rlp,
    deinterleave_from_rlp,
    rlp_unpack_uint4x8,
)

__all__ = [
    "INT4",
    "INT8",
    "UINT4",
    "UINT8",
    "FP16",
    "IntFormat",
    "PROTECTIVE_INT8",
    "Granularity",
    "QuantParams",
    "QuantizedTensor",
    "compute_qparams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
    "ProgressiveQuantizedWeight",
    "TwoLevelQuantizedWeight",
    "progressive_quantize",
    "progressive_dequantize_level1",
    "progressive_dequantize",
    "legacy_two_level_quantize",
    "legacy_two_level_dequantize",
    "KVQuantConfig",
    "QuantizedKV",
    "quantize_kv_per_head",
    "dequantize_kv",
    "kv_fake_quantize",
    "pack_int4",
    "unpack_int4",
    "interleave_for_rlp",
    "deinterleave_from_rlp",
    "rlp_unpack_uint4x8",
]
