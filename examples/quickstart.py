"""Quickstart: quantize a model with QoQ (W4A8KV4) and measure the impact.

Builds a small synthetic Llama-style model with genuine predictive structure,
quantizes it with the full QoQ pipeline (progressive group quantization,
SmoothAttention, rotation, smoothing, reordering, clipping), and compares
perplexity, weight memory and generated text against the FP16 original.

Run with:  python examples/quickstart.py [tiny|small]
"""

import sys

from repro.data import evaluate_perplexity
from repro.experiments.accuracy_common import build_setup
from repro.qoq import QoQConfig, quantize_model_qoq


def main(scale: str = "tiny") -> None:
    print(f"Building synthetic corpus and model at scale '{scale}'...")
    setup = build_setup(scale, seed=0)
    model = setup.model

    fp_ppl = evaluate_perplexity(model, setup.eval_sequences)
    print(f"FP16 perplexity:            {fp_ppl:.3f} "
          f"(bigram oracle: {setup.corpus.oracle_perplexity():.3f})")

    config = QoQConfig(group_size=setup.group_size)
    print(f"Quantizing with QoQ {config.precision_name} ...")
    result = quantize_model_qoq(model, setup.calibration, config)

    qoq_ppl = evaluate_perplexity(result.model, setup.eval_sequences,
                                  result.forward_config)
    print(f"QoQ W4A8KV4 perplexity:     {qoq_ppl:.3f} "
          f"(+{qoq_ppl - fp_ppl:.3f} over FP16)")

    fp16_bytes = sum(l.weight.size * 2 for l in model.named_linears().values())
    q_bytes = result.weight_memory_bytes()
    print(f"Transformer weight memory:  {fp16_bytes / 1024:.1f} KiB (FP16) -> "
          f"{q_bytes / 1024:.1f} KiB (W4, {fp16_bytes / q_bytes:.1f}x smaller)")

    prompt = setup.corpus.eval_tokens[:16]
    fp_text = model.generate(prompt, max_new_tokens=8)
    qoq_text = result.model.generate(prompt, max_new_tokens=8,
                                     forward_config=result.forward_config)
    print(f"FP16 greedy continuation:   {fp_text.tolist()}")
    print(f"QoQ greedy continuation:    {qoq_text.tolist()}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
