"""Tests for precision-aware serving: preset validation, per-block KV
precision tiers (demote/promote/evict conservation), dequant cost charging,
precision-aware SLO accounting, heterogeneous mixed-precision fleets with
cross-precision transfer repricing, and the precision-aware router."""

import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    DEMOTED_KV_BITS,
    EngineStepper,
    PagedKVCacheManager,
    PrecisionAwareRouter,
    PrefixCache,
    Request,
    RequestMetrics,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    SchedulingConfig,
    ServingEngine,
    ServingMetrics,
    get_system,
    make_chat_workload,
    make_mixed_precision_workload,
    make_shared_prefix_workload,
    validate_presets,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _manager(model, system="trt-fp16", capacity_gib=10.0, page_size=16):
    return PagedKVCacheManager(model=model, system=get_system(system),
                               capacity_bytes=capacity_gib * (1 << 30),
                               page_size=page_size, max_seq_len=1536)


def _request(rid, segments, output_len=8, arrival=0.0):
    return Request(request_id=rid,
                   prompt_len=sum(length for _, length in segments),
                   output_len=output_len, arrival_time=arrival,
                   prompt_segments=tuple(segments))


# ----------------------------------------------------------------------
# Preset validation and KV geometry
# ----------------------------------------------------------------------
def test_presets_validate_and_unknown_system_raises():
    validate_presets()                           # also runs at import
    with pytest.raises(KeyError, match="unknown system"):
        get_system("no-such-system")


def test_validate_presets_rejects_unresolvable_kernels():
    import dataclasses
    broken = dataclasses.replace(get_system("trt-fp16"), name="broken",
                                 attention_kernel="kv-nonexistent")
    with pytest.raises(ValueError, match="attention_kernel"):
        validate_presets({"broken": broken})


def test_demotion_support_keys_off_strict_byte_saving(llama7b):
    fp16 = _manager(llama7b, "trt-fp16")
    kv4 = _manager(llama7b, "qserve-w4a8kv4-chn")
    non_paged = _manager(llama7b, "quarot-w4a4")
    assert fp16.demotion_supported                # 16-bit KV -> 4-bit saves
    assert not kv4.demotion_supported             # already at 4-bit
    assert not non_paged.demotion_supported       # no pages to demote
    assert fp16.demoted_bytes_per_page() < fp16.bytes_per_page()
    # Demoted payload is the 4-bit tier.
    sys16 = get_system("trt-fp16")
    assert sys16.kv_bits > DEMOTED_KV_BITS
    assert sys16.demoted_kv_bytes_per_token(llama7b) < \
        sys16.kv_bytes_per_token(llama7b)


# ----------------------------------------------------------------------
# KV manager: demote/promote conservation
# ----------------------------------------------------------------------
def test_demote_promote_conserves_lifetime_counters(llama7b):
    mgr = _manager(llama7b)
    mgr.allocate(0, 64)                           # 4 private pages
    for _ in range(4):
        mgr.convert_private_to_shared(0)
    alloc, freed = mgr.pages_allocated_total, mgr.pages_freed_total
    free_before = mgr.free_pages
    for _ in range(3):
        mgr.demote_shared_page()
    assert mgr.demoted_pages == 3
    assert mgr.pages_demoted_total == 3
    # Fractional per-page gain: 3 demotions reclaim whole pages only.
    assert 0 < mgr.reclaimed_pages <= 3
    assert mgr.free_pages == free_before + mgr.reclaimed_pages
    # Demotion never touches the lifetime alloc/free ledger.
    assert (mgr.pages_allocated_total, mgr.pages_freed_total) == (alloc, freed)
    mgr.promote_shared_page()
    assert mgr.demoted_pages == 2 and mgr.pages_promoted_total == 1
    # Releasing a demoted page drops the demoted census with it.
    mgr.release_shared_page(demoted=True)
    mgr.release_shared_page(demoted=True)
    assert mgr.demoted_pages == 0
    mgr.release_shared_page()
    mgr.release_shared_page()
    assert mgr.used_pages == 0
    assert mgr.free_pages == mgr.total_pages
    assert mgr.pages_allocated_total == mgr.pages_freed_total == 4


def test_demote_guards(llama7b):
    kv4 = _manager(llama7b, "qserve-w4a8kv4-chn")
    with pytest.raises(ValueError, match="demot"):
        kv4.demote_shared_page()
    fp16 = _manager(llama7b)
    with pytest.raises(ValueError):
        fp16.demote_shared_page()                 # no shared pages at all
    fp16.allocate(0, 16)
    fp16.convert_private_to_shared(0)
    fp16.demote_shared_page()
    with pytest.raises(ValueError):
        fp16.demote_shared_page()                 # all shared pages demoted
    fp16.promote_shared_page()
    with pytest.raises(ValueError):
        fp16.promote_shared_page()                # nothing left demoted


def test_promotion_page_need_matches_reclaim_delta(llama7b):
    mgr = _manager(llama7b)
    mgr.allocate(0, 96)
    for _ in range(6):
        mgr.convert_private_to_shared(0)
    for _ in range(6):
        mgr.demote_shared_page()
    for count in range(0, 8):
        need = mgr.promotion_page_need(count)
        take = min(count, mgr.demoted_pages)
        assert need == mgr._reclaimable(6) - mgr._reclaimable(6 - take)
    # Promoting everything hands back exactly the reclaimed capacity.
    total_need = mgr.promotion_page_need(6)
    assert total_need == mgr.reclaimed_pages


# ----------------------------------------------------------------------
# Prefix cache: demote-before-evict
# ----------------------------------------------------------------------
def test_demote_before_evict_preserves_blocks(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr, demotion=True)
    request = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(request, [])
    cache.insert(request)
    cache.release(0)
    free_before = mgr.free_pages
    got = cache.evict(2)
    assert got == 2
    assert mgr.free_pages == free_before + 2
    # Pressure was covered by demotion alone: every block survives.
    assert cache.cached_pages == 4
    assert cache.stats.evicted_pages == 0
    assert cache.stats.demoted_pages_total == mgr.demoted_pages > 0
    # A re-hit still finds the prefix, now charged as demoted tokens.
    twin = _request(1, [(1, 64), (2, 16)])
    nodes, tokens = cache.match(twin)
    assert tokens == 64
    cache.acquire(twin, nodes)
    assert twin.demoted_hit_tokens > 0
    assert cache.stats.promoted_pages_total > 0


def test_demotion_exhausted_falls_back_to_eviction(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr, demotion=True)
    request = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(request, [])
    cache.insert(request)
    cache.release(0)
    # 4 blocks can yield at most reclaimable(4) pages by demotion; asking
    # for more must evict the (already demoted) blocks too.
    got = cache.evict(4)
    assert got == 4
    assert cache.cached_pages == 0
    assert mgr.demoted_pages == 0                 # evicted demoted blocks
    assert mgr.used_pages == 0
    assert mgr.pages_allocated_total == mgr.pages_freed_total == 4
    assert mgr.double_free_count == 0


def test_referenced_blocks_never_demoted(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr, demotion=True)
    holder = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(holder, [])
    cache.insert(holder)
    assert cache.evict(2) == 0                    # all blocks referenced
    assert mgr.demoted_pages == 0
    cache.release(0)
    assert cache.evict(1) >= 1                    # now demotable


def test_demotion_disabled_cache_is_plain_lru(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)                      # demotion off (default)
    request = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(request, [])
    cache.insert(request)
    cache.release(0)
    assert cache.evict(2) == 2
    assert mgr.demoted_pages == 0
    assert cache.stats.demoted_pages_total == 0
    assert cache.cached_pages == 2                # evicted, not demoted


def test_page_conservation_through_demote_promote_lifecycle(llama7b,
                                                            monkeypatch):
    """Acceptance: alloc/demote/promote/evict/free interleavings end with
    balanced lifetime counters and zero refcounts after drain."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                           max_seq_len=4096)
    capacity = 160 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: capacity)
    workload = make_chat_workload(num_sessions=6, turns_per_session=4,
                                  system_prompt_len=256, user_len=48,
                                  assistant_len=96, think_time_s=4.0, seed=5)
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["prefix-demote"],
                            max_num_seqs=4)
    stepper.submit(workload.requests)
    stepper.run()
    result = stepper.result(workload)
    assert result.num_finished == 24
    assert result.prefix_stats.demoted_pages_total > 0
    kv = stepper.scheduler.kv_manager
    cache = stepper.prefix_cache
    # The lifetime ledger counts *physical* page grants; demotion shrinks
    # used_pages by the reclaimed capacity without touching the ledger.
    held = kv.pages_allocated_total - kv.pages_freed_total
    assert held == kv.shared_pages == cache.cached_pages
    assert kv.used_pages == held - kv.reclaimed_pages
    assert cache.total_ref_count == 0
    assert kv.double_free_count == 0
    assert 0 <= kv.demoted_pages <= kv.shared_pages
    cache.clear()
    assert kv.used_pages == 0 and kv.demoted_pages == 0
    assert kv.pages_allocated_total == kv.pages_freed_total > 0


# ----------------------------------------------------------------------
# Engine: dequant pricing and the demotion preset
# ----------------------------------------------------------------------
def test_dequant_and_transcode_latencies_scale(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"])
    assert engine.kv_dequant_latency(0) == 0.0
    small, big = engine.kv_dequant_latency(64), engine.kv_dequant_latency(2048)
    assert 0.0 < small < big
    assert engine.kv_dequant_latency(64) == small       # memoized
    kv4 = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"])
    cross = kv4.kv_transcode_latency(1024, SYSTEM_PRESETS["trt-fp16"])
    assert cross > 0.0
    assert kv4.kv_transcode_latency(1024, SYSTEM_PRESETS["trt-fp16"]) == cross


def test_kv_demotion_requires_prefix_caching(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"])
    bad = SchedulingConfig(kv_demotion=True)
    with pytest.raises(ValueError, match="prefix_caching"):
        EngineStepper(engine, scheduling=bad)


def test_demote_preset_beats_plain_lru_under_pressure(llama7b, monkeypatch):
    """Acceptance sketch of claim (b): at equal HBM, demote-before-evict
    keeps more prefixes resident than plain LRU — higher hit rate — while
    still finishing every request with the dequant cost charged."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                           max_seq_len=4096)
    capacity = 96 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: capacity)
    workload = make_chat_workload(num_sessions=8, turns_per_session=4,
                                  system_prompt_len=192, user_len=32,
                                  assistant_len=64, think_time_s=6.0, seed=11)
    lru = engine.serve(workload.copy_fresh(), max_num_seqs=3,
                       scheduling=SCHEDULING_PRESETS["prefix"])
    demote = engine.serve(workload.copy_fresh(), max_num_seqs=3,
                          scheduling=SCHEDULING_PRESETS["prefix-demote"])
    assert lru.num_finished == demote.num_finished == 32
    assert demote.prefix_stats.demoted_pages_total > 0
    assert demote.prefix_stats.demoted_hit_tokens > 0
    assert demote.cache_hit_rate > lru.cache_hit_rate
    assert demote.prefix_stats.evicted_pages < lru.prefix_stats.evicted_pages


def test_demotion_off_is_bitwise_identical(llama7b, monkeypatch):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                           max_seq_len=2048)
    capacity = 128 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: capacity)
    workload = make_shared_prefix_workload(12, shared_prefix_len=256,
                                           unique_len=64, output_len=16,
                                           num_prefix_groups=6,
                                           arrival_rate=2.0, seed=4)
    base = engine.serve(workload.copy_fresh(), max_num_seqs=2,
                        scheduling=SCHEDULING_PRESETS["prefix"])
    # KV4 systems support no demotion, so the demote preset is a no-op.
    kv4 = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                        max_seq_len=2048)
    monkeypatch.setattr(kv4, "kv_capacity_bytes", lambda: capacity)
    off = kv4.serve(workload.copy_fresh(), max_num_seqs=2,
                    scheduling=SCHEDULING_PRESETS["prefix"])
    on = kv4.serve(workload.copy_fresh(), max_num_seqs=2,
                   scheduling=SCHEDULING_PRESETS["prefix-demote"])
    assert on.total_time_s == off.total_time_s
    assert on.num_iterations == off.num_iterations
    assert on.metrics.ttft.p95 == off.metrics.ttft.p95
    assert on.prefix_stats.demoted_pages_total == 0
    assert base.num_finished == 12                # fp16 baseline sanity


# ----------------------------------------------------------------------
# Metrics: precision-aware SLO accounting
# ----------------------------------------------------------------------
def _metric(rid, floor, served):
    return RequestMetrics(request_id=rid, prompt_len=64, output_len=8,
                          arrival_time=0.0, first_token_time=0.1,
                          finish_time=0.5, precision_floor_bits=floor,
                          served_precision_bits=served)


def test_precision_ok_joins_slo():
    ok = _metric(0, 16.0, 16.0)
    violated = _metric(1, 16.0, 4.0)
    unfloored = _metric(2, 0.0, 4.0)
    assert ok.precision_ok and unfloored.precision_ok
    assert not violated.precision_ok
    assert ok.meets_slo(1.0, 1.0)
    assert not violated.meets_slo(1.0, 1.0)       # latency fine, quality not
    metrics = ServingMetrics(requests=[ok, violated, unfloored])
    assert metrics.precision_violations == 1
    assert metrics.slo_attainment(1.0, 1.0) == pytest.approx(2 / 3)


def test_served_precision_stamped_at_admission(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1024)
    workload = make_mixed_precision_workload(num_requests=20, arrival_rate=8.0,
                                             seed=2)
    result = engine.serve(workload)
    served = {m.served_precision_bits for m in result.metrics.requests}
    assert served == {SYSTEM_PRESETS["qserve-w4a8kv4-chn"].min_precision_bits}
    floors = [m for m in result.metrics.requests if m.precision_floor_bits > 0]
    assert floors                                  # interactive tier exists
    assert result.metrics.precision_violations == len(floors)


def test_mixed_precision_workload_structure():
    wl = make_mixed_precision_workload(num_requests=50,
                                       interactive_fraction=0.4, seed=1)
    assert len(wl) == 50
    interactive = [r for r in wl.requests if r.precision_floor_bits > 0]
    batch = [r for r in wl.requests if r.precision_floor_bits == 0]
    assert interactive and batch
    assert all(r.prompt_len < batch[0].prompt_len for r in interactive)
    arrivals = [r.arrival_time for r in wl.requests]
    assert arrivals == sorted(arrivals)
    fresh = wl.copy_fresh()
    assert [r.precision_floor_bits for r in fresh.requests] == \
        [r.precision_floor_bits for r in wl.requests]
    with pytest.raises(ValueError):
        make_mixed_precision_workload(num_requests=0)


# ----------------------------------------------------------------------
# Heterogeneous fleets
# ----------------------------------------------------------------------
def test_uniform_systems_is_bitwise_identical_to_homogeneous(llama7b):
    base = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 3)
    uniform = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 3,
                            systems=["trt-fp16"] * 3)
    assert not uniform.heterogeneous
    assert all(engine is uniform.engine for engine in uniform.engines)
    workload = make_mixed_precision_workload(num_requests=40,
                                             arrival_rate=6.0, seed=3)
    r0 = base.serve(workload.copy_fresh())
    r1 = uniform.serve(workload.copy_fresh())
    assert r1.replica_systems == ["trt-fp16"] * 3
    assert r1.total_time_s == r0.total_time_s
    for a, b in zip(r0.metrics.requests, r1.metrics.requests):
        assert (a.ttft, a.finish_time) == (b.ttft, b.finish_time)


def test_heterogeneous_fleet_shares_engines_per_preset(llama7b):
    fleet = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 4,
                          systems=["trt-fp16", "qserve-w4a8kv4-chn",
                                   "trt-fp16", "qserve-w4a8kv4-chn"])
    assert fleet.heterogeneous
    assert fleet.engines[0] is fleet.engines[2] is fleet.engine
    assert fleet.engines[1] is fleet.engines[3]
    assert fleet.engines[1] is not fleet.engine
    with pytest.raises(ValueError, match="entries"):
        ClusterEngine(llama7b, A100, get_system("trt-fp16"), 2,
                      systems=["trt-fp16"])


def test_precision_aware_router_honors_floors_and_tiers(llama7b):
    fleet = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 4,
                          systems=["trt-fp16", "trt-fp16",
                                   "qserve-w4a8kv4-chn", "qserve-w4a8kv4-chn"])
    workload = make_mixed_precision_workload(num_requests=60,
                                             arrival_rate=6.0, seed=7)
    result = fleet.serve(workload, router="precision-aware")
    assert result.num_finished == 60
    assert result.metrics.precision_violations == 0
    # Floored requests all landed on fp16 replicas; batch traffic on kv4.
    floors = [m for m in result.metrics.requests
              if m.precision_floor_bits > 0]
    assert floors
    assert all(m.served_precision_bits == 16.0 for m in floors)
    batch = [m for m in result.metrics.requests
             if m.precision_floor_bits == 0]
    assert all(m.served_precision_bits == 4.0 for m in batch)
    assert sum(result.requests_per_replica[2:]) == len(batch)


def test_precision_aware_router_degrades_on_homogeneous_fleet(llama7b):
    fleet = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 2)
    workload = make_mixed_precision_workload(num_requests=30,
                                             arrival_rate=6.0, seed=5)
    aware = fleet.serve(workload.copy_fresh(), router="precision-aware")
    lor = fleet.serve(workload.copy_fresh(), router="least-outstanding")
    assert aware.requests_per_replica == lor.requests_per_replica
    assert aware.total_time_s == lor.total_time_s
    with pytest.raises(ValueError):
        PrecisionAwareRouter(interactive_tokens=-1)


def test_cross_precision_transfer_reprices_payload(llama7b):
    het = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 2,
                        systems=["trt-fp16", "qserve-w4a8kv4-chn"],
                        roles=["prefill", "decode"], transfer_overlap=False)
    fp16, kv4 = het.engines
    request = Request(request_id=0, prompt_len=1024, output_len=64)
    same = het.transfer_delay(request, source=fp16, target=fp16)
    cross = het.transfer_delay(request, source=fp16, target=kv4)
    reverse = het.transfer_delay(request, source=kv4, target=fp16)
    # Same payload on the wire, plus the landing replica's transcode.
    assert cross - same == pytest.approx(
        kv4.kv_transcode_latency(1024, fp16.system))
    # A KV4 exporter ships 4x fewer bytes even counting the transcode.
    assert reverse < same
    # Defaulted engines price exactly as the homogeneous path did.
    assert het.transfer_delay(request) == same


def test_heterogeneous_disaggregated_end_to_end(llama7b):
    het = ClusterEngine(llama7b, A100, get_system("trt-fp16"), 2,
                        systems=["trt-fp16", "qserve-w4a8kv4-chn"],
                        roles=["prefill", "decode"])
    workload = make_mixed_precision_workload(num_requests=30,
                                             arrival_rate=4.0, seed=9)
    result = het.serve(workload, router="disaggregated")
    assert result.num_finished == 30
    assert result.num_migrations == 30
    assert result.replica_systems == ["trt-fp16", "qserve-w4a8kv4-chn"]
    migrated = [m for m in result.metrics.requests if m.migrations > 0]
    assert all(m.transfer_delay_s > 0 for m in migrated)
    # Decode happens on the KV4 tier, so that is the precision served.
    assert all(m.served_precision_bits == 4.0 for m in migrated)
