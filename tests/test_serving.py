"""Tests for the serving simulator: KV manager, scheduler, engine, throughput."""

import numpy as np
import pytest

from repro.gpu import A100, L40S
from repro.model import get_config
from repro.serving import (
    ContinuousBatchingScheduler,
    PageAllocationError,
    PagedKVCacheManager,
    Request,
    ServingEngine,
    SYSTEM_PRESETS,
    get_system,
    make_uniform_workload,
    max_achievable_batch,
    max_achievable_throughput,
    measure_throughput,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _manager(model, system="qserve-w4a8kv4-chn", capacity_gib=10.0):
    return PagedKVCacheManager(model=model, system=get_system(system),
                               capacity_bytes=capacity_gib * (1 << 30),
                               page_size=16, max_seq_len=1536)


# ----------------------------------------------------------------------
# KV cache manager
# ----------------------------------------------------------------------
def test_kv_bytes_per_token_scales_with_precision(llama7b):
    kv4 = _manager(llama7b, "qserve-w4a8kv4-chn").bytes_per_token()
    kv8 = _manager(llama7b, "trt-w8a8").bytes_per_token()
    kv16 = _manager(llama7b, "trt-fp16").bytes_per_token()
    assert kv4 < kv8 < kv16
    assert kv16 == pytest.approx(2 * 32 * 32 * 128 * 2)  # 2 * layers * kv_dim * 2B


def test_page_allocation_and_free(llama7b):
    mgr = _manager(llama7b)
    assert mgr.free_pages == mgr.total_pages
    pages = mgr.allocate(0, 100)
    assert pages == mgr.pages_for_tokens(100) == 7
    assert mgr.allocate(0, 100) == 0            # idempotent growth
    assert mgr.allocate(0, 120) == 1            # grow by one page
    assert mgr.used_pages == 8
    assert mgr.free(0) == 8
    assert mgr.used_pages == 0


def test_page_allocation_error_when_full(llama7b):
    mgr = _manager(llama7b, capacity_gib=0.001)
    with pytest.raises(PageAllocationError):
        mgr.allocate(0, 10_000)


def test_non_paged_system_reserves_max_seq(llama7b):
    paged = _manager(llama7b, "qserve-w4a8kv4-chn")
    non_paged = _manager(llama7b, "quarot-w4a4")
    assert non_paged.pages_for_tokens(10) == non_paged.pages_for_tokens(1000)
    assert paged.pages_for_tokens(10) < paged.pages_for_tokens(1000)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def test_scheduler_admission_and_completion(llama7b):
    mgr = _manager(llama7b, capacity_gib=4.0)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=4)
    requests = [Request(request_id=i, prompt_len=64, output_len=4) for i in range(6)]
    sched.submit(requests)
    admitted = sched.admit(now=0.0)
    assert len(admitted) == 4                    # capped by max_num_seqs
    sched.complete_prefill(now=1.0)
    for step in range(4):
        sched.record_decode_step(now=2.0 + step)
    assert len(sched.finished) == 4
    assert mgr.used_pages == 0 or len(sched.running) == 0
    # The remaining two requests can now be admitted.
    admitted = sched.admit(now=10.0)
    assert len(admitted) == 2


def test_scheduler_respects_arrival_times(llama7b):
    mgr = _manager(llama7b)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8)
    sched.submit([Request(request_id=0, prompt_len=8, output_len=1, arrival_time=5.0)])
    assert sched.admit(now=0.0) == []
    assert len(sched.admit(now=6.0)) == 1


# ----------------------------------------------------------------------
# Engine and throughput
# ----------------------------------------------------------------------
def test_decode_step_breakdown_attention_grows_with_batch(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    small = engine.decode_step(1, 1024)
    large = engine.decode_step(64, 1024)
    assert large.total > small.total
    assert large.fraction("attention") > small.fraction("attention")
    assert large.fraction("attention") > 0.5   # Figure 2a: >50% at batch 64


def test_prefill_latency_scales_with_tokens(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    assert engine.prefill(4, 1024).total > engine.prefill(1, 1024).total


def test_serving_loop_generates_all_tokens(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=160)
    workload = make_uniform_workload(4, prompt_len=128, output_len=32)
    result = engine.serve(workload, max_num_seqs=4)
    assert result.generated_tokens == 4 * 32
    assert result.peak_batch == 4
    assert result.generation_throughput > 0


def test_max_batch_ordering_across_systems(llama7b):
    batches = {name: max_achievable_batch(llama7b, A100, SYSTEM_PRESETS[name])
               for name in ("trt-fp16", "trt-w8a8", "qserve-w4a8kv4-chn")}
    assert batches["trt-fp16"] < batches["trt-w8a8"] < batches["qserve-w4a8kv4-chn"]


def test_fp16_oom_for_70b_on_both_gpus():
    cfg = get_config("llama-2-70b")
    assert max_achievable_batch(cfg, A100, SYSTEM_PRESETS["trt-fp16"]) == 0
    assert max_achievable_batch(cfg, L40S, SYSTEM_PRESETS["trt-fp16"]) == 0
    assert max_achievable_throughput(cfg, L40S, SYSTEM_PRESETS["trt-fp16"]).tokens_per_second == 0
    # QServe still serves the 70B model on the 48 GB L40S.
    assert max_achievable_batch(cfg, L40S, SYSTEM_PRESETS["qserve-w4a8kv4-chn"]) > 0


def test_qserve_beats_best_trt_throughput(llama7b):
    best_trt = max(
        max_achievable_throughput(llama7b, gpu, SYSTEM_PRESETS[name]).tokens_per_second
        for gpu in (A100,) for name in ("trt-fp16", "trt-w4a16", "trt-w8a8"))
    qserve = max_achievable_throughput(
        llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"]).tokens_per_second
    assert qserve > best_trt * 1.1


def test_w4a4_systems_slower_than_trt_w8a8(llama7b):
    w8a8 = max_achievable_throughput(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    for name in ("atom-w4a4", "quarot-w4a4"):
        result = max_achievable_throughput(llama7b, A100, SYSTEM_PRESETS[name])
        assert result.tokens_per_second < w8a8.tokens_per_second


def test_measure_throughput_validation(llama7b):
    with pytest.raises(ValueError):
        measure_throughput(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"], batch=0)
    with pytest.raises(KeyError):
        get_system("nonexistent")
