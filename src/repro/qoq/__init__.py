"""The QoQ quantization algorithm (Section 4 of the paper).

Submodules implement the individual techniques; :mod:`repro.qoq.pipeline`
composes them into the end-to-end W4A8KV4 quantizer:

* :mod:`repro.qoq.smooth_attention` — SmoothAttention (Section 4.2);
* :mod:`repro.qoq.rotation` — block-input Hadamard rotation (Section 4.3.1);
* :mod:`repro.qoq.smoothing` — block-output smoothing (Section 4.3.2);
* :mod:`repro.qoq.reorder` — activation-aware channel reordering (4.3.3);
* :mod:`repro.qoq.clipping` — block/layer-MSE weight clipping (4.3.4);
* :mod:`repro.qoq.pipeline` — ``QoQQuantizer`` orchestrating calibration and
  producing the quantized model.
"""

from repro.qoq.smooth_attention import (
    compute_smooth_attention_scales,
    apply_smooth_attention,
)
from repro.qoq.rotation import hadamard_matrix, random_orthogonal_matrix
from repro.qoq.smoothing import compute_smoothing_scales
from repro.qoq.reorder import compute_reorder_permutation
from repro.qoq.clipping import search_clip_ratio
from repro.qoq.pipeline import QoQConfig, QoQQuantizer, QoQResult, quantize_model_qoq

__all__ = [
    "compute_smooth_attention_scales",
    "apply_smooth_attention",
    "hadamard_matrix",
    "random_orthogonal_matrix",
    "compute_smoothing_scales",
    "compute_reorder_permutation",
    "search_clip_ratio",
    "QoQConfig",
    "QoQQuantizer",
    "QoQResult",
    "quantize_model_qoq",
]
