#!/usr/bin/env python
"""Bitwise fingerprint of the serving simulator across representative configs.

Every perf-focused PR must leave the simulator's *outputs* untouched while
making it faster.  This tool pins that contract down: it runs a fixed suite
of serving scenarios — legacy Table 4 throughput, chunked prefill with
preemption, prefix-cache chat, a multi-replica cluster, disaggregated
prefill/decode, speculative decoding, a heterogeneous mixed-precision fleet,
KV-cache demotion under memory pressure, diurnal multi-tenant traffic with
tier-aware admission, a flash-crowd autoscaled fleet and a multiplexed
multi-model fleet — and emits a JSON fingerprint
in which every float is hex-encoded (``float.hex()``: exact, no rounding)
and every per-request metrics stream is hashed.

Usage::

    PYTHONPATH=src python tools/serving_fingerprint.py out.json   # capture
    PYTHONPATH=src python tools/serving_fingerprint.py --compare a.json b.json

Capture a fingerprint before an optimisation, capture again after, and
``--compare`` must report zero differences.  Any mismatch means the change
was not a pure optimisation.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List


def _hx(value: float) -> str:
    return float(value).hex()


def _metrics_digest(metrics) -> Dict[str, str]:
    """Exact digest of the per-request metrics stream."""
    parts: List[str] = []
    for m in sorted(metrics.requests, key=lambda r: r.request_id):
        parts.append("|".join([
            str(m.request_id), str(m.prompt_len), str(m.output_len),
            _hx(m.arrival_time), _hx(m.first_token_time), _hx(m.finish_time),
            "none" if m.admitted_time is None else _hx(m.admitted_time),
            str(m.preemptions), str(m.migrations), _hx(m.transfer_delay_s),
            str(m.spec_steps), str(m.draft_proposed), str(m.draft_accepted),
        ]))
    blob = "\n".join(parts).encode()
    return {
        "num_requests": str(len(metrics.requests)),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


def _summaries(metrics) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for name in ("ttft", "tpot", "e2e", "queue_delay"):
        s = getattr(metrics, name)
        for f in ("mean", "p50", "p95", "p99", "maximum"):
            out[f"{name}.{f}"] = _hx(getattr(s, f))
    out["slo_0.2_0.05"] = _hx(metrics.slo_attainment(0.2, 0.05))
    out["slo_1.0_0.01"] = _hx(metrics.slo_attainment(1.0, 0.01))
    return out


def _serving_result(result) -> Dict[str, object]:
    fp: Dict[str, object] = {
        "total_time_s": _hx(result.total_time_s),
        "generated_tokens": result.generated_tokens,
        "prompt_tokens": result.prompt_tokens,
        "peak_batch": result.peak_batch,
        "num_iterations": result.num_iterations,
        "num_finished": result.num_finished,
        "num_unserved": result.num_unserved,
        "num_preemptions": result.num_preemptions,
        "recomputed_prefill_tokens": result.recomputed_prefill_tokens,
        "busy_time_s": _hx(result.busy_time_s),
        "kv_utilization_peak": _hx(result.kv_utilization_peak),
        "throughput": _hx(result.generation_throughput),
    }
    if result.metrics is not None:
        fp["metrics"] = _metrics_digest(result.metrics)
        fp["summaries"] = _summaries(result.metrics)
    if result.prefix_stats is not None:
        s = result.prefix_stats
        fp["prefix"] = {
            "hit_rate": _hx(s.hit_rate),
            "saved_prefill_tokens": s.saved_prefill_tokens,
            "evicted_pages": s.evicted_pages,
        }
    if result.spec_stats is not None:
        s = result.spec_stats
        fp["spec"] = {
            "proposed": s.proposed_tokens, "accepted": s.accepted_tokens,
            "committed": s.committed_tokens, "steps": s.spec_steps,
            "draft_time_s": _hx(s.draft_time_s),
            "verify_time_s": _hx(s.verify_time_s),
        }
    return fp


def _cluster_result(result) -> Dict[str, object]:
    return {
        "replicas": [_serving_result(r) for r in result.replica_results],
        "requests_per_replica": result.requests_per_replica,
        "migrations_per_replica": result.migrations_per_replica,
        "metrics": _metrics_digest(result.metrics),
        "summaries": _summaries(result.metrics),
    }


# ----------------------------------------------------------------------
# Scenario suite
# ----------------------------------------------------------------------
def build_fingerprint() -> Dict[str, object]:
    from repro.gpu import A100
    from repro.model import get_config
    from repro.serving import (
        ClusterEngine,
        SCHEDULING_PRESETS,
        SYSTEM_PRESETS,
        ServingEngine,
        SpeculativeConfig,
        make_chat_workload,
        make_lognormal_workload,
        make_mixed_precision_workload,
        make_router_study_workload,
        make_uniform_workload,
    )
    from repro.serving.throughput import measure_throughput

    llama7b = get_config("llama-2-7b")
    fp: Dict[str, object] = {}

    # 1. Legacy Table 4 path: stall-prefill conservative FCFS.
    for system in ("trt-fp16", "qserve-w4a8kv4-grp"):
        r = measure_throughput(llama7b, A100, SYSTEM_PRESETS[system],
                               batch=48, num_requests=96,
                               prompt_len=1024, output_len=128)
        fp[f"table4/{system}"] = _serving_result(r.serving)

    system = SYSTEM_PRESETS["qserve-w4a8kv4-chn"]

    # 2. Chunked prefill + preemption under Poisson lognormal traffic.
    engine = ServingEngine(llama7b, A100, system, max_seq_len=4096)
    wl = make_lognormal_workload(400, arrival_rate=40.0, seed=3)
    r = engine.serve(wl, max_num_seqs=48,
                     scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    fp["chunked-preempt"] = _serving_result(r)

    # 3. Prefix-cache multi-turn chat (cache-aware admission).
    engine = ServingEngine(llama7b, A100, system, max_seq_len=4096)
    wl = make_chat_workload(num_sessions=12, turns_per_session=5,
                            session_rate=0.5, seed=5)
    r = engine.serve(wl, max_num_seqs=32,
                     scheduling=SCHEDULING_PRESETS["prefix-aware"])
    fp["prefix-chat"] = _serving_result(r)

    # 4. Multi-replica cluster, least-outstanding router.
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=4,
                            max_seq_len=4096)
    r = cluster.serve(make_router_study_workload(120, seed=1),
                      router="least-outstanding", max_num_seqs=24,
                      scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    fp["cluster"] = _cluster_result(r)

    # 5. Disaggregated prefill/decode split.
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=4,
                            max_seq_len=4096,
                            roles=["prefill", "decode", "decode", "decode"])
    r = cluster.serve(make_router_study_workload(120, seed=1),
                      router="disaggregated", max_num_seqs=24,
                      scheduling=SCHEDULING_PRESETS["chunked"])
    fp["disaggregated"] = _cluster_result(r)

    # 6. Speculative decoding (adaptive lookahead, low-entropy traffic).
    engine = ServingEngine(llama7b, A100, system, max_seq_len=4096)
    spec = SpeculativeConfig(draft_model=get_config("llama-160m"),
                             profile="low-entropy", lookahead=4,
                             adaptive=True, seed=11)
    wl = make_lognormal_workload(200, arrival_rate=30.0, seed=7)
    r = engine.serve(wl, max_num_seqs=32,
                     scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                     speculative=spec)
    fp["speculative"] = _serving_result(r)

    # 7. Heterogeneous mixed-precision fleet, precision-aware routing.
    fleet = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                          num_replicas=4, max_seq_len=4096,
                          systems=["trt-fp16", "trt-fp16",
                                   "qserve-w4a8kv4-chn", "qserve-w4a8kv4-chn"])
    r = fleet.serve(make_mixed_precision_workload(120, arrival_rate=12.0,
                                                  seed=1),
                    router="precision-aware", max_num_seqs=24,
                    scheduling=SCHEDULING_PRESETS["chunked"])
    fp["mixed-fleet"] = {
        "cluster": _cluster_result(r),
        "replica_systems": r.replica_systems,
        "precision_violations": r.metrics.precision_violations,
    }

    # 8. KV-cache demotion under memory pressure (demote-before-evict).
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-fp16"],
                           max_seq_len=4096)
    capacity = 96 * engine.new_kv_manager().bytes_per_page()
    engine.kv_capacity_bytes = lambda: capacity
    wl = make_chat_workload(num_sessions=8, turns_per_session=4,
                            system_prompt_len=192, user_len=32,
                            assistant_len=64, think_time_s=6.0, seed=11)
    r = engine.serve(wl, max_num_seqs=3,
                     scheduling=SCHEDULING_PRESETS["prefix-demote"])
    s = r.prefix_stats
    fp["kv-demotion"] = {
        "serving": _serving_result(r),
        "demoted_pages_total": s.demoted_pages_total,
        "promoted_pages_total": s.promoted_pages_total,
        "demoted_hit_tokens": s.demoted_hit_tokens,
        "peak_demoted_pages": s.peak_demoted_pages,
    }

    # 9. Diurnal multi-tenant traffic, tier-aware admission + load shedding.
    from repro.serving import make_diurnal_workload
    engine = ServingEngine(llama7b, A100, system, max_seq_len=4096)
    wl = make_diurnal_workload(300, base_rate=30.0, amplitude=0.7,
                               period_s=8.0, tenants=6, free_fraction=0.5,
                               seed=13)
    r = engine.serve(wl, max_num_seqs=24,
                     scheduling=SCHEDULING_PRESETS["tiered-shed"])
    by_tier = r.metrics.by_tier()
    fp["diurnal-tiered"] = {
        "serving": _serving_result(r),
        "num_dropped": r.num_dropped,
        "per_tier_requests": {t: len(m.requests)
                              for t, m in sorted(by_tier.items())},
        "per_tier_ttft_p99": {t: _hx(m.ttft.p99)
                              for t, m in sorted(by_tier.items())},
    }

    # 10. Flash-crowd autoscaled fleet (priced cold starts, drain on idle).
    from repro.serving import AutoscalerConfig, make_flash_crowd_workload
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=4,
                            max_seq_len=4096)
    wl = make_flash_crowd_workload(300, base_rate=2.0,
                                   spikes=((5.0, 40.0, 6.0),),
                                   prompt_len=512, output_len=200,
                                   tenants=4, free_fraction=0.5, seed=7)
    r = cluster.serve(wl, max_num_seqs=8,
                      scheduling=SCHEDULING_PRESETS["tiered"],
                      autoscaler=AutoscalerConfig(
                          min_replicas=1, max_replicas=4, interval_s=2.0,
                          scale_up_queue_depth=2.0, up_cooldown_s=2.0,
                          down_cooldown_s=4.0, scale_down_outstanding=6.0,
                          ttft_slo_s=0.5))
    fp["flash-autoscale"] = {
        "cluster": _cluster_result(r),
        "gpu_seconds": _hx(r.gpu_seconds),
        "scale_events": [[_hx(e.time_s), e.action, e.replica, e.reason]
                         for e in r.autoscale.events],
        "windows": [[[_hx(w[0]), _hx(w[1])] for w in slot]
                    for slot in r.autoscale.windows],
    }

    # 11. Multiplexed multi-model fleet (residency, swap pricing, routing).
    from repro.serving import MultiplexConfig, make_multi_model_workload
    llama13b = get_config("llama-2-13b")
    cluster = ClusterEngine(llama7b, A100, system, num_replicas=2,
                            max_seq_len=4096)
    wl = make_multi_model_workload(
        200, models=("llama-2-7b", "llama-2-13b"), weights=(0.8, 0.2),
        arrival_rate=16.0, seed=11)
    r = cluster.serve(wl, router="model-aware",
                      max_num_seqs=16,
                      multiplex=MultiplexConfig(
                          models=(llama7b, llama13b),
                          max_resident_models=1))
    fp["multi-model"] = {
        "cluster": _cluster_result(r),
        "gpu_seconds": _hx(r.gpu_seconds),
        "swap_ins": r.multiplex.swap_ins,
        "swap_outs": r.multiplex.swap_outs,
        "swap_in_s": _hx(r.multiplex.swap_in_s),
        "requests_by_model": {m: n for m, n in
                              sorted(r.multiplex.requests_by_model.items())},
        "per_model_ttft_p99": {m: _hx(metrics.ttft.p99) for m, metrics in
                               sorted(r.metrics.by_model().items())},
    }

    return fp


def _flatten(obj, prefix=""):
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from _flatten(v, f"{prefix}{k}/")
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            yield from _flatten(v, f"{prefix}{i}/")
    else:
        yield prefix.rstrip("/"), obj


def compare(path_a: str, path_b: str) -> int:
    with open(path_a) as fh:
        a = dict(_flatten(json.load(fh)))
    with open(path_b) as fh:
        b = dict(_flatten(json.load(fh)))
    diffs = [k for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)]
    for key in diffs:
        print(f"MISMATCH {key}: {a.get(key)!r} != {b.get(key)!r}")
    if diffs:
        print(f"{len(diffs)} fingerprint mismatches")
        return 1
    print(f"fingerprints identical ({len(a)} entries)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="output path, or two paths with --compare")
    parser.add_argument("--compare", action="store_true",
                        help="compare two previously captured fingerprints")
    args = parser.parse_args()
    if args.compare:
        if len(args.paths) != 2:
            parser.error("--compare needs exactly two fingerprint files")
        return compare(*args.paths)
    if len(args.paths) != 1:
        parser.error("capture mode takes exactly one output path")
    fp = build_fingerprint()
    with open(args.paths[0], "w") as fh:
        json.dump(fp, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.paths[0]} ({sum(1 for _ in _flatten(fp))} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
