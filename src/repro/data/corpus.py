"""Synthetic token corpus.

A Zipfian bigram language model over the target vocabulary generates token
sequences with realistic statistics (a heavy-tailed unigram distribution plus
strong local structure).  The corpus plays the role of WikiText-2: it provides
calibration batches and a held-out split for perplexity evaluation.

The corpus exposes its bigram transition matrix so that
:func:`repro.model.weights.generate_model` can build models that actually
*predict* this language (see that module's docstring).  Because every
quantized model is compared on the same corpus against the same FP16
reference, relative perplexity degradation between quantization methods is
meaningful even though absolute values are not comparable to real-text
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["CorpusConfig", "SyntheticCorpus", "bigram_transition_matrix"]


def bigram_transition_matrix(
    vocab_size: int,
    num_classes: int = 32,
    zipf_exponent: float = 1.1,
    concentration: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Class-structured bigram matrix and the token→class assignment.

    Tokens are partitioned into ``num_classes`` classes; the next-token
    distribution depends only on the class of the current token, so the
    log-transition matrix has rank ≤ ``num_classes``.  This mirrors the
    low-dimensional structure of natural language that lets a model with a
    ``hidden_size``-dimensional bottleneck predict it, and is what allows the
    synthetic models of :mod:`repro.model.weights` to reach a perplexity far
    below the uniform baseline.

    Returns ``(matrix, token_classes)`` where ``matrix[i, j] = P(next=j |
    current=i)`` is row-stochastic and ``token_classes[i]`` is the class id of
    token ``i``.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    unigram = ranks ** (-zipf_exponent)
    unigram /= unigram.sum()

    token_classes = rng.integers(0, num_classes, size=vocab_size)
    n_favoured = max(2, vocab_size // 16)
    class_rows = np.full((num_classes, vocab_size), concentration / vocab_size)
    for cls in range(num_classes):
        favoured = rng.choice(vocab_size, size=n_favoured, replace=False, p=unigram)
        weights = rng.dirichlet(np.full(n_favoured, 0.6))
        class_rows[cls, favoured] += (1.0 - concentration) * weights
    class_rows /= class_rows.sum(axis=1, keepdims=True)
    matrix = class_rows[token_classes]
    return matrix, token_classes


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic corpus generator."""

    vocab_size: int
    num_train_tokens: int = 16384
    num_eval_tokens: int = 4096
    num_classes: int = 32
    zipf_exponent: float = 1.1
    bigram_concentration: float = 0.05
    seed: int = 0


class SyntheticCorpus:
    """Generates and holds train/eval token streams plus the true bigram model."""

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.transition_matrix, self.token_classes = bigram_transition_matrix(
            config.vocab_size,
            num_classes=config.num_classes,
            zipf_exponent=config.zipf_exponent,
            concentration=config.bigram_concentration,
            seed=config.seed,
        )
        ranks = np.arange(1, config.vocab_size + 1, dtype=np.float64)
        self._unigram = ranks ** (-config.zipf_exponent)
        self._unigram /= self._unigram.sum()
        self.train_tokens = self._sample_stream(rng, config.num_train_tokens)
        self.eval_tokens = self._sample_stream(rng, config.num_eval_tokens)

    def _sample_stream(self, rng: np.random.Generator, length: int) -> np.ndarray:
        tokens = np.empty(length, dtype=np.int64)
        tokens[0] = rng.choice(self.config.vocab_size, p=self._unigram)
        cumulative = np.cumsum(self.transition_matrix, axis=1)
        draws = rng.random(length)
        for i in range(1, length):
            tokens[i] = np.searchsorted(cumulative[tokens[i - 1]], draws[i])
        return tokens

    def oracle_perplexity(self, split: str = "eval") -> float:
        """Perplexity of the *true* bigram model on a split (lower bound)."""
        stream = self.train_tokens if split == "train" else self.eval_tokens
        probs = self.transition_matrix[stream[:-1], stream[1:]]
        return float(np.exp(-np.mean(np.log(probs))))

    def chunks(self, split: str, seq_len: int) -> List[np.ndarray]:
        """Non-overlapping sequences of length ``seq_len`` from a split."""
        stream = self.train_tokens if split == "train" else self.eval_tokens
        n = stream.size // seq_len
        if n == 0:
            raise ValueError(f"split too short for seq_len={seq_len}")
        return [stream[i * seq_len:(i + 1) * seq_len] for i in range(n)]
