"""Tests for integer format descriptors."""

import numpy as np
import pytest

from repro.quant import INT4, INT8, PROTECTIVE_INT8, UINT4, UINT8


def test_ranges():
    assert (INT4.qmin, INT4.qmax) == (-8, 7)
    assert (UINT4.qmin, UINT4.qmax) == (0, 15)
    assert (INT8.qmin, INT8.qmax) == (-128, 127)
    assert (UINT8.qmin, UINT8.qmax) == (0, 255)
    assert (PROTECTIVE_INT8.qmin, PROTECTIVE_INT8.qmax) == (-119, 119)


def test_levels_and_symmetric_qmax():
    assert INT8.levels == 256
    assert UINT4.levels == 16
    assert INT8.symmetric_qmax == 127
    assert INT4.symmetric_qmax == 7


def test_clip_and_contains():
    values = np.array([-200, -8, 0, 7, 200])
    clipped = INT4.clip(values)
    assert clipped.min() == -8 and clipped.max() == 7
    assert INT4.contains(clipped)
    assert not INT4.contains(values)
    assert INT4.contains(np.array([]))


def test_astype_validates_range():
    with pytest.raises(ValueError):
        UINT4.astype(np.array([16]))
    out = UINT4.astype(np.array([0, 15]))
    assert out.dtype == np.uint8


def test_protective_range_is_subset_of_int8():
    assert PROTECTIVE_INT8.qmin > INT8.qmin
    assert PROTECTIVE_INT8.qmax < INT8.qmax
