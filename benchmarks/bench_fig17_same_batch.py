"""Benchmark regenerating Figure 17 (same-batch throughput on L40S)."""

from repro.experiments import fig17_same_batch


def test_fig17_llama2_7b(benchmark):
    report = benchmark.pedantic(fig17_same_batch.run, args=("llama-2-7b",), rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))


def test_fig17_llama2_13b(benchmark):
    report = benchmark.pedantic(fig17_same_batch.run, args=("llama-2-13b",), kwargs={"batches": (2, 4, 8, 16, 32)}, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
