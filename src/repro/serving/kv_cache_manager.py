"""Paged KV cache management (Section 5.1, "KV Cache Management").

QServe follows vLLM / TensorRT-LLM and stores the KV cache in fixed-size pages
to avoid fragmentation; unlike those systems it performs *per-head dynamic*
quantization, storing FP16 scales and zero points for each head immediately
after the quantized features inside each page.  The manager below implements
the bookkeeping: page-granular allocation per request, byte accounting that
includes the in-page quantization parameters, and the non-paged fallback used
to model systems without paged-attention support (QuaRot).

Reclamation: :meth:`PagedKVCacheManager.free` releases *all* pages of a
request at once — used both when a request finishes and when the scheduler
preempts it (recompute-style preemption rebuilds the KV cache from scratch on
readmission, so partial reclamation is never needed).  Freeing an id that was
already freed is counted in ``double_free_count`` (a refcounting bug that the
conservation accounting alone would hide) while freeing an id that never
allocated stays a legitimate no-op.

Pages live in two populations that both count toward capacity:

* **private** pages, owned by exactly one request (the historical behaviour);
* **shared** pages, owned by the prefix cache
  (:mod:`repro.serving.prefix_cache`) and referenced by any number of
  requests.  A shared page counts *once* toward ``used_pages`` no matter how
  many requests reference it; ``allocate``'s ``shared_pages`` argument tells
  the allocator how many of a request's pages are covered by the shared pool
  so the private allocation covers only the remainder.

Shared pages additionally carry a *precision tier*: under memory pressure the
prefix cache may **demote** a cold, unreferenced block to the 4-bit tier
(:data:`repro.serving.precision.DEMOTED_KV_BITS`), shrinking its byte
footprint without discarding its contents.  The page-granular accounting
models this as fractional capacity reclamation: ``demoted_pages`` blocks
each occupy only ``demoted_bytes_per_page / bytes_per_page`` of a page, and
the bytes they give back are re-granted as whole free pages
(``reclaimed_pages``, floored so capacity is never oversold).  Demotion and
promotion move pages between tiers without touching the lifetime
allocate/free counters — a demoted page is still one shared page — so the
conservation invariant ``pages_allocated_total == pages_freed_total`` at
drain is unchanged.  With zero demoted pages every quantity below is
bitwise-identical to the pre-tier accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.model.config import ModelConfig
from repro.serving.precision import SystemConfig

__all__ = ["PageAllocationError", "PagedKVCacheManager"]


class PageAllocationError(RuntimeError):
    """Raised when a request cannot be granted the pages it needs."""


@dataclass
class PagedKVCacheManager:
    """Page-granular KV cache allocator for one model on one device.

    Parameters
    ----------
    model:
        Model geometry (layers, KV heads, head dim).
    system:
        Serving-system preset; supplies KV precision, per-head parameter
        overhead and whether paging is supported at all.
    capacity_bytes:
        Device memory available for KV cache (what is left after weights and
        activation workspace).
    page_size:
        Tokens per page (16 in vLLM/TensorRT-LLM-style systems).
    max_seq_len:
        Worst-case sequence length; non-paged systems must reserve this much
        per request up front.
    """

    model: ModelConfig
    system: SystemConfig
    capacity_bytes: float
    page_size: int = 16
    max_seq_len: int = 2048
    _allocated: Dict[int, int] = field(default_factory=dict, init=False)
    #: Pages owned by the prefix cache's shared pool (each counted once).
    shared_pages: int = field(default=0, init=False)
    #: Subset of ``shared_pages`` currently held at the demoted 4-bit tier.
    demoted_pages: int = field(default=0, init=False)
    #: Lifetime tier-transition counters (diagnostics; never part of the
    #: allocate/free conservation ledger).
    pages_demoted_total: int = field(default=0, init=False)
    pages_promoted_total: int = field(default=0, init=False)
    #: Lifetime counters; every allocated page must eventually be freed, so a
    #: clean run ends with ``pages_allocated_total == pages_freed_total``.
    pages_allocated_total: int = field(default=0, init=False)
    pages_freed_total: int = field(default=0, init=False)
    #: Of the pages ever allocated, how many were filled by a KV transfer
    #: from another replica (disaggregated prefill→decode handoff) rather
    #: than by local prefill.  Subset of ``pages_allocated_total``.
    pages_transferred_in_total: int = field(default=0, init=False)
    #: Debug counter: frees of an id whose pages were already released.  A
    #: correct scheduler never double-frees; the counter exists so refcount
    #: bugs can't hide inside the conservation accounting.
    double_free_count: int = field(default=0, init=False)
    _freed_ids: Set[int] = field(default_factory=set, init=False)
    #: Running sum of privately allocated pages; kept in lockstep with
    #: ``_allocated`` so ``used_pages``/``free_pages`` are O(1) instead of
    #: re-summing the allocation table on every admission probe.
    _private_pages: int = field(default=0, init=False)
    _bytes_per_token: float = field(default=0.0, init=False)
    _demoted_bytes_per_token: float = field(default=0.0, init=False)
    _total_pages: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        # Model geometry, KV precision and capacity are all fixed for the
        # manager's lifetime, so the page geometry is computed exactly once.
        # The per-token byte count comes from the preset itself — the single
        # KV-geometry formula every layer shares (see repro.serving.precision).
        self._bytes_per_token = self.system.kv_bytes_per_token(self.model)
        self._demoted_bytes_per_token = self.system.demoted_kv_bytes_per_token(
            self.model)
        self._total_pages = int(self.capacity_bytes
                                // (self._bytes_per_token * self.page_size))

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------
    def bytes_per_token(self) -> float:
        """KV bytes per token across all layers, including dynamic parameters."""
        return self._bytes_per_token

    def bytes_per_page(self) -> float:
        return self._bytes_per_token * self.page_size

    def demoted_bytes_per_page(self) -> float:
        """Byte footprint of one shared page at the demoted 4-bit tier."""
        return self._demoted_bytes_per_token * self.page_size

    @property
    def demotion_supported(self) -> bool:
        """Whether the demoted tier strictly saves bytes on this system.

        Requires paged KV (the tier only applies to shared prefix-cache
        pages) and a native precision above the demoted tier — a KV4 system
        has nothing to shrink, so demotion degenerates to a no-op there.
        """
        return (self.system.paged_kv
                and self._demoted_bytes_per_token < self._bytes_per_token)

    @property
    def total_pages(self) -> int:
        return self._total_pages

    def _reclaimable(self, demoted: int) -> int:
        """Whole free pages the byte savings of ``demoted`` pages amount to.

        Floored so fractional savings never grant capacity that isn't
        physically there; zero demoted pages reclaim exactly zero.
        """
        if demoted <= 0:
            return 0
        gain = self.bytes_per_page() - self.demoted_bytes_per_page()
        return int(demoted * gain // self.bytes_per_page())

    @property
    def reclaimed_pages(self) -> int:
        """Free pages re-granted by the current demoted population."""
        return self._reclaimable(self.demoted_pages)

    @property
    def used_pages(self) -> int:
        return self._private_pages + self.shared_pages - self.reclaimed_pages

    @property
    def free_pages(self) -> int:
        return (self._total_pages - self._private_pages - self.shared_pages
                + self.reclaimed_pages)

    def pages_for_tokens(self, num_tokens: int) -> int:
        """Pages needed to hold ``num_tokens`` tokens of KV state.

        A zero-token probe costs zero pages on every system — non-paged
        systems reserve ``max_seq_len`` up front only for requests that
        actually hold tokens.
        """
        if num_tokens <= 0:
            return 0
        if not self.system.paged_kv:
            # Non-paged systems reserve the whole maximum sequence up front.
            num_tokens = self.max_seq_len
        return -(-num_tokens // self.page_size)  # ceil division

    # ------------------------------------------------------------------
    # Allocation API
    # ------------------------------------------------------------------
    def pages_needed(self, request_id: int, num_tokens: int,
                     shared_pages: int = 0) -> int:
        """Fresh pages a grow-to-``num_tokens`` allocation would consume.

        ``shared_pages`` of the request's footprint are covered by the prefix
        cache's shared pool and need no private allocation.
        """
        target = self.pages_for_tokens(num_tokens) - shared_pages
        return target - self._allocated.get(request_id, 0)

    def can_allocate(self, request_id: int, num_tokens: int,
                     shared_pages: int = 0) -> bool:
        return self.pages_needed(request_id, num_tokens,
                                 shared_pages) <= self.free_pages

    def needs_pages(self, request_id: int, num_tokens: int,
                    shared_pages: int = 0) -> bool:
        """Whether growing to ``num_tokens`` needs at least one fresh page.

        Exactly ``pages_needed(...) > 0``, flattened into one call — this is
        the probe the decode loops make for every running request on every
        iteration, and almost always answer "no" (a decode crosses a page
        boundary once every ``page_size`` steps).
        """
        if num_tokens <= 0:
            target = 0
        elif self.system.paged_kv:
            target = -(-num_tokens // self.page_size)
        else:
            target = -(-self.max_seq_len // self.page_size)
        return target - shared_pages > self._allocated.get(request_id, 0)

    def allocate(self, request_id: int, num_tokens: int,
                 shared_pages: int = 0) -> int:
        """Grow the allocation of ``request_id`` to cover ``num_tokens`` tokens.

        ``shared_pages`` leading pages are served by the prefix cache's
        shared pool, so only the remainder is privately allocated.  Returns
        the number of newly allocated pages.  Raises
        :class:`PageAllocationError` when the cache is full.
        """
        target = self.pages_for_tokens(num_tokens) - shared_pages
        current = self._allocated.get(request_id, 0)
        needed = target - current
        if needed <= 0:
            return 0
        if needed > self.free_pages:
            raise PageAllocationError(
                f"request {request_id} needs {needed} pages, only "
                f"{self.free_pages} free")
        self._allocated[request_id] = target
        self._freed_ids.discard(request_id)
        self._private_pages += needed
        self.pages_allocated_total += needed
        return needed

    def adopt(self, request_id: int, num_tokens: int,
              shared_pages: int = 0) -> int:
        """Allocate pages whose contents arrive via KV transfer, not prefill.

        Identical to :meth:`allocate` — the pages live, count and free the
        same way — but the newly granted pages are additionally tallied in
        ``pages_transferred_in_total`` so a disaggregated run can report how
        much of its KV footprint was imported rather than computed locally.
        """
        adopted = self.allocate(request_id, num_tokens, shared_pages)
        self.pages_transferred_in_total += adopted
        return adopted

    def trim(self, request_id: int, num_tokens: int,
             shared_pages: int = 0) -> int:
        """Shrink ``request_id``'s allocation to cover ``num_tokens`` tokens.

        Speculative decoding's rollback: pages claimed optimistically for a
        drafted block are released again for the tokens verification
        rejected.  Never grows an allocation, and a request already at or
        below the target is untouched; returns the pages freed (tallied in
        ``pages_freed_total``, so conservation accounting stays exact).
        """
        target = max(0, self.pages_for_tokens(num_tokens) - shared_pages)
        current = self._allocated.get(request_id, 0)
        if current <= target:
            return 0
        freed = current - target
        if target == 0:
            self._allocated.pop(request_id)
            self._freed_ids.add(request_id)
        else:
            self._allocated[request_id] = target
        self._private_pages -= freed
        self.pages_freed_total += freed
        return freed

    def free(self, request_id: int) -> int:
        """Release all private pages of a finished request; returns pages freed.

        Freeing an id with no live allocation is distinguished: an id whose
        pages were already released counts as a double-free (see
        ``double_free_count``), an id that never allocated is a legitimate
        no-op (e.g. a request that was fully served by shared pages).
        """
        if request_id in self._allocated:
            freed = self._allocated.pop(request_id)
            self._freed_ids.add(request_id)
            self._private_pages -= freed
            self.pages_freed_total += freed
            return freed
        if request_id in self._freed_ids:
            self.double_free_count += 1
        return 0

    # ------------------------------------------------------------------
    # Shared-page pool (prefix cache)
    # ------------------------------------------------------------------
    def convert_private_to_shared(self, request_id: int) -> None:
        """Move one page of ``request_id`` into the shared pool.

        Used when the prefix cache publishes a freshly prefilled block: the
        page's bytes stay where they are, only ownership changes, so neither
        ``used_pages`` nor the lifetime counters move.
        """
        if self._allocated.get(request_id, 0) <= 0:
            raise ValueError(
                f"request {request_id} has no private page to share")
        self._allocated[request_id] -= 1
        self._private_pages -= 1
        self.shared_pages += 1

    def drop_private_page(self, request_id: int) -> None:
        """Discard one private page (deduplicated against a shared copy)."""
        if self._allocated.get(request_id, 0) <= 0:
            raise ValueError(
                f"request {request_id} has no private page to drop")
        self._allocated[request_id] -= 1
        self._private_pages -= 1
        self.pages_freed_total += 1

    def release_shared_page(self, demoted: bool = False) -> None:
        """Free one shared-pool page (prefix-cache eviction).

        Pass ``demoted=True`` when the evicted block lives at the demoted
        tier so its tier population shrinks with it; the page still counts
        exactly once toward ``pages_freed_total`` — a demoted page is one
        shared page in the conservation ledger.
        """
        if self.shared_pages <= 0:
            raise ValueError("shared pool is empty")
        if demoted:
            if self.demoted_pages <= 0:
                raise ValueError("demoted tier is empty")
            self.demoted_pages -= 1
        self.shared_pages -= 1
        self.pages_freed_total += 1

    # ------------------------------------------------------------------
    # Demoted tier (dynamic KV-cache precision under memory pressure)
    # ------------------------------------------------------------------
    def demote_shared_page(self) -> None:
        """Move one shared page to the demoted 4-bit tier.

        Only tier populations move — ``shared_pages`` and the lifetime
        allocate/free counters are untouched, so conservation holds across
        any demote/promote/evict interleaving.
        """
        if not self.demotion_supported:
            raise ValueError(
                f"system {self.system.name!r} does not support KV demotion")
        if self.demoted_pages >= self.shared_pages:
            raise ValueError("no full-precision shared page to demote")
        self.demoted_pages += 1
        self.pages_demoted_total += 1

    def promote_shared_page(self) -> None:
        """Restore one demoted page to full precision.

        May consume free capacity (the reclaimed fraction is handed back);
        callers must check :meth:`promotion_page_need` fits before promoting.
        """
        if self.demoted_pages <= 0:
            raise ValueError("demoted tier is empty")
        self.demoted_pages -= 1
        self.pages_promoted_total += 1

    def promotion_page_need(self, count: int) -> int:
        """Free pages that promoting ``count`` demoted pages would consume.

        The reclaimed-page grant is floored, so promoting ``count`` pages
        hands back ``reclaimable(d) - reclaimable(d - count)`` whole pages —
        possibly less than the raw byte delta suggests, never more.
        """
        if count <= 0:
            return 0
        count = min(count, self.demoted_pages)
        return (self._reclaimable(self.demoted_pages)
                - self._reclaimable(self.demoted_pages - count))

    def allocated_tokens_capacity(self, request_id: int) -> int:
        return self._allocated.get(request_id, 0) * self.page_size

    def utilization(self) -> float:
        total = self.total_pages
        return 0.0 if total == 0 else self.used_pages / total

    def max_concurrent_requests(self, tokens_per_request: int) -> int:
        """How many requests of a given final length fit simultaneously."""
        pages_each = self.pages_for_tokens(tokens_per_request)
        if pages_each == 0:
            return 0
        return self.total_pages // pages_each
