"""Scheduling policies and iteration planners for the serving simulator.

The serving loop in :mod:`repro.serving.engine` is deliberately policy-free:
every decision that distinguishes one serving system from another lives here,
behind two small abstractions.

``SchedulerPolicy``
    Decides the *order* in which waiting requests are considered for
    admission, whether a blocked request may be bypassed by later arrivals
    (head-of-line bypass), and which running request to evict first when the
    KV cache runs out of pages (preemption victim selection).  Three policies
    ship by default:

    * ``fcfs`` — first-come-first-served with head-of-line bypass: a request
      blocked on pages does not prevent later, smaller requests from being
      admitted.  This matches the seed scheduler's (previously implicit)
      behaviour.
    * ``strict-fcfs`` — admission stops at the first request that cannot be
      admitted, guaranteeing no request is ever overtaken.
    * ``sjf`` — shortest-job-first: requests with the least total work
      (remaining prefill plus remaining output) are admitted first.  Reduces
      mean latency at the cost of potential starvation of long requests.
    * ``cache-aware`` — requests whose prompt has the longest cached prefix
      (see :mod:`repro.serving.prefix_cache`) are admitted first, FCFS among
      equals: a hit-heavy request costs almost no prefill, so admitting it
      early raises goodput and keeps its blocks referenced (un-evictable).

``IterationPlanner``
    Decides what a single model iteration computes.  ``StallPrefillPlanner``
    reproduces the seed engine exactly: newly admitted prompts are prefilled
    in one batched call while the running batch stalls.
    ``ChunkedPrefillPlanner`` implements Sarathi/vLLM-style chunked prefill:
    each iteration carries a bounded budget of prefill tokens *alongside* the
    full decode batch, so decodes never stall and time-between-tokens stays
    bounded.

``SchedulingConfig`` bundles a policy name, planner choice and preemption
switch into a preset; ``SCHEDULING_PRESETS["legacy"]`` is bit-for-bit
equivalent to the seed serving loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.prefix_cache import PrefixCache
    from repro.serving.scheduler import ContinuousBatchingScheduler

__all__ = [
    "SchedulerPolicy",
    "FCFSPolicy",
    "StrictFCFSPolicy",
    "ShortestJobFirstPolicy",
    "CacheAwarePolicy",
    "POLICIES",
    "get_policy",
    "IterationPlan",
    "IterationPlanner",
    "StallPrefillPlanner",
    "ChunkedPrefillPlanner",
    "SchedulingConfig",
    "SCHEDULING_PRESETS",
    "LEGACY_SCHEDULING",
]


# ----------------------------------------------------------------------
# Scheduler policies
# ----------------------------------------------------------------------
class SchedulerPolicy(abc.ABC):
    """Ordering and bypass rules for admission and preemption."""

    #: Registry key; subclasses override.
    name: str = "abstract"
    #: May a request blocked on pages (or the sequence cap) be overtaken by a
    #: later request in admission order?
    allow_bypass: bool = True

    @abc.abstractmethod
    def admission_key(self, request: Request) -> Tuple:
        """Sort key; lower sorts earlier (= higher admission priority)."""

    def admission_order(self, requests: List[Request]) -> List[Request]:
        """Waiting requests in the order admission should consider them."""
        return sorted(requests, key=self.admission_key)

    def victim_order(self, requests: List[Request]) -> List[Request]:
        """Running requests in eviction order: lowest priority first."""
        return sorted(requests, key=self.admission_key, reverse=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FCFSPolicy(SchedulerPolicy):
    """First-come-first-served with head-of-line bypass (seed behaviour)."""

    name = "fcfs"
    allow_bypass = True

    def admission_key(self, request: Request) -> Tuple:
        return (request.arrival_time, request.request_id)


class StrictFCFSPolicy(FCFSPolicy):
    """FCFS without bypass: admission halts at the first blocked request."""

    name = "strict-fcfs"
    allow_bypass = False


class ShortestJobFirstPolicy(SchedulerPolicy):
    """Admit the request with the least remaining work first."""

    name = "sjf"
    allow_bypass = True

    def admission_key(self, request: Request) -> Tuple:
        remaining = (request.prefill_target - request.prefilled) + (
            request.output_len - request.generated)
        return (remaining, request.arrival_time, request.request_id)


class CacheAwarePolicy(SchedulerPolicy):
    """Admit the request with the longest cached prompt prefix first.

    ``prefix_cache`` is bound by the engine stepper when prefix caching is
    enabled; unbound (or with a cold cache) the policy degrades to plain
    FCFS.  Victim selection inherits the reversed admission order, so under
    preemption the *least*-cached running request is evicted first — the one
    whose recompute costs the most cache-able prefill.
    """

    name = "cache-aware"
    allow_bypass = True

    def __init__(self) -> None:
        self.prefix_cache: "PrefixCache | None" = None

    def admission_key(self, request: Request) -> Tuple:
        hit = (self.prefix_cache.lookup_tokens(request)
               if self.prefix_cache is not None else 0)
        return (-hit, request.arrival_time, request.request_id)


POLICIES: Dict[str, Type[SchedulerPolicy]] = {
    cls.name: cls for cls in (FCFSPolicy, StrictFCFSPolicy,
                              ShortestJobFirstPolicy, CacheAwarePolicy)
}


def get_policy(name: str) -> SchedulerPolicy:
    """Instantiate a scheduling policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Iteration planners
# ----------------------------------------------------------------------
@dataclass
class IterationPlan:
    """What one model iteration computes.

    ``prefill_chunks`` pairs each prefilling request with the number of its
    prompt tokens processed this iteration; ``decode`` lists the requests
    that each generate one token.  ``stalled_prefill`` marks the legacy
    whole-prompt batched prefill, which uses the monolithic
    :meth:`repro.serving.engine.ServingEngine.prefill` cost path instead of
    the mixed-iteration path.
    """

    prefill_chunks: List[Tuple[Request, int]] = field(default_factory=list)
    decode: List[Request] = field(default_factory=list)
    stalled_prefill: bool = False

    @property
    def is_empty(self) -> bool:
        return not self.prefill_chunks and not self.decode

    def chunk_pairs(self) -> List[Tuple[int, int]]:
        """Each prefill chunk as the ``(tokens, kv_offset)`` pair the
        engine's mixed-step cost path consumes: a chunk's queries attend to
        the request's cached prefix plus whatever it already prefilled.
        The single source of that mapping — the plain and the speculative
        iteration paths both price chunks through it, so they can never
        drift apart.
        """
        return [(tokens, r.cached_tokens + r.prefilled)
                for r, tokens in self.prefill_chunks]


class IterationPlanner(abc.ABC):
    """Chooses each iteration's prefill/decode composition."""

    @abc.abstractmethod
    def plan(self, scheduler: "ContinuousBatchingScheduler",
             admitted: List[Request]) -> IterationPlan:
        """Build the next iteration's plan from current scheduler state."""


class StallPrefillPlanner(IterationPlanner):
    """Seed behaviour: admitted prompts prefill in full, stalling decodes."""

    def plan(self, scheduler: "ContinuousBatchingScheduler",
             admitted: List[Request]) -> IterationPlan:
        if admitted:
            chunks = [(r, r.prefill_target) for r in admitted]
            return IterationPlan(prefill_chunks=chunks, stalled_prefill=True)
        return IterationPlan(decode=scheduler.decoding_requests())


class ChunkedPrefillPlanner(IterationPlanner):
    """Mix a bounded budget of prefill tokens into every decode iteration.

    ``token_budget`` caps the total tokens per iteration (decode tokens count
    one each); whatever budget the decode batch leaves is handed to waiting
    prefills in scheduler (admission) order.  A prompt therefore streams into
    the batch over several iterations instead of stalling it.
    """

    def __init__(self, token_budget: int = 512) -> None:
        if token_budget <= 0:
            raise ValueError("token_budget must be positive")
        self.token_budget = token_budget
        #: Iteration tokens one decoding request will consume; bound by the
        #: engine stepper when speculative decoding is on (a speculating
        #: request verifies ``lookahead + 1`` rows, not 1), ``None`` counts
        #: each decode as a single token.
        self.decode_token_weight = None

    def plan(self, scheduler: "ContinuousBatchingScheduler",
             admitted: List[Request]) -> IterationPlan:
        decode = scheduler.decoding_requests()
        if self.decode_token_weight is None:
            decode_tokens = len(decode)
        else:
            decode_tokens = sum(self.decode_token_weight(r) for r in decode)
        budget = max(0, self.token_budget - decode_tokens)
        chunks: List[Tuple[Request, int]] = []
        for request in scheduler.prefilling_requests():
            if budget <= 0:
                break
            tokens = min(request.prefill_remaining, budget)
            if tokens > 0:
                chunks.append((request, tokens))
                budget -= tokens
        return IterationPlan(prefill_chunks=chunks, decode=decode)


# ----------------------------------------------------------------------
# Scheduling presets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulingConfig:
    """One complete serving-loop configuration.

    Attributes
    ----------
    policy:
        Key into :data:`POLICIES` selecting the admission/eviction order.
    chunked_prefill:
        When true, use :class:`ChunkedPrefillPlanner` so prefill tokens share
        iterations with decodes; otherwise the legacy stall-the-world prefill.
    prefill_chunk_size:
        Per-iteration token budget for chunked prefill.
    preemption:
        When true, admission reserves pages only for the tokens a request
        currently holds (optimistic) and the scheduler preempts-and-recomputes
        low-priority requests when the cache fills; when false, admission
        conservatively reserves ``prompt_len + output_len`` up front and
        preemption never occurs (seed behaviour).
    prefix_caching:
        When true, the engine attaches a
        :class:`~repro.serving.prefix_cache.PrefixCache` to the scheduler:
        prompt prefixes already resident in the KV cache (shared system
        prompts, chat histories) skip prefill and share ref-counted pages,
        with LRU eviction of unreferenced blocks under page pressure.
        Requires a paged-KV system; off by default — all existing results
        are bitwise-unchanged.
    kv_demotion:
        When true (requires ``prefix_caching``), the prefix cache demotes
        cold unreferenced blocks to the 4-bit KV tier under page pressure
        before resorting to LRU eviction: demoted blocks keep their contents
        hittable at ~1/4 the footprint, and a later hit pays a
        dequantization pass (priced by the engine) to restore them.  A no-op
        on systems already storing KV at 4 bits.  Off by default.
    tier_admission:
        When true, admission becomes SLO-tier aware (multi-tenant serving):
        paid-tier requests admit ahead of free-tier ones, free-tier requests
        are deferred while the replica is under page/queue pressure (see the
        two headroom knobs), a deferred request older than ``tier_aging_s``
        is promoted to paid rank (aging floor, no starvation), and — with
        ``free_tier_drop_after_s`` set — never-admitted free-tier requests
        stuck that long under pressure are dropped (load shedding).  Off by
        default; untagged requests default to the paid tier, so enabling it
        on a tier-less workload changes nothing.
    """

    policy: str = "fcfs"
    chunked_prefill: bool = False
    prefill_chunk_size: int = 512
    preemption: bool = False
    prefix_caching: bool = False
    kv_demotion: bool = False
    tier_admission: bool = False
    free_tier_page_headroom: float = 0.10
    free_tier_seq_headroom: float = 0.25
    tier_aging_s: float = 5.0
    free_tier_drop_after_s: Optional[float] = None

    def build_policy(self) -> SchedulerPolicy:
        return get_policy(self.policy)

    def build_planner(self) -> IterationPlanner:
        if self.chunked_prefill:
            return ChunkedPrefillPlanner(token_budget=self.prefill_chunk_size)
        return StallPrefillPlanner()


#: The seed engine's exact behaviour: conservative FCFS with bypass,
#: whole-prompt stalling prefill, no preemption.
LEGACY_SCHEDULING = SchedulingConfig()

SCHEDULING_PRESETS: Dict[str, SchedulingConfig] = {
    "legacy": LEGACY_SCHEDULING,
    "strict-fcfs": SchedulingConfig(policy="strict-fcfs"),
    "sjf": SchedulingConfig(policy="sjf"),
    "chunked": SchedulingConfig(chunked_prefill=True),
    "chunked-preempt": SchedulingConfig(chunked_prefill=True, preemption=True),
    "prefix": SchedulingConfig(chunked_prefill=True, prefix_caching=True),
    "prefix-aware": SchedulingConfig(chunked_prefill=True, prefix_caching=True,
                                     policy="cache-aware"),
    "prefix-preempt": SchedulingConfig(chunked_prefill=True,
                                       prefix_caching=True, preemption=True),
    "prefix-demote": SchedulingConfig(chunked_prefill=True,
                                      prefix_caching=True, kv_demotion=True),
    "prefix-demote-preempt": SchedulingConfig(
        chunked_prefill=True, prefix_caching=True, preemption=True,
        kv_demotion=True),
    "tiered": SchedulingConfig(chunked_prefill=True, preemption=True,
                               tier_admission=True),
    "tiered-shed": SchedulingConfig(chunked_prefill=True, preemption=True,
                                    tier_admission=True,
                                    free_tier_drop_after_s=20.0),
}
