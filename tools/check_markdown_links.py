#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Walks every ``*.md`` file in the repository, extracts inline links
(``[text](target)``), and verifies that each relative target exists on disk
and — for ``path#anchor`` / ``#anchor`` targets — that the referenced
heading exists in the target file (GitHub-style slugs). External links
(``http(s)://``, ``mailto:``) are ignored; this is a docs-consistency
check, not a crawler.

Usage:  python tools/check_markdown_links.py [repo_root]
Exit status is non-zero when any link is broken, listing every failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline markdown links; images share the syntax modulo a leading ``!``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".benchmarks"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, spaces to hyphens,
    punctuation dropped (backticks and emphasis markers are stripped first)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    slugs: List[str] = []
    without_code = _CODE_FENCE_RE.sub("", markdown)
    for match in _HEADING_RE.finditer(without_code):
        slug = github_slug(match.group(1))
        # GitHub deduplicates repeated headings with -1, -2, ... suffixes.
        if slug in slugs:
            suffix = 1
            while f"{slug}-{suffix}" in slugs:
                suffix += 1
            slug = f"{slug}-{suffix}"
        slugs.append(slug)
    return slugs


def markdown_files(root: Path) -> List[Path]:
    return sorted(path for path in root.rglob("*.md")
                  if not any(part in _SKIP_DIRS for part in path.parts))


def check_file(path: Path, root: Path) -> List[Tuple[str, str]]:
    """Broken links in one file as (target, reason) pairs."""
    text = path.read_text(encoding="utf-8")
    problems: List[Tuple[str, str]] = []
    for target in _LINK_RE.findall(_CODE_FENCE_RE.sub("", text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                problems.append((target, "escapes the repository"))
                continue
            if not resolved.exists():
                problems.append((target, "file does not exist"))
                continue
        else:
            resolved = path
        if anchor:
            if resolved.suffix.lower() != ".md":
                continue  # anchors into non-markdown files: out of scope
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if anchor not in slugs:
                problems.append((target, f"no heading #{anchor} in "
                                 f"{resolved.relative_to(root.resolve())}"))
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    files = markdown_files(root)
    broken = 0
    for path in files:
        for target, reason in check_file(path, root):
            print(f"{path.relative_to(root)}: broken link "
                  f"'{target}' ({reason})")
            broken += 1
    checked = len(files)
    if broken:
        print(f"\n{broken} broken link(s) across {checked} markdown files")
        return 1
    print(f"OK: all intra-repo links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
