"""Tests for the synthetic corpus, perplexity harness and task suites."""

import numpy as np
import pytest

from repro.data import (
    CorpusConfig,
    SyntheticCorpus,
    build_long_context_suite,
    build_zero_shot_suite,
    evaluate_perplexity,
    evaluate_task_accuracy,
    perplexity_from_logits,
    sample_calibration_batches,
)
from repro.data.corpus import bigram_transition_matrix


def test_transition_matrix_is_row_stochastic_and_low_rank():
    matrix, classes = bigram_transition_matrix(64, num_classes=8, seed=0)
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
    assert matrix.min() > 0
    assert classes.shape == (64,)
    assert np.linalg.matrix_rank(matrix) <= 8


def test_corpus_streams_and_chunks(tiny_corpus):
    assert tiny_corpus.train_tokens.size == 4096
    assert tiny_corpus.eval_tokens.size == 1024
    chunks = tiny_corpus.chunks("eval", 128)
    assert len(chunks) == 8 and all(c.size == 128 for c in chunks)
    with pytest.raises(ValueError):
        tiny_corpus.chunks("eval", 10_000)


def test_corpus_is_deterministic():
    cfg = CorpusConfig(vocab_size=64, num_train_tokens=512, num_eval_tokens=128)
    a, b = SyntheticCorpus(cfg), SyntheticCorpus(cfg)
    np.testing.assert_array_equal(a.train_tokens, b.train_tokens)


def test_oracle_perplexity_well_below_uniform(tiny_corpus):
    assert tiny_corpus.oracle_perplexity() < tiny_corpus.config.vocab_size / 4


def test_perplexity_from_logits_uniform():
    vocab = 32
    logits = np.zeros((10, vocab))
    targets = np.zeros(10, dtype=int)
    assert perplexity_from_logits(logits, targets) == pytest.approx(vocab)


def test_model_perplexity_beats_uniform_and_tracks_oracle(tiny_model, tiny_corpus,
                                                          tiny_eval_sequences):
    ppl = evaluate_perplexity(tiny_model, tiny_eval_sequences)
    assert ppl < tiny_corpus.config.vocab_size / 3
    assert ppl > tiny_corpus.oracle_perplexity() * 0.9


def test_calibration_batches_shape(tiny_corpus):
    batches = sample_calibration_batches(tiny_corpus, num_batches=5, seq_len=32)
    assert len(batches) == 5 and all(b.size == 32 for b in batches)
    with pytest.raises(ValueError):
        sample_calibration_batches(tiny_corpus, seq_len=10**6)


def test_zero_shot_suite_structure(tiny_corpus):
    suite = build_zero_shot_suite(tiny_corpus, num_examples_per_task=3, seed=0)
    assert len(suite) == 5
    for examples in suite.values():
        assert len(examples) == 3
        for ex in examples:
            assert 0 <= ex.answer < len(ex.choices)


def test_long_context_suite_has_needle_at_end(tiny_corpus):
    suite = build_long_context_suite(tiny_corpus, num_examples_per_task=2,
                                     context_len=64, seed=0)
    for examples in suite.values():
        for ex in examples:
            needle = ex.choices[ex.answer]
            np.testing.assert_array_equal(ex.context[-needle.size:], needle)


def test_task_accuracy_better_than_chance(tiny_model, tiny_corpus):
    suite = build_zero_shot_suite(tiny_corpus, num_examples_per_task=8,
                                  num_choices=4, seed=1)
    acc = evaluate_task_accuracy(tiny_model, suite)
    assert acc["Avg."] > 0.3  # chance is 0.25 for 4 choices
    assert set(acc) == {"PQ", "ARC-e", "ARC-c", "HS", "WG", "Avg."}
