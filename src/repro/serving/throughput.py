"""Maximum-achievable-throughput measurement (Table 4, Figures 15/17).

The paper's efficiency metric is the generation throughput (tokens/second)
each system reaches when it is allowed to grow its batch as large as the
device memory permits, for a workload of 1024-token prompts and 512-token
outputs.  The functions here (a) find that largest feasible batch from the
weight/KV memory model and (b) run the serving loop at a given batch size to
measure throughput.

Every entry point accepts a :class:`repro.serving.parallel.ParallelConfig`;
:func:`tp_sweep` runs the same measurement across tensor-parallel degrees,
which is how Table 4's "OOM" entries (batch 0: the weights alone overflow
one device) become servable — a 70B-class FP16 model fits nowhere on a
single 80 GB GPU but serves fine at ``tp >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gpu.specs import GPUSpec, InterconnectSpec, NVLINK
from repro.model.config import ModelConfig
from repro.serving.engine import ServingEngine, ServingResult  # noqa: F401  (re-exported for callers)
from repro.serving.parallel import ParallelConfig
from repro.serving.policies import SchedulingConfig
from repro.serving.precision import SystemConfig
from repro.serving.request import make_uniform_workload

__all__ = [
    "ThroughputResult",
    "max_achievable_batch",
    "measure_throughput",
    "max_achievable_throughput",
    "tp_sweep",
]

#: Hard cap on concurrent sequences, mirroring real serving configurations.
MAX_SEQS_CAP = 256


@dataclass
class ThroughputResult:
    """Throughput measurement for one (model, GPU, system) triple."""

    system: str
    model: str
    gpu: str
    batch: int
    tokens_per_second: float
    serving: ServingResult
    tp_degree: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tp = f" tp={self.tp_degree}" if self.tp_degree > 1 else ""
        return (f"{self.model} on {self.gpu}{tp} [{self.system}]: "
                f"{self.tokens_per_second:.0f} tok/s @ batch {self.batch}")


def max_achievable_batch(model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                         prompt_len: int = 1024, output_len: int = 512,
                         cap: int = MAX_SEQS_CAP,
                         parallel: Optional[ParallelConfig] = None) -> int:
    """Largest number of concurrent requests that fits in device memory.

    A request ultimately occupies ``prompt_len + output_len`` tokens of KV
    cache; the engine's memory model (weights at the system's storage
    precision plus activation workspace, sharded across ``parallel``'s TP
    group) determines how many such requests fit.  Returns 0 when even the
    weights do not fit (the "OOM" entries of Table 4).
    """
    engine = ServingEngine(model, gpu, system, max_seq_len=prompt_len + output_len,
                           parallel=parallel)
    if engine.kv_capacity_bytes() <= 0:
        return 0
    manager = engine.new_kv_manager()
    batch = manager.max_concurrent_requests(prompt_len + output_len)
    return int(min(batch, cap))


def measure_throughput(model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                       batch: int, prompt_len: int = 1024, output_len: int = 512,
                       num_requests: Optional[int] = None,
                       scheduling: Optional[SchedulingConfig] = None,
                       parallel: Optional[ParallelConfig] = None) -> ThroughputResult:
    """Serve a uniform workload at a fixed concurrency and report throughput.

    ``scheduling`` selects a :class:`SchedulingConfig` preset (policy,
    chunked prefill, preemption); the default is the legacy stall-prefill
    conservative-FCFS loop the paper's Table 4 numbers are measured with.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    engine = ServingEngine(model, gpu, system, max_seq_len=prompt_len + output_len,
                           parallel=parallel)
    workload = make_uniform_workload(num_requests or batch, prompt_len, output_len)
    result = engine.serve(workload, max_num_seqs=batch, scheduling=scheduling)
    return ThroughputResult(
        system=system.name, model=model.name, gpu=gpu.name, batch=batch,
        tokens_per_second=result.generation_throughput, serving=result,
        tp_degree=engine.tp_degree)


def max_achievable_throughput(model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                              prompt_len: int = 1024, output_len: int = 512,
                              scheduling: Optional[SchedulingConfig] = None,
                              parallel: Optional[ParallelConfig] = None) -> ThroughputResult:
    """Throughput at the largest memory-feasible batch (the Table 4 metric).

    Returns a result with zero throughput and batch 0 when the model does not
    fit on the device under the system's weight precision (reported as "OOM"
    in the paper).
    """
    batch = max_achievable_batch(model, gpu, system, prompt_len, output_len,
                                 parallel=parallel)
    if batch == 0:
        return ThroughputResult(
            system=system.name, model=model.name, gpu=gpu.name, batch=0,
            tokens_per_second=0.0,
            serving=ServingResult(total_time_s=0.0, generated_tokens=0,
                                  prompt_tokens=0, peak_batch=0, num_iterations=0),
            tp_degree=(parallel or ParallelConfig()).tp_degree)
    return measure_throughput(model, gpu, system, batch, prompt_len, output_len,
                              scheduling=scheduling, parallel=parallel)


def tp_sweep(model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
             tp_degrees: Sequence[int] = (1, 2, 4, 8),
             prompt_len: int = 1024, output_len: int = 512,
             interconnect: Optional[InterconnectSpec] = None,
             scheduling: Optional[SchedulingConfig] = None) -> List[ThroughputResult]:
    """Max-achievable throughput across tensor-parallel degrees.

    Degrees the model does not shard evenly across (head counts or FFN width
    not divisible) are skipped, so sweeping ``(1, 2, 4, 8)`` over the whole
    model zoo is safe.  ``interconnect`` defaults to NVLink; pass
    :data:`repro.gpu.specs.PCIE_GEN4` to model boards without it.
    """
    results: List[ThroughputResult] = []
    for tp in tp_degrees:
        parallel = ParallelConfig(tp_degree=tp,
                                  interconnect=interconnect or NVLINK)
        try:
            parallel.validate_for(model)
        except ValueError:
            continue
        results.append(max_achievable_throughput(
            model, gpu, system, prompt_len, output_len,
            scheduling=scheduling, parallel=parallel))
    return results
