"""Table 4 / Figure 15 — maximum achievable serving throughput.

For every model of the paper's benchmark suite and both GPUs, the maximum
achievable generation throughput (1024-token prompts, 512-token outputs, same
device memory budget) is measured for TensorRT-LLM FP16 / W4A16 / W8A8, Atom,
QuaRot and QServe (per-channel on A100, per-group on L40S, following the
paper's choice).  The speedup column normalises QServe against the best
TensorRT-LLM configuration, which is how Table 4 reports it.

The artifact-appendix Table 6 (QServe vs TRT-W8A8 for three models on A100) is
a sub-selection of the same data and is exposed through ``run_table6``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import A100, GPUSpec, L40S
from repro.model import get_config
from repro.serving import SYSTEM_PRESETS, max_achievable_throughput

__all__ = ["PAPER_MODELS", "run", "run_table6", "run_fig15_speedups"]

#: The eight models of Table 4, in the paper's column order.
PAPER_MODELS = (
    "llama-3-8b", "llama-2-7b", "mistral-7b", "llama-2-13b",
    "llama-30b", "yi-34b", "llama-2-70b", "qwen1.5-72b",
)

_TRT_SYSTEMS = ("trt-fp16", "trt-w4a16", "trt-w8a8")


def _qserve_system(gpu: GPUSpec) -> str:
    """Per-channel QServe on A100, per-group on L40S (Section 6.3)."""
    return "qserve-w4a8kv4-chn" if gpu.name == "A100" else "qserve-w4a8kv4-grp"


def run(gpu: GPUSpec = A100, models: Sequence[str] = PAPER_MODELS,
        include_w4a4: bool = True) -> ExperimentReport:
    systems = list(_TRT_SYSTEMS) + (["atom-w4a4", "quarot-w4a4"] if include_w4a4 else [])
    qserve = _qserve_system(gpu)
    headers = ["Model", *systems, "QServe", "Speedup vs best TRT"]
    report = ExperimentReport(
        experiment_id="table4",
        title=f"Max achievable throughput on {gpu.name} (tokens/s); 0 = OOM",
        headers=headers,
        notes="Speedup is QServe over the best TensorRT-LLM precision, as in Table 4.",
    )
    for model_name in models:
        cfg = get_config(model_name)
        row: Dict[str, float] = {}
        for system in systems:
            row[system] = max_achievable_throughput(
                cfg, gpu, SYSTEM_PRESETS[system]).tokens_per_second
        qserve_tput = max_achievable_throughput(
            cfg, gpu, SYSTEM_PRESETS[qserve]).tokens_per_second
        best_trt = max(row[s] for s in _TRT_SYSTEMS)
        speedup = qserve_tput / best_trt if best_trt > 0 else float("inf")
        report.add_row(model_name, *[row[s] for s in systems], qserve_tput, speedup)
    return report


def run_fig15_speedups(models: Sequence[str] = PAPER_MODELS) -> ExperimentReport:
    """Figure 15: QServe speedup over the best TRT-LLM config on both GPUs."""
    report = ExperimentReport(
        experiment_id="fig15",
        title="QServe speedup over best TensorRT-LLM configuration",
        headers=["Model", "A100 speedup", "L40S speedup"],
    )
    per_gpu = {gpu.name: run(gpu, models=models, include_w4a4=False)
               for gpu in (A100, L40S)}
    for model_name in models:
        speedups = []
        for gpu_name in ("A100", "L40S"):
            row = per_gpu[gpu_name].row_by("Model", model_name)
            speedups.append(row[-1])
        report.add_row(model_name, *speedups)
    geo_a = _geomean([r[1] for r in report.rows if r[1] != float("inf")])
    geo_l = _geomean([r[2] for r in report.rows if r[2] != float("inf")])
    report.notes = f"Geometric-mean speedup: A100 {geo_a:.2f}x, L40S {geo_l:.2f}x."
    report.extra["geomean"] = {"A100": geo_a, "L40S": geo_l}
    return report


def run_table6(models: Sequence[str] = ("llama-3-8b", "llama-2-7b", "mistral-7b"),
               gpu: GPUSpec = A100) -> ExperimentReport:
    """Artifact-appendix Table 6: QServe vs TRT-LLM W8A8 on A100."""
    report = ExperimentReport(
        experiment_id="table6",
        title="Artifact Table 6: generation throughput (tokens/s) on A100",
        headers=["Model", "TensorRT-LLM (W8A8KV8)", "QServe", "Speedup"],
    )
    for model_name in models:
        cfg = get_config(model_name)
        trt = max_achievable_throughput(cfg, gpu, SYSTEM_PRESETS["trt-w8a8"])
        qserve = max_achievable_throughput(cfg, gpu, SYSTEM_PRESETS[_qserve_system(gpu)])
        speedup = (qserve.tokens_per_second / trt.tokens_per_second
                   if trt.tokens_per_second else float("inf"))
        report.add_row(model_name, trt.tokens_per_second, qserve.tokens_per_second,
                       speedup)
    return report


def _geomean(values) -> float:
    import numpy as np
    values = [v for v in values if v > 0]
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


if __name__ == "__main__":  # pragma: no cover
    print(run(A100).to_text("{:.0f}"))
    print(run(L40S).to_text("{:.0f}"))
    print(run_fig15_speedups().to_text("{:.2f}"))
    print(run_table6().to_text("{:.0f}"))
