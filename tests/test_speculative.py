"""Tests for the speculative decoding subsystem: acceptance profiles and
seeded per-request sampling, draft/verify cost pricing, optimistic KV claims
with trim-on-reject rollback, multi-token scheduler commits, engine and
cluster integration, run determinism, and page conservation across
accept/reject/preempt interleavings."""

import numpy as np
import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ACCEPTANCE_PROFILES,
    AcceptanceProfile,
    AcceptanceSampler,
    ClusterEngine,
    EngineStepper,
    ParallelConfig,
    Request,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    SpeculativeConfig,
    SpeculativeDecoder,
    Workload,
    get_acceptance_profile,
    make_shared_prefix_workload,
    make_uniform_workload,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


@pytest.fixture(scope="module")
def draft():
    return get_config("llama-160m")


def _engine(llama7b, max_seq_len=1024):
    return ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=max_seq_len)


def _spec(draft, **kwargs):
    kwargs.setdefault("profile", "low-entropy")
    return SpeculativeConfig(draft_model=draft, **kwargs)


# ----------------------------------------------------------------------
# Profiles and config validation
# ----------------------------------------------------------------------
def test_acceptance_profile_validation():
    with pytest.raises(ValueError):
        AcceptanceProfile("bad", base_rate=1.0)
    with pytest.raises(ValueError):
        AcceptanceProfile("bad", base_rate=0.5, position_decay=0.0)
    with pytest.raises(ValueError):
        AcceptanceProfile("bad", base_rate=0.5, rate_jitter=-0.1)
    with pytest.raises(KeyError):
        get_acceptance_profile("nonexistent")
    assert get_acceptance_profile("chat") is ACCEPTANCE_PROFILES["chat"]


def test_speculative_config_validation(draft):
    with pytest.raises(ValueError):
        SpeculativeConfig(draft_model=draft, lookahead=0)
    with pytest.raises(ValueError):
        SpeculativeConfig(draft_model=draft, min_lookahead=4, max_lookahead=2)
    with pytest.raises(ValueError):
        SpeculativeConfig(draft_model=draft, lookahead=9, max_lookahead=8)
    config = SpeculativeConfig(draft_model=draft, profile="code",
                               draft_system="trt-w4a16")
    assert config.resolved_profile().name == "code"
    assert config.resolved_system().name == "trt-w4a16"


# ----------------------------------------------------------------------
# Acceptance sampler
# ----------------------------------------------------------------------
def test_sampler_seeded_and_per_request():
    profile = ACCEPTANCE_PROFILES["chat"]
    a = AcceptanceSampler(profile, seed=7)
    b = AcceptanceSampler(profile, seed=7)
    draws_a = [a.sample(3, 4) for _ in range(50)]
    draws_b = [b.sample(3, 4) for _ in range(50)]
    assert draws_a == draws_b                       # same seed, same stream
    assert all(0 <= d <= 4 for d in draws_a)
    assert a.sample(3, 0) == 0
    # Independent per-request streams: another id draws differently, and the
    # jittered per-request rates stay clipped to (0, 1).
    c = AcceptanceSampler(profile, seed=7)
    assert [c.sample(4, 4) for _ in range(50)] != draws_a
    rates = [AcceptanceSampler(profile, seed=1).request_rate(i)
             for i in range(100)]
    assert all(0.02 <= r <= 0.98 for r in rates)
    assert len(set(rates)) > 10                     # genuinely jittered


def test_sampler_acceptance_tracks_profile():
    k = 6
    means = {}
    for name in ("high-entropy", "chat", "low-entropy"):
        sampler = AcceptanceSampler(ACCEPTANCE_PROFILES[name], seed=0)
        draws = [sampler.sample(i, k) for i in range(200) for _ in range(5)]
        means[name] = np.mean(draws)
    assert means["high-entropy"] < means["chat"] < means["low-entropy"]


# ----------------------------------------------------------------------
# Cost pricing
# ----------------------------------------------------------------------
def test_verify_step_reuses_chunk_path_plus_full_lm_head(llama7b):
    engine = _engine(llama7b)
    verify = [(5, 512)] * 8
    step = engine.speculative_verify_step(verify)
    base = engine.mixed_step(list(verify), 0, 0)
    lm = engine._lm_head_latency(40) / engine.system.runtime_efficiency
    assert step.total == pytest.approx(base.total + lm)
    assert step.attention == base.attention
    # More drafted tokens per request cost more to verify.
    deeper = engine.speculative_verify_step([(9, 512)] * 8)
    assert deeper.total > step.total
    with pytest.raises(ValueError):
        engine.speculative_verify_step([])


def test_draft_reservation_shrinks_kv_pool(llama7b, draft):
    engine = _engine(llama7b)
    plain = EngineStepper(engine)
    spec = EngineStepper(engine, speculative=_spec(draft))
    assert spec.scheduler.kv_manager.total_pages < plain.scheduler.kv_manager.total_pages
    # A draft that is bigger on both axes (weights *and* KV bytes per token)
    # reserves more: llama-68m vs tinyllama-1.1b.
    small = EngineStepper(engine, speculative=_spec(get_config("llama-68m")))
    bigger = EngineStepper(engine, speculative=_spec(get_config("tinyllama-1.1b")))
    assert bigger.scheduler.kv_manager.total_pages < small.scheduler.kv_manager.total_pages
    # The replicated draft holds weights *and* shadow KV on every GPU of a
    # TP group, so at tp > 1 the target's share of the pool shrinks further.
    decoder = spec.spec
    tp2_engine = ServingEngine(llama7b, A100,
                               SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                               max_seq_len=1024,
                               parallel=ParallelConfig(tp_degree=2))
    tp2 = SpeculativeDecoder(tp2_engine, decoder.config)
    base = 10.0 * (1 << 30)
    assert tp2.usable_kv_capacity(base) < decoder.usable_kv_capacity(base)


# ----------------------------------------------------------------------
# KV manager trim (speculative rollback)
# ----------------------------------------------------------------------
def test_trim_releases_rejected_pages(llama7b):
    from repro.serving import PagedKVCacheManager, get_system
    mgr = PagedKVCacheManager(model=llama7b,
                              system=get_system("qserve-w4a8kv4-chn"),
                              capacity_bytes=1 << 30, page_size=16,
                              max_seq_len=1024)
    mgr.allocate(0, 16 * 10)                      # 10 pages: context + draft
    assert mgr.trim(0, 16 * 7) == 3               # verification kept 7 pages
    assert mgr.used_pages == 7
    assert mgr.trim(0, 16 * 7) == 0               # idempotent
    assert mgr.trim(0, 16 * 9) == 0               # never grows
    assert mgr.pages_allocated_total == 10
    assert mgr.pages_freed_total == 3
    mgr.free(0)
    assert mgr.pages_allocated_total == mgr.pages_freed_total == 10
    assert mgr.double_free_count == 0


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def test_high_acceptance_cuts_mean_tpot(llama7b, draft):
    """Acceptance criterion: at a high-acceptance profile, speculation beats
    the non-speculative baseline on mean TPOT at equal hardware."""
    engine = _engine(llama7b)
    workload = make_uniform_workload(16, prompt_len=512, output_len=256)
    base = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                        scheduling=SCHEDULING_PRESETS["chunked"])
    spec = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                        scheduling=SCHEDULING_PRESETS["chunked"],
                        speculative=_spec(draft, lookahead=4))
    assert spec.generated_tokens == base.generated_tokens == 16 * 256
    assert spec.num_finished == 16
    assert spec.metrics.tpot.mean < base.metrics.tpot.mean
    assert spec.tokens_per_iteration > base.tokens_per_iteration
    stats = spec.spec_stats
    assert stats is not None
    assert 0.0 < stats.acceptance_rate <= 1.0
    assert stats.mean_accepted_per_step > 0.0
    assert stats.speedup > 1.0
    assert stats.committed_tokens == spec.generated_tokens
    assert base.spec_stats is None
    # Per-request counters surface in the metrics.
    assert spec.metrics.acceptance_rate == pytest.approx(stats.acceptance_rate)
    assert spec.metrics.draft_proposed_tokens == stats.proposed_tokens


def test_speculation_works_under_legacy_stall_prefill(llama7b, draft):
    engine = _engine(llama7b, max_seq_len=512)
    workload = make_uniform_workload(4, prompt_len=128, output_len=64)
    result = engine.serve(workload, max_num_seqs=4,
                          speculative=_spec(draft))
    assert result.num_finished == 4
    assert result.generated_tokens == 4 * 64
    assert result.spec_stats.spec_steps > 0


def test_default_off_is_unperturbed_by_speculative_runs(llama7b, draft):
    """A speculative run leaves no state behind: baseline results before and
    after are identical ServingResults (dataclass equality, exact floats)."""
    engine = _engine(llama7b)
    workload = make_uniform_workload(8, prompt_len=256, output_len=64,
                                     arrival_rate=100.0, seed=3)
    before = engine.serve(workload.copy_fresh(), max_num_seqs=4,
                          scheduling=SCHEDULING_PRESETS["chunked"])
    engine.serve(workload.copy_fresh(), max_num_seqs=4,
                 scheduling=SCHEDULING_PRESETS["chunked"],
                 speculative=_spec(draft))
    after = engine.serve(workload.copy_fresh(), max_num_seqs=4,
                         scheduling=SCHEDULING_PRESETS["chunked"])
    assert before == after


def test_two_identical_speculative_runs_are_identical(llama7b, draft,
                                                      monkeypatch):
    """Determinism: the acceptance sampler is the only stochastic serving
    component and it is explicitly seeded, so two identical runs — here with
    adaptive lookahead, chunked prefill *and* preemption in play — produce
    identical ServingResults."""
    engine = _engine(llama7b, max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 1.2 * (1 << 30))
    workload = make_uniform_workload(12, prompt_len=1024, output_len=256,
                                     arrival_rate=40.0, seed=5)
    config = _spec(draft, lookahead=4, adaptive=True, profile="chat", seed=11)
    runs = [engine.serve(workload.copy_fresh(), max_num_seqs=12,
                         scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                         speculative=config)
            for _ in range(2)]
    assert runs[0] == runs[1]
    assert runs[0].spec_stats.spec_steps > 0


def test_zero_output_rejected_and_single_token_decodes_plainly(llama7b, draft):
    """Edge cases of multi-token commits: zero-output requests are rejected
    at the boundary, and a single-token request inside a speculative batch
    never drafts (lookahead clamps to 0) yet finishes in one commit."""
    with pytest.raises(ValueError):
        Request(request_id=0, prompt_len=16, output_len=0)
    engine = _engine(llama7b, max_seq_len=512)
    one = Request(request_id=0, prompt_len=128, output_len=1)
    many = Request(request_id=1, prompt_len=128, output_len=64)
    result = engine.serve(Workload(requests=[one, many]), max_num_seqs=2,
                          scheduling=SCHEDULING_PRESETS["chunked"],
                          speculative=_spec(draft, lookahead=8))
    assert result.num_finished == 2
    assert one.generated == 1 and one.spec_steps == 0
    assert one.draft_proposed == 0
    assert many.generated == 64 and many.spec_steps > 0


def test_commits_never_overshoot_output_len(llama7b, draft):
    engine = _engine(llama7b, max_seq_len=512)
    requests = [Request(request_id=i, prompt_len=64, output_len=3 + i)
                for i in range(4)]
    result = engine.serve(Workload(requests=requests), max_num_seqs=4,
                          scheduling=SCHEDULING_PRESETS["chunked"],
                          speculative=_spec(draft, lookahead=8))
    assert result.num_finished == 4
    for request in requests:
        assert request.generated == request.output_len
    assert result.generated_tokens == sum(3 + i for i in range(4))


def test_stepper_horizon_with_speculation(llama7b, draft):
    """Horizon handling is unchanged by speculation: an idle stepper never
    jumps past the horizon to a later arrival, and a bounded run_until only
    overshoots by atomic iterations."""
    engine = _engine(llama7b, max_seq_len=512)
    stepper = EngineStepper(engine, scheduling=SCHEDULING_PRESETS["chunked"],
                            speculative=_spec(draft))
    stepper.submit([Request(request_id=0, prompt_len=64, output_len=32,
                            arrival_time=5.0)])
    assert stepper.step(horizon=1.0) is False
    assert stepper.now == 0.0
    assert stepper.step(horizon=10.0) is True
    assert stepper.now == 5.0
    stepper.submit([Request(request_id=1, prompt_len=64, output_len=1,
                            arrival_time=1000.0)])
    stepper.run_until(6.0)
    # The first request's work may overshoot 6.0 (iterations are atomic) but
    # the idle jump to t=1000 must not have happened.
    assert stepper.now < 1000.0
    stepper.run()
    assert stepper.done
    assert stepper.generated == 32 + 1


def test_draft_prefill_catchup_is_priced(llama7b, draft):
    """The draft's shadow KV is never free: the first speculative iteration
    pays a draft prefill of the whole context, steady state pays a one-token
    catch-up, and a preemption forces a full draft rebuild."""
    engine = _engine(llama7b)
    decoder = SpeculativeDecoder(engine, _spec(draft, lookahead=4))
    request = Request(request_id=0, prompt_len=512, output_len=256)
    request.generated = 1
    first = decoder.run_iteration([request], [])
    request.generated += first.commits[0]
    second = decoder.run_iteration([request], [])
    assert first.latency_s > second.latency_s      # 512-token draft prefill
    # Preemption reclaims the draft's shadow KV with the target's pages, so
    # the next speculation pays the full draft rebuild again.
    request.generated += second.commits[0]
    request.preemptions += 1
    third = decoder.run_iteration([request], [])
    assert third.latency_s > second.latency_s


def test_chunked_budget_charges_speculative_rows(llama7b):
    """The chunked planner's per-iteration token budget must count a
    speculating request as its whole verified block (lookahead + 1 rows),
    not as one token — otherwise speculation silently blows the cap."""
    from repro.serving import (ChunkedPrefillPlanner,
                               ContinuousBatchingScheduler,
                               PagedKVCacheManager, get_system)
    mgr = PagedKVCacheManager(model=llama7b,
                              system=get_system("qserve-w4a8kv4-chn"),
                              capacity_bytes=1 << 30, page_size=16,
                              max_seq_len=1024)
    scheduler = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8)
    decoding = Request(request_id=0, prompt_len=64, output_len=64)
    prefilling = Request(request_id=1, prompt_len=256, output_len=16)
    scheduler.submit([decoding, prefilling])
    scheduler.admit(now=0.0)
    scheduler.record_prefill(decoding, 64, now=0.0)
    planner = ChunkedPrefillPlanner(token_budget=16)
    plan = planner.plan(scheduler, [])
    assert plan.prefill_chunks[0][1] == 15           # 16 - 1 decode token
    planner.decode_token_weight = lambda r: 5        # k=4 speculation
    plan = planner.plan(scheduler, [])
    assert plan.prefill_chunks[0][1] == 11           # 16 - (4 + 1) rows
    # The stepper binds the weight automatically when speculation is on.
    draft = get_config("llama-160m")
    stepper = EngineStepper(_engine(llama7b),
                            scheduling=SCHEDULING_PRESETS["chunked"],
                            speculative=_spec(draft, lookahead=4))
    assert stepper.planner.decode_token_weight is not None
    assert EngineStepper(_engine(llama7b),
                         scheduling=SCHEDULING_PRESETS["chunked"]
                         ).planner.decode_token_weight is None


# ----------------------------------------------------------------------
# Page conservation and prefix-cache invariants
# ----------------------------------------------------------------------
def test_page_conservation_across_accept_reject_preempt(llama7b, draft,
                                                        monkeypatch):
    """Speculative claims, trims and preemptions interleave without leaking
    or double-freeing a single page."""
    engine = _engine(llama7b, max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 1.1 * (1 << 30))
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                            speculative=_spec(draft, lookahead=4,
                                              profile="chat"))
    workload = make_uniform_workload(12, prompt_len=1024, output_len=256)
    stepper.submit(list(workload.requests))
    stepper.run()
    result = stepper.result(workload)
    assert result.num_finished == 12
    assert result.num_preemptions > 0              # pressure actually fired
    assert result.spec_stats.accepted_tokens < result.spec_stats.proposed_tokens
    kv = stepper.scheduler.kv_manager
    assert kv.used_pages == 0
    assert kv.pages_allocated_total == kv.pages_freed_total > 0
    assert kv.double_free_count == 0


def test_speculation_respects_prefix_cache_refcounts(llama7b, draft):
    """Speculated-token pages are private growth past the shared prefix, so
    trim-on-reject can never touch a ref-counted shared block."""
    engine = _engine(llama7b, max_seq_len=1024)
    workload = make_shared_prefix_workload(12, shared_prefix_len=256,
                                           unique_len=64, output_len=48,
                                           arrival_rate=30.0, seed=4)
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["prefix-preempt"],
                            speculative=_spec(draft, lookahead=4))
    stepper.submit(list(workload.requests))
    stepper.run()
    result = stepper.result(workload)
    assert result.num_finished == 12
    assert result.cache_hit_rate > 0.0
    assert result.spec_stats.spec_steps > 0
    kv = stepper.scheduler.kv_manager
    cache = stepper.prefix_cache
    assert cache.total_ref_count == 0
    # Shared blocks survive the run; everything else returned to the pool.
    assert kv.used_pages == kv.shared_pages == cache.cached_pages
    assert kv.pages_allocated_total - kv.pages_freed_total == kv.used_pages
    assert kv.double_free_count == 0


# ----------------------------------------------------------------------
# Adaptive (acceptance-aware) lookahead
# ----------------------------------------------------------------------
def test_adaptive_lookahead_tracks_acceptance(llama7b, draft):
    engine = _engine(llama7b)
    grow = SpeculativeDecoder(engine, _spec(
        draft, lookahead=2, adaptive=True, max_lookahead=8, seed=0,
        profile=AcceptanceProfile("sure", base_rate=0.98,
                                  position_decay=0.999)))
    shrink = SpeculativeDecoder(engine, _spec(
        draft, lookahead=8, adaptive=True, max_lookahead=8, seed=1,
        profile=AcceptanceProfile("hopeless", base_rate=0.02)))
    request = Request(request_id=0, prompt_len=64, output_len=512)
    request.generated = 1
    grow_ks, shrink_ks = [], []
    for _ in range(15):
        grow_ks.append(grow.lookahead_for(request))
        grow.run_iteration([request], [])
        shrink_ks.append(shrink.lookahead_for(request))
        shrink.run_iteration([request], [])
    assert max(grow_ks) == 8                       # climbed to the cap
    assert grow_ks[-1] > grow_ks[0]
    assert min(shrink_ks) == 1                     # collapsed to the floor
    assert shrink_ks[-1] < shrink_ks[0]
    static = SpeculativeDecoder(engine, _spec(draft, lookahead=4))
    assert static.lookahead_for(request) == 4
    # Clamp: one token remaining means no drafting at all.
    request.generated = request.output_len - 1
    assert grow.lookahead_for(request) == 0


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------
def test_cluster_speculation_on_mixed_replicas(llama7b, draft):
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=2, max_seq_len=1024)
    workload = make_uniform_workload(12, prompt_len=256, output_len=64,
                                     arrival_rate=50.0, seed=2)
    result = cluster.serve(workload, router="least-outstanding",
                           max_num_seqs=4,
                           scheduling=SCHEDULING_PRESETS["chunked"],
                           speculative=_spec(draft))
    assert result.num_finished == 12
    assert result.acceptance_rate > 0.0
    assert all(r.spec_stats is not None for r in result.replica_results)


def test_disaggregated_speculation_runs_on_decode_tier_only(llama7b, draft):
    roles = ["prefill", "decode", "decode"]
    cluster = ClusterEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=3, max_seq_len=1024, roles=roles)
    workload = make_uniform_workload(12, prompt_len=256, output_len=64,
                                     arrival_rate=50.0, seed=2)
    result = cluster.serve(workload, router="disaggregated", max_num_seqs=4,
                           scheduling=SCHEDULING_PRESETS["chunked"],
                           speculative=_spec(draft))
    assert result.num_finished == 12
    assert result.num_migrations == 12
    assert result.acceptance_rate > 0.0
    prefill_result = result.replica_results[0]
    assert prefill_result.spec_stats is None       # prefill tier hosts no draft
    decode_stats = [r.spec_stats for r in result.replica_results[1:]]
    assert all(s is not None for s in decode_stats)
    assert sum(s.committed_tokens for s in decode_stats) == 12 * 64
