"""The NumPy causal transformer used by every accuracy experiment.

``TransformerModel`` executes a Llama-style forward pass.  Three hooks make it
the substrate for quantization research:

* **pluggable linears** — every projection is an object with the
  :class:`repro.model.layers.Linear` call interface, so quantization pipelines
  swap projections for fake-quant or integer implementations
  (:mod:`repro.model.quantized`) without touching the forward pass;
* **KV-cache quantization** — the forward pass threads a
  :class:`repro.quant.kv_quant.KVQuantConfig` into each layer's
  :class:`repro.model.attention.KVCache`;
* **calibration recording** — a :class:`CalibrationRecorder` captures the
  per-linear input statistics and post-RoPE Key/Query samples that the QoQ
  calibration passes (rotation, smoothing, reordering, clipping,
  SmoothAttention) need.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.model.attention import AttentionConfig, KVCache, multi_head_attention
from repro.model.config import ModelConfig
from repro.model.layers import Linear, rms_norm, softmax, swiglu
from repro.model.rope import RotaryEmbedding, apply_rope
from repro.quant.kv_quant import KVQuantConfig

__all__ = ["BlockWeights", "CalibrationRecorder", "ForwardConfig", "TransformerModel"]

#: Linear layers that consume the *block input* (post-norm activations);
#: rotation (Section 4.3.1) applies to these.
INPUT_MODULE_SUFFIXES = ("q_proj", "k_proj", "v_proj", "gate_proj", "up_proj")

#: Linear layers that produce the *block output*; smoothing (Section 4.3.2)
#: applies to these.
OUTPUT_MODULE_SUFFIXES = ("o_proj", "down_proj")


@dataclass
class BlockWeights:
    """Weights of one transformer block."""

    attn_norm: np.ndarray
    q_proj: Linear
    k_proj: Linear
    v_proj: Linear
    o_proj: Linear
    ffn_norm: np.ndarray
    gate_proj: Linear
    up_proj: Linear
    down_proj: Linear

    def linears(self) -> Dict[str, Linear]:
        """Name → layer mapping (names are the suffixes used throughout QoQ)."""
        return {
            "q_proj": self.q_proj,
            "k_proj": self.k_proj,
            "v_proj": self.v_proj,
            "o_proj": self.o_proj,
            "gate_proj": self.gate_proj,
            "up_proj": self.up_proj,
            "down_proj": self.down_proj,
        }

    def set_linear(self, name: str, layer: Linear) -> None:
        if not hasattr(self, name):
            raise KeyError(f"unknown linear {name!r}")
        setattr(self, name, layer)


@dataclass
class CalibrationRecorder:
    """Accumulates the statistics the QoQ calibration passes need.

    For every linear (keyed ``layers.{i}.{name}``) it tracks the per-channel
    absolute maximum of the inputs and keeps up to ``max_samples`` raw input
    rows (needed by the clipping search and GPTQ).  It also stores post-RoPE
    Key/Query samples per layer for SmoothAttention.
    """

    max_samples: int = 256
    absmax: Dict[str, np.ndarray] = field(default_factory=dict)
    samples: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    sample_counts: Dict[str, int] = field(default_factory=dict)
    keys_post_rope: Dict[int, List[np.ndarray]] = field(default_factory=dict)
    queries_post_rope: Dict[int, List[np.ndarray]] = field(default_factory=dict)
    values: Dict[int, List[np.ndarray]] = field(default_factory=dict)

    def record_input(self, name: str, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1, x.shape[-1])
        amax = np.max(np.abs(flat), axis=0)
        if name in self.absmax:
            self.absmax[name] = np.maximum(self.absmax[name], amax)
        else:
            self.absmax[name] = amax
        kept = self.sample_counts.get(name, 0)
        if kept < self.max_samples:
            take = min(self.max_samples - kept, flat.shape[0])
            self.samples.setdefault(name, []).append(flat[:take].copy())
            self.sample_counts[name] = kept + take

    def record_attention(self, layer: int, q: np.ndarray, k: np.ndarray,
                         v: np.ndarray) -> None:
        self.queries_post_rope.setdefault(layer, []).append(np.asarray(q, np.float64))
        self.keys_post_rope.setdefault(layer, []).append(np.asarray(k, np.float64))
        self.values.setdefault(layer, []).append(np.asarray(v, np.float64))

    def input_samples(self, name: str) -> np.ndarray:
        chunks = self.samples.get(name)
        if not chunks:
            raise KeyError(f"no calibration samples recorded for {name!r}")
        return np.concatenate(chunks, axis=0)

    def stacked_keys(self, layer: int) -> np.ndarray:
        return np.concatenate(self.keys_post_rope[layer], axis=0)

    def stacked_queries(self, layer: int) -> np.ndarray:
        return np.concatenate(self.queries_post_rope[layer], axis=0)

    def stacked_values(self, layer: int) -> np.ndarray:
        return np.concatenate(self.values[layer], axis=0)


@dataclass
class ForwardConfig:
    """Runtime options of a forward pass."""

    kv_quant: KVQuantConfig = field(default_factory=lambda: KVQuantConfig(bits=16))
    use_cache: bool = False


class TransformerModel:
    """A causal Llama-style transformer over NumPy arrays."""

    def __init__(
        self,
        config: ModelConfig,
        embedding: np.ndarray,
        blocks: List[BlockWeights],
        final_norm: np.ndarray,
        lm_head: Linear,
        activation_outlier_channels: Optional[np.ndarray] = None,
    ) -> None:
        if len(blocks) != config.num_layers:
            raise ValueError(
                f"expected {config.num_layers} blocks, got {len(blocks)}")
        self.config = config
        self.embedding = np.asarray(embedding, dtype=np.float64)
        self.blocks = blocks
        self.final_norm = np.asarray(final_norm, dtype=np.float64)
        self.lm_head = lm_head
        self.activation_outlier_channels = activation_outlier_channels
        self.rope = RotaryEmbedding(
            head_dim=config.head_dim,
            max_seq_len=config.max_seq_len,
            theta=config.rope_theta,
        )
        self.attn_config = AttentionConfig(
            num_heads=config.num_heads,
            num_kv_heads=config.num_kv_heads,
            head_dim=config.head_dim,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def clone(self) -> "TransformerModel":
        """Deep-copy the model (quantization pipelines mutate the copy)."""
        return copy.deepcopy(self)

    def named_linears(self) -> Dict[str, Linear]:
        """All transformer-block projections keyed ``layers.{i}.{suffix}``."""
        out: Dict[str, Linear] = {}
        for i, block in enumerate(self.blocks):
            for suffix, layer in block.linears().items():
                out[f"layers.{i}.{suffix}"] = layer
        return out

    def set_linear(self, full_name: str, layer: Linear) -> None:
        """Replace a projection addressed by its ``layers.{i}.{suffix}`` name."""
        parts = full_name.split(".")
        if len(parts) != 3 or parts[0] != "layers":
            raise KeyError(f"invalid linear name {full_name!r}")
        self.blocks[int(parts[1])].set_linear(parts[2], layer)

    def new_caches(self, kv_quant: KVQuantConfig) -> List[KVCache]:
        return [KVCache(config=self.attn_config, quant=kv_quant)
                for _ in range(self.config.num_layers)]

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def _block_forward(
        self,
        layer_idx: int,
        x: np.ndarray,
        positions: np.ndarray,
        cache: Optional[KVCache],
        recorder: Optional[CalibrationRecorder],
        kv_quant: Optional[KVQuantConfig] = None,
    ) -> np.ndarray:
        block = self.blocks[layer_idx]
        cfg = self.config
        n = x.shape[0]
        prefix = f"layers.{layer_idx}"

        # --- attention ---------------------------------------------------
        h = rms_norm(x, block.attn_norm, cfg.norm_eps)
        if recorder is not None:
            for name in ("q_proj", "k_proj", "v_proj"):
                recorder.record_input(f"{prefix}.{name}", h)

        q = block.q_proj(h).reshape(n, cfg.num_heads, cfg.head_dim)
        k = block.k_proj(h).reshape(n, cfg.num_kv_heads, cfg.head_dim)
        v = block.v_proj(h).reshape(n, cfg.num_kv_heads, cfg.head_dim)

        cos, sin = self.rope.tables(positions)
        q = apply_rope(q, cos, sin)
        k = apply_rope(k, cos, sin)
        if recorder is not None:
            recorder.record_attention(layer_idx, q, k, v)

        if cache is None and kv_quant is not None and kv_quant.enabled:
            # Without a cache (teacher-forced evaluation) the quantization that
            # would normally happen on cache append is applied here so KV4/KV8
            # affects the attention computation identically.
            from repro.quant.kv_quant import kv_fake_quantize
            k = kv_fake_quantize(k, kv_quant)
            v = kv_fake_quantize(v, kv_quant)

        attn = multi_head_attention(q, k, v, self.attn_config, cache=cache)
        attn_flat = attn.reshape(n, cfg.hidden_size)
        if recorder is not None:
            recorder.record_input(f"{prefix}.o_proj", attn_flat)
        x = x + block.o_proj(attn_flat)

        # --- FFN ----------------------------------------------------------
        h2 = rms_norm(x, block.ffn_norm, cfg.norm_eps)
        if recorder is not None:
            recorder.record_input(f"{prefix}.gate_proj", h2)
            recorder.record_input(f"{prefix}.up_proj", h2)
        act = swiglu(block.gate_proj(h2), block.up_proj(h2))
        if recorder is not None:
            recorder.record_input(f"{prefix}.down_proj", act)
        x = x + block.down_proj(act)
        return x

    def forward(
        self,
        tokens: np.ndarray,
        forward_config: Optional[ForwardConfig] = None,
        caches: Optional[List[KVCache]] = None,
        start_position: int = 0,
        recorder: Optional[CalibrationRecorder] = None,
        return_hidden: bool = False,
    ) -> np.ndarray:
        """Run the model over a 1-D array of token ids.

        Returns logits of shape ``[len(tokens), vocab_size]`` (or the final
        hidden states when ``return_hidden``).  When ``caches`` is provided the
        tokens are treated as a continuation starting at ``start_position``.
        """
        fwd = forward_config or ForwardConfig()
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError("tokens must be a 1-D array of token ids")
        if tokens.size == 0:
            raise ValueError("tokens must be non-empty")
        if tokens.min() < 0 or tokens.max() >= self.config.vocab_size:
            raise ValueError("token id out of range")

        if caches is None and fwd.use_cache:
            caches = self.new_caches(fwd.kv_quant)

        positions = start_position + np.arange(tokens.size)
        x = self.embedding[tokens]

        for i in range(self.config.num_layers):
            cache = caches[i] if caches is not None else None
            x = self._block_forward(i, x, positions, cache, recorder,
                                    kv_quant=fwd.kv_quant)

        x = rms_norm(x, self.final_norm, self.config.norm_eps)
        if return_hidden:
            return x
        return self.lm_head(x)

    # ------------------------------------------------------------------
    # Convenience APIs
    # ------------------------------------------------------------------
    def next_token_logits(self, tokens: np.ndarray,
                          forward_config: Optional[ForwardConfig] = None) -> np.ndarray:
        """Logits for the token following ``tokens``."""
        return self.forward(tokens, forward_config)[-1]

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        forward_config: Optional[ForwardConfig] = None,
        greedy: bool = True,
        seed: int = 0,
    ) -> np.ndarray:
        """Autoregressive generation with a (optionally quantized) KV cache."""
        fwd = forward_config or ForwardConfig()
        caches = self.new_caches(fwd.kv_quant)
        prompt = np.asarray(prompt, dtype=np.int64)
        rng = np.random.default_rng(seed)

        logits = self.forward(prompt, fwd, caches=caches, start_position=0)
        generated: List[int] = []
        next_logits = logits[-1]
        position = prompt.size
        for _ in range(max_new_tokens):
            if greedy:
                token = int(np.argmax(next_logits))
            else:
                probs = softmax(next_logits)
                token = int(rng.choice(self.config.vocab_size, p=probs))
            generated.append(token)
            step_logits = self.forward(
                np.array([token]), fwd, caches=caches, start_position=position)
            next_logits = step_logits[-1]
            position += 1
        return np.asarray(generated, dtype=np.int64)

    def run_calibration(
        self,
        token_batches: List[np.ndarray],
        kv_quant: Optional[KVQuantConfig] = None,
        max_samples: int = 256,
    ) -> CalibrationRecorder:
        """Run forward passes over calibration batches, recording statistics."""
        recorder = CalibrationRecorder(max_samples=max_samples)
        fwd = ForwardConfig(kv_quant=kv_quant or KVQuantConfig(bits=16))
        for batch in token_batches:
            self.forward(np.asarray(batch, dtype=np.int64), fwd, recorder=recorder)
        return recorder
