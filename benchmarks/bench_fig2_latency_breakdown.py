"""Benchmark regenerating Figure 2 (motivation: latency breakdown, W4A4 systems)."""

from repro.experiments import fig2_motivation


def test_fig2a_latency_breakdown(benchmark):
    report = benchmark(fig2_motivation.run_latency_breakdown)
    print()
    print(report.to_text("{:.1f}"))
    assert report.column("Attention %")[-1] > 50


def test_fig2b_system_throughput(benchmark):
    report = benchmark.pedantic(fig2_motivation.run_system_throughput, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.0f}"))
    values = dict(zip(report.column("System"), report.column("Throughput (tok/s)")))
    assert values["atom-w4a4"] < values["trt-w8a8"]
