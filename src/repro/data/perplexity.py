"""Token-level perplexity evaluation (the WikiText-2 metric of Table 2)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.transformer import ForwardConfig, TransformerModel

__all__ = ["perplexity_from_logits", "evaluate_perplexity"]


def perplexity_from_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """Perplexity of ``targets`` under next-token ``logits``.

    ``logits[i]`` must predict ``targets[i]``; both have the same leading
    length.  Uses the log-sum-exp formulation for numerical stability.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[0] != targets.shape[0]:
        raise ValueError("logits and targets must align")
    max_logit = np.max(logits, axis=-1, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(logits - max_logit), axis=-1)) + max_logit[:, 0]
    target_logit = logits[np.arange(targets.size), targets]
    nll = logsumexp - target_logit
    return float(np.exp(np.mean(nll)))


def evaluate_perplexity(
    model: TransformerModel,
    sequences: List[np.ndarray],
    forward_config: Optional[ForwardConfig] = None,
) -> float:
    """Average perplexity of a model over a list of token sequences.

    Each sequence is evaluated teacher-forced: position ``i`` predicts token
    ``i+1``.  The negative log-likelihoods of all sequences are pooled before
    exponentiating (matching the standard corpus-level perplexity definition).
    """
    total_nll = 0.0
    total_tokens = 0
    for seq in sequences:
        seq = np.asarray(seq, dtype=np.int64)
        if seq.size < 2:
            raise ValueError("sequences must contain at least two tokens")
        logits = model.forward(seq[:-1], forward_config)
        targets = seq[1:]
        max_logit = np.max(logits, axis=-1, keepdims=True)
        logsumexp = np.log(np.sum(np.exp(logits - max_logit), axis=-1)) + max_logit[:, 0]
        target_logit = logits[np.arange(targets.size), targets]
        total_nll += float(np.sum(logsumexp - target_logit))
        total_tokens += targets.size
    return float(np.exp(total_nll / total_tokens))
