"""Parallel-serving study: tensor parallelism and multi-replica clusters.

Three sections, all built on the same cost-model-driven simulator:

1. **TP sweep** — maximum achievable throughput of a 70B-class model across
   tensor-parallel degrees.  At tp=1 the FP16 weights alone overflow both
   GPUs (Table 4's "OOM" entries); at tp>=2 the model becomes servable, and
   the per-layer all-reduce cost decides how well throughput scales.
2. **Replica scaling** — cluster throughput of 1/2/4 identical replicas on a
   shared bursty workload, behind a least-outstanding-requests router.
3. **Router A/B** — round-robin vs least-outstanding vs shortest-queue on a
   bursty, heavy-tailed workload: p50/p95 TTFT and SLO goodput per router.

Run with:  python examples/cluster_serving.py [model-name]
           (model-name drives sections 2 and 3; the TP sweep always uses
            llama-2-70b, the model whose FP16 weights overflow one GPU)
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    ParallelConfig,
    ROUTERS,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_router_study_workload,
    tp_sweep,
)

#: Latency SLO for the goodput column: 500 ms TTFT, 50 ms/token TPOT.
TTFT_SLO_S, TPOT_SLO_S = 0.5, 0.05


def tp_study(model_name: str = "llama-2-70b") -> None:
    cfg = get_config(model_name)
    print(f"Tensor-parallel sweep for {model_name} on A100 "
          f"(TRT-FP16, 1024 in / 512 out):\n")
    rows = []
    for result in tp_sweep(cfg, A100, SYSTEM_PRESETS["trt-fp16"],
                           tp_degrees=(1, 2, 4, 8)):
        rows.append([result.tp_degree,
                     result.batch if result.batch else "OOM",
                     round(result.tokens_per_second, 1)])
    print(format_table(["TP degree", "Max batch", "Throughput (tok/s)"], rows))


def replica_scaling_study(model_name: str) -> None:
    cfg = get_config(model_name)
    workload = make_router_study_workload()
    rows = []
    for num_replicas in (1, 2, 4):
        cluster = ClusterEngine(cfg, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                                num_replicas=num_replicas, max_seq_len=4096)
        result = cluster.serve(workload.copy_fresh(),
                               router="least-outstanding", max_num_seqs=6,
                               scheduling=SCHEDULING_PRESETS["chunked"])
        m = result.metrics
        rows.append([num_replicas,
                     round(result.generation_throughput, 1),
                     round(m.ttft.p50 * 1e3, 1), round(m.ttft.p95 * 1e3, 1),
                     round(result.slo_goodput(TTFT_SLO_S, TPOT_SLO_S), 2)])
    print(f"\nReplica scaling for {model_name} on A100 "
          f"(QServe W4A8KV4, bursty traffic, least-outstanding router):\n")
    print(format_table(
        ["Replicas", "Tok/s", "TTFT p50 (ms)", "TTFT p95 (ms)",
         "Goodput (req/s)"], rows))


def router_ab_study(model_name: str, num_replicas: int = 4) -> None:
    cfg = get_config(model_name)
    workload = make_router_study_workload()
    cluster = ClusterEngine(cfg, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=num_replicas, max_seq_len=4096)
    rows = []
    for router in sorted(ROUTERS):
        result = cluster.serve(workload.copy_fresh(), router=router,
                               max_num_seqs=6,
                               scheduling=SCHEDULING_PRESETS["chunked"])
        m = result.metrics
        rows.append([router,
                     round(result.generation_throughput, 1),
                     round(m.ttft.p50 * 1e3, 1), round(m.ttft.p95 * 1e3, 1),
                     round(result.slo_goodput(TTFT_SLO_S, TPOT_SLO_S), 2),
                     result.requests_per_replica])
    print(f"\nRouter A/B for {model_name} on {num_replicas}x A100 "
          f"(bursty heavy-tailed traffic, "
          f"SLO: TTFT<{TTFT_SLO_S * 1e3:.0f}ms, TPOT<{TPOT_SLO_S * 1e3:.0f}ms):\n")
    print(format_table(
        ["Router", "Tok/s", "TTFT p50 (ms)", "TTFT p95 (ms)",
         "Goodput (req/s)", "Requests/replica"], rows))


def main(model_name: str = "llama-2-7b") -> None:
    tp_study()
    replica_scaling_study(model_name)
    router_ab_study(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
