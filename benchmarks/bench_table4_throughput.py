"""Benchmark regenerating Table 4, Figure 15 and artifact Table 6 (throughput).

Table 4 numbers are measured with the legacy scheduling preset (conservative
FCFS admission, stall-the-world prefill) — the engine default — so they stay
comparable across scheduler work.  ``test_scheduler_latency`` additionally
exercises the chunked-prefill path under a Poisson load and reports latency
percentiles next to throughput.
"""

from repro.experiments import table4_throughput
from repro.gpu import A100, L40S
from repro.model import get_config
from repro.serving import (
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    make_uniform_workload,
)


def test_table4_a100(benchmark):
    report = benchmark.pedantic(table4_throughput.run, args=(A100,), rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(s > 1.0 for s in report.column("Speedup vs best TRT"))


def test_table4_l40s(benchmark):
    report = benchmark.pedantic(table4_throughput.run, args=(L40S,), rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(s > 1.0 for s in report.column("Speedup vs best TRT"))


def test_fig15_speedups(benchmark):
    report = benchmark.pedantic(table4_throughput.run_fig15_speedups, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    geo = report.extra["geomean"]
    assert geo["A100"] > 1.0 and geo["L40S"] > 1.0


def test_table6_artifact(benchmark):
    report = benchmark.pedantic(table4_throughput.run_table6, rounds=1, iterations=1)
    print()
    print(report.to_text("{:.2f}"))
    assert all(row[-1] > 1.0 for row in report.rows)


def test_scheduler_latency(benchmark):
    """Chunked prefill vs legacy stall prefill under a Poisson load."""
    engine = ServingEngine(get_config("llama-2-7b"), A100,
                           SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    workload = make_uniform_workload(64, 1024, 512, arrival_rate=48.0, seed=1)

    def run():
        results = {}
        for preset in ("legacy", "chunked", "chunked-preempt"):
            results[preset] = engine.serve(
                workload.copy_fresh(), max_num_seqs=64,
                scheduling=SCHEDULING_PRESETS[preset])
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for preset, result in results.items():
        m = result.metrics
        print(f"{preset:16s} {result.generation_throughput:7.1f} tok/s  "
              f"TTFT p50/p95 {m.ttft.p50 * 1e3:7.1f}/{m.ttft.p95 * 1e3:7.1f} ms  "
              f"TPOT p99 {m.tpot.p99 * 1e3:6.2f} ms  "
              f"preemptions {result.num_preemptions}")
    legacy, chunked = results["legacy"], results["chunked"]
    assert chunked.metrics.ttft.mean < legacy.metrics.ttft.mean
    assert (chunked.generation_throughput
            > 0.95 * legacy.generation_throughput)
