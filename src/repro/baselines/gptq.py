"""GPTQ (Frantar et al., 2022) — error-compensated weight quantization.

GPTQ quantizes weight columns one at a time and redistributes the rounding
error of each column onto the not-yet-quantized columns using the inverse
Hessian of the layer's inputs (``H = X^T X``).  The "-R" (reorder) variant
processes columns in order of decreasing activation energy, which is the
configuration the paper reports as "GPTQ-R" in Table 2.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.quantized import ActQuantSpec, FakeQuantLinear, W4A8Linear
from repro.model.transformer import ForwardConfig, TransformerModel
from repro.quant.dtypes import UINT4
from repro.quant.kv_quant import KVQuantConfig

__all__ = ["gptq_quantize_weight", "quantize_gptq"]


def _group_quant_column(col: np.ndarray, scale: np.ndarray,
                        zero: np.ndarray) -> np.ndarray:
    q = np.clip(np.round(col / scale + zero), UINT4.qmin, UINT4.qmax)
    return (q - zero) * scale


def gptq_quantize_weight(
    weight: np.ndarray,
    calib_inputs: np.ndarray,
    group_size: Optional[int] = 128,
    act_order: bool = True,
    percdamp: float = 0.01,
) -> np.ndarray:
    """Quantize ``weight`` to UINT4 with GPTQ error compensation.

    Parameters
    ----------
    weight:
        ``[out, in]`` weight matrix.
    calib_inputs:
        ``[samples, in]`` calibration activations.
    group_size:
        Quantization group size (scales/zeros recomputed at each group
        boundary, as in the reference implementation); ``None`` for
        per-channel.
    act_order:
        Process columns in decreasing diagonal-Hessian order (GPTQ-R).
    percdamp:
        Hessian dampening factor.

    Returns the dequantized (fake-quantized) weight.
    """
    weight = np.asarray(weight, dtype=np.float64).copy()
    calib_inputs = np.asarray(calib_inputs, dtype=np.float64)
    out_features, in_features = weight.shape
    if calib_inputs.shape[1] != in_features:
        raise ValueError("calibration inputs do not match weight in_features")
    g = group_size if (group_size and in_features % group_size == 0) else in_features

    hessian = calib_inputs.T @ calib_inputs
    dead = np.diag(hessian) == 0
    hessian[dead, dead] = 1.0
    weight[:, dead] = 0.0

    if act_order:
        perm = np.argsort(-np.diag(hessian), kind="stable")
    else:
        perm = np.arange(in_features)
    inv_perm = np.argsort(perm)
    weight = weight[:, perm]
    hessian = hessian[perm][:, perm]

    damp = percdamp * np.mean(np.diag(hessian))
    hessian[np.diag_indices(in_features)] += damp
    # Cholesky of the inverse Hessian (upper triangular), as in the reference.
    hinv = np.linalg.cholesky(np.linalg.inv(hessian), upper=True)

    quantized = np.zeros_like(weight)
    scale = np.ones((out_features, 1))
    zero = np.zeros((out_features, 1))
    for col in range(in_features):
        if col % g == 0:
            block = weight[:, col:col + g]
            wmax = np.maximum(block.max(axis=1, keepdims=True), 0.0)
            wmin = np.minimum(block.min(axis=1, keepdims=True), 0.0)
            scale = np.maximum(wmax - wmin, 1e-12) / (UINT4.qmax - UINT4.qmin)
            zero = np.clip(np.round(-wmin / scale), UINT4.qmin, UINT4.qmax)
        w_col = weight[:, col]
        q_col = _group_quant_column(w_col, scale[:, 0], zero[:, 0])
        quantized[:, col] = q_col
        err = (w_col - q_col) / hinv[col, col]
        if col + 1 < in_features:
            weight[:, col + 1:] -= np.outer(err, hinv[col, col + 1:])
    return quantized[:, inv_perm]


def quantize_gptq(
    model: TransformerModel,
    calibration_batches: List[np.ndarray],
    act_bits: int = 16,
    kv_bits: int = 16,
    group_size: Optional[int] = 128,
    act_order: bool = True,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize ``model`` weights with GPTQ(-R).

    ``act_bits=16, kv_bits=16`` reproduces the W4A16 g128 "GPTQ-R" row of
    Table 2.
    """
    work = model.clone()
    recorder = work.run_calibration(calibration_batches)
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=True))

    for name, layer in work.named_linears().items():
        weight = np.asarray(layer.weight, dtype=np.float64)
        in_features = weight.shape[1]
        g = group_size if (group_size and in_features % group_size == 0) else None
        samples = recorder.input_samples(name)
        w_q = gptq_quantize_weight(weight, samples, group_size=g, act_order=act_order)
        if act_bits == 8:
            new_layer = W4A8Linear(w_q, name=name, group_size=g)
        else:
            new_layer = FakeQuantLinear(w_q, name=name,
                                        act_spec=ActQuantSpec(bits=act_bits))
        work.set_linear(name, new_layer)
    return work, fwd
