"""Tests for the integer-path quantized linear layers."""

import numpy as np
import pytest

from repro.model.quantized import ActQuantSpec, FakeQuantLinear, W4A8Linear, W8A8Linear
from repro.qoq.rotation import hadamard_matrix


def _weight_and_input(out=24, inp=32, tokens=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 0.2, size=(out, inp)), rng.normal(0, 1.0, size=(tokens, inp))


def test_w8a8_close_to_dense():
    w, x = _weight_and_input()
    dense = x @ w.T
    out = W8A8Linear(w)(x)
    rel = np.linalg.norm(out - dense) / np.linalg.norm(dense)
    assert rel < 0.02


def test_w4a8_close_to_dense_and_worse_than_w8a8():
    w, x = _weight_and_input()
    dense = x @ w.T
    err8 = np.linalg.norm(W8A8Linear(w)(x) - dense)
    err4 = np.linalg.norm(W4A8Linear(w, group_size=8)(x) - dense)
    assert err8 < err4
    assert err4 / np.linalg.norm(dense) < 0.1


def test_w4a8_integer_accumulation_matches_manual_epilogue():
    """The integer path must equal quantize(acts) @ int8_weight * scales."""
    w, x = _weight_and_input(out=8, inp=16, tokens=4)
    layer = W4A8Linear(w, group_size=8)
    from repro.model.quantized import _quantize_activation_int8
    codes, scales = _quantize_activation_int8(x)
    manual = (codes.astype(np.int64) @ layer._qweight_int8.astype(np.int64).T
              ).astype(np.float64) * scales * layer._weight_scales
    np.testing.assert_allclose(layer(x), manual, atol=1e-9)


def test_fake_quant_linear_act_bits():
    w, x = _weight_and_input()
    dense = x @ w.T
    a16 = FakeQuantLinear(w, act_spec=ActQuantSpec(bits=16))(x)
    a4 = FakeQuantLinear(w, act_spec=ActQuantSpec(bits=4))(x)
    np.testing.assert_allclose(a16, dense)
    assert np.linalg.norm(a4 - dense) > np.linalg.norm(a16 - dense)


def test_rotation_transform_is_exact_without_quantization():
    w, x = _weight_and_input()
    q = hadamard_matrix(32)
    layer = FakeQuantLinear(w @ q, rotation=q, act_spec=ActQuantSpec(bits=16))
    np.testing.assert_allclose(layer(x), x @ w.T, atol=1e-9)


def test_smoothing_transform_is_exact_without_quantization():
    w, x = _weight_and_input()
    lam = np.exp(np.random.default_rng(3).normal(size=32))
    layer = FakeQuantLinear(w * lam[None, :], input_scale=lam,
                            act_spec=ActQuantSpec(bits=16))
    np.testing.assert_allclose(layer(x), x @ w.T, atol=1e-9)


def test_permutation_transform_is_exact_without_quantization():
    w, x = _weight_and_input()
    perm = np.random.default_rng(4).permutation(32)
    layer = FakeQuantLinear(w[:, perm], permutation=perm,
                            act_spec=ActQuantSpec(bits=16))
    np.testing.assert_allclose(layer(x), x @ w.T, atol=1e-9)


def test_transform_validation():
    w, _ = _weight_and_input()
    with pytest.raises(ValueError):
        FakeQuantLinear(w, input_scale=np.ones(5))
    with pytest.raises(ValueError):
        FakeQuantLinear(w, rotation=np.ones((3, 3)))
    with pytest.raises(ValueError):
        FakeQuantLinear(w, permutation=np.zeros(32, dtype=int))
    with pytest.raises(ValueError):
        W4A8Linear(name="empty")


def test_weight_property_shapes():
    w, _ = _weight_and_input()
    assert W8A8Linear(w).weight.shape == w.shape
    assert W4A8Linear(w, group_size=8).weight.shape == w.shape
    assert W4A8Linear(w, group_size=8).group_size == 8
