"""Benchmark regenerating Figure 18 (dequantization overhead) and Figure 5."""

from repro.experiments import fig18_dequant_overhead


def test_fig18_overhead(benchmark):
    report = benchmark(fig18_dequant_overhead.run)
    print()
    print(report.to_text("{:.1f}"))
    for row in report.rows:
        _, w8a8, w4a16, atom, qserve = row
        assert atom >= max(w4a16, qserve) and w8a8 == 0.0


def test_fig5_mainloop_composition(benchmark):
    report = benchmark(fig18_dequant_overhead.run_mainloop_composition)
    print()
    print(report.to_text("{:.1f}"))
