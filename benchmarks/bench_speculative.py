"""Benchmark for speculative decoding.

``test_k_and_draft_sweep`` measures mean TPOT against the non-speculative
baseline at equal hardware while sweeping the lookahead ``k`` and the draft
model size (llama-68m / llama-160m / tinyllama-1.1b) on a memory-bound
decode batch — the regime where verification of ``k + 1`` tokens costs
barely more than decoding one, so high acceptance turns directly into fewer
serialized iterations.  ``test_acceptance_and_adaptive_lookahead`` runs a
compute-bound batch across acceptance profiles: speedup degrades gracefully
as acceptance falls, deep static lookahead *loses* to the baseline on
hard-to-draft traffic (every rejected token still paid verification FLOPs),
and the acceptance-aware adaptive lookahead wins it back by shrinking ``k``
where drafts keep missing.
"""

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    SpeculativeConfig,
    make_uniform_workload,
)


def _engine():
    return ServingEngine(get_config("llama-2-7b"), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=1024)


def _serve(engine, workload, max_num_seqs, spec=None):
    return engine.serve(workload.copy_fresh(), max_num_seqs=max_num_seqs,
                        scheduling=SCHEDULING_PRESETS["chunked"],
                        speculative=spec)


def _row(name, result):
    print(f"{name:24s} TPOT mean {result.metrics.tpot.mean * 1e3:5.2f} ms  "
          f"tok/iter {result.tokens_per_iteration:6.2f}  "
          f"accept {result.acceptance_rate * 100:5.1f}%  "
          f"speedup {result.speculation_speedup:4.2f}x")


def test_k_and_draft_sweep(benchmark, serving_json):
    """Lookahead/draft-size sweep vs the non-speculative baseline."""
    engine = _engine()
    workload = make_uniform_workload(24, prompt_len=512, output_len=256)
    configs = {"baseline": None}
    for k in (2, 4, 8):
        configs[f"k={k} llama-160m"] = SpeculativeConfig(
            get_config("llama-160m"), lookahead=k, profile="low-entropy")
    for name in ("llama-68m", "tinyllama-1.1b"):
        configs[f"k=4 {name}"] = SpeculativeConfig(
            get_config(name), lookahead=4, profile="low-entropy")

    def run():
        return {name: _serve(engine, workload, 8, spec)
                for name, spec in configs.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("k_and_draft_sweep", results)
    print()
    for name, result in results.items():
        _row(name, result)
    base = results["baseline"]
    assert all(r.num_finished == 24 for r in results.values())
    assert all(r.generated_tokens == base.generated_tokens
               for r in results.values())
    # Acceptance: at a high-acceptance profile every speculative config beats
    # the baseline's mean TPOT at equal hardware, and the committed tokens
    # per iteration rise above the plain-decode cap.
    for name, result in results.items():
        if name == "baseline":
            continue
        assert result.metrics.tpot.mean < base.metrics.tpot.mean
        assert result.tokens_per_iteration > base.tokens_per_iteration
        assert result.speculation_speedup > 1.0
    # Draft pricing is honest: a bigger draft costs more per proposed token,
    # so at equal acceptance the smaller draft yields the lower TPOT.
    assert (results["k=4 llama-68m"].metrics.tpot.mean
            < results["k=4 llama-160m"].metrics.tpot.mean
            < results["k=4 tinyllama-1.1b"].metrics.tpot.mean)


def test_acceptance_and_adaptive_lookahead(benchmark):
    """Graceful degradation across acceptance profiles; adaptive recovery."""
    engine = _engine()
    workload = make_uniform_workload(48, prompt_len=512, output_len=256)
    draft = get_config("llama-160m")
    configs = {"baseline": None}
    for profile in ("low-entropy", "chat", "high-entropy"):
        configs[profile] = SpeculativeConfig(draft, lookahead=4,
                                             profile=profile)
    configs["high-entropy k=8"] = SpeculativeConfig(draft, lookahead=8,
                                                    profile="high-entropy")
    configs["high-entropy k=8 adaptive"] = SpeculativeConfig(
        draft, lookahead=8, adaptive=True, profile="high-entropy")

    def run():
        return {name: _serve(engine, workload, 48, spec)
                for name, spec in configs.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        _row(name, result)
    base = results["baseline"]
    assert all(r.num_finished == 48 for r in results.values())
    # TPOT degrades monotonically as the workload gets harder to draft —
    # graceful, not a cliff: even the hard profile still finishes everything.
    assert (results["low-entropy"].metrics.tpot.mean
            < results["chat"].metrics.tpot.mean
            < results["high-entropy"].metrics.tpot.mean)
    assert results["low-entropy"].metrics.tpot.mean < base.metrics.tpot.mean
    # Over-speculating on hard traffic in the compute-bound regime loses to
    # the baseline outright; the acceptance-aware adaptive lookahead shrinks
    # k per request and wins it back.
    static = results["high-entropy k=8"]
    adaptive = results["high-entropy k=8 adaptive"]
    assert static.metrics.tpot.mean > base.metrics.tpot.mean
    assert adaptive.metrics.tpot.mean < static.metrics.tpot.mean
    assert adaptive.metrics.tpot.mean < base.metrics.tpot.mean
    assert adaptive.acceptance_rate > static.acceptance_rate
