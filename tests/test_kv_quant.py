"""Tests for per-head dynamic KV-cache quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    KVQuantConfig,
    dequantize_kv,
    kv_fake_quantize,
    quantize_kv_per_head,
)


def _kv(tokens=12, heads=2, dim=16, seed=0, outlier_channel=True):
    rng = np.random.default_rng(seed)
    kv = rng.normal(0, 1, size=(tokens, heads, dim))
    if outlier_channel:
        kv[:, :, 0] *= 10.0  # the fixed Key outlier channel of Figure 7
    return kv


def test_shapes_and_dtypes():
    q = quantize_kv_per_head(_kv(), bits=4)
    assert q.codes.shape == (12, 2, 16)
    assert q.scales.shape == (12, 2, 1)
    assert q.codes.dtype == np.uint8
    assert q.scales.dtype == np.float16
    assert q.codes.max() <= 15


def test_kv8_much_more_accurate_than_kv4():
    kv = _kv()
    err4 = np.mean((kv - dequantize_kv(quantize_kv_per_head(kv, 4))) ** 2)
    err8 = np.mean((kv - dequantize_kv(quantize_kv_per_head(kv, 8))) ** 2)
    assert err8 < err4 / 10


def test_fake_quantize_identity_at_16_bits():
    kv = _kv()
    out = kv_fake_quantize(kv, KVQuantConfig(bits=16))
    np.testing.assert_array_equal(out, kv)


def test_per_head_dynamic_beats_static_per_tensor():
    kv = _kv(outlier_channel=True)
    dynamic = kv_fake_quantize(kv, KVQuantConfig(bits=4, per_head=True))
    static = kv_fake_quantize(kv, KVQuantConfig(bits=4, per_head=False))
    err_dyn = np.mean((kv - dynamic) ** 2)
    err_static = np.mean((kv - static) ** 2)
    assert err_dyn < err_static


def test_memory_accounting():
    q = quantize_kv_per_head(_kv(), bits=4)
    # 12*2*16 codes at 0.5B = 192B plus 12*2 scale/zero pairs in fp16.
    assert q.memory_bytes() == 192 + 12 * 2 * 2 * 2


def test_invalid_bits_and_shape():
    with pytest.raises(ValueError):
        quantize_kv_per_head(_kv(), bits=3)
    with pytest.raises(ValueError):
        quantize_kv_per_head(np.zeros((4, 8)), bits=4)


def test_config_bytes_per_element():
    assert KVQuantConfig(bits=4).bytes_per_element == 0.5
    assert KVQuantConfig(bits=8).bytes_per_element == 1.0
    assert not KVQuantConfig(bits=16).enabled


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(4, 8).filter(lambda b: b in (4, 8)))
def test_property_roundtrip_error_bounded(seed, bits):
    """Property: per-head asymmetric quantization error is bounded by one
    quantization step (half from rounding the value, half from rounding the
    zero point)."""
    rng = np.random.default_rng(seed)
    kv = rng.normal(0, rng.uniform(0.1, 5.0), size=(6, 3, 8))
    q = quantize_kv_per_head(kv, bits=bits)
    err = np.abs(kv - dequantize_kv(q))
    assert np.all(err <= q.scales.astype(np.float64) + 1e-6)
