"""Pytest bootstrap.

Ensures ``src/`` is importable even when the package has not been installed
(useful in fully offline environments where ``pip install -e .`` needs
``--no-build-isolation``).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
