"""Tests for multi-model multiplexing: residency accounting, swap pricing,
model-namespaced prefix caching, the model-aware router, per-model metrics
breakouts and the multiplexed serving path."""

import pytest

from repro.gpu import A100, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    AutoscalerConfig,
    ClusterEngine,
    ContinuousBatchingScheduler,
    MultiplexConfig,
    ModelResidency,
    Request,
    RequestState,
    ServingEngine,
    Workload,
    get_router,
    get_system,
    load_trace,
    make_multi_model_workload,
    make_uniform_workload,
    prompt_block_keys,
    weight_transfer_s,
)

M7 = get_config("llama-2-7b")
M13 = get_config("llama-2-13b")
SYSTEM = get_system("trt-fp16")

GIB = 1 << 30


def _residency(max_resident=1, **kwargs):
    config = MultiplexConfig(models=(M7, M13),
                             max_resident_models=max_resident, **kwargs)
    weights = {M7.name: 13.0 * GIB, M13.name: 25.0 * GIB}
    workspace = {M7.name: 2.0 * GIB, M13.name: 3.0 * GIB}
    return config, ModelResidency(config, A100, weights, workspace)


# ----------------------------------------------------------------------
# MultiplexConfig
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        MultiplexConfig(models=())
    with pytest.raises(ValueError):
        MultiplexConfig(models=(M7, M7))
    with pytest.raises(ValueError):
        MultiplexConfig(models=(M7, M13), max_resident_models=0)
    with pytest.raises(ValueError):
        MultiplexConfig(models=(M7,), preload=("nope",))
    with pytest.raises(ValueError):
        MultiplexConfig(models=(M7, M13), queue_cost_s=-1.0)


def test_config_defaults():
    config = MultiplexConfig(models=(M7, M13))
    assert config.resident_limit == 2
    assert config.default_model == M7.name
    assert config.preload_names() == (M7.name,)
    assert config.model_names == (M7.name, M13.name)


# ----------------------------------------------------------------------
# ModelResidency
# ----------------------------------------------------------------------
def test_residency_lru_swapping():
    _, res = _residency(max_resident=1)
    assert res.resident == [M7.name]
    assert res.is_resident(M7.name)
    cost = res.ensure_resident(M13.name)
    assert cost > 0.0
    assert res.resident == [M13.name]
    assert res.swap_ins == 1 and res.swap_outs == 1
    # Warm hit: no cost, no new swap.
    assert res.ensure_resident(M13.name) == 0.0
    assert res.swap_ins == 1
    back = res.ensure_resident(M7.name)
    assert back > 0.0
    assert res.swap_ins_by_model == {M13.name: 1, M7.name: 1}


def test_residency_lru_order_tracks_recency():
    _, res = _residency(max_resident=2)
    res.ensure_resident(M13.name)
    assert res.resident == [M7.name, M13.name]
    # Touching the LRU model makes it MRU; nothing is evicted at limit 2.
    res.ensure_resident(M7.name)
    assert res.resident == [M13.name, M7.name]
    assert res.swap_outs == 0


def test_swap_cost_matches_autoscaler_cold_start():
    """S2: residency swap-ins and autoscaler cold starts share one price."""
    config, res = _residency(max_resident=1, provision_s=0.25)
    auto = AutoscalerConfig(min_replicas=1, max_replicas=2,
                            host_link=config.host_link, provision_s=0.25)
    weights = res.weight_bytes[M13.name]
    expected = weight_transfer_s(weights, config.host_link, 0.25)
    assert res.swap_cost_s(M13.name) == expected
    assert auto.cold_start_s(weights) == expected
    assert res.swap_cost_s(M7.name) == 0.0  # warm


def test_residency_hbm_accounting():
    _, res = _residency(max_resident=1)
    # Budget sized for the single largest footprint (25 + 3 GiB).
    assert res.weight_budget_bytes == 28.0 * GIB
    assert res.kv_pool_bytes() == (res.hbm_capacity_bytes - 28.0 * GIB) / 2
    res.ensure_resident(M13.name)
    assert res.peak_resident_bytes <= res.weight_budget_bytes
    assert res.reserved_bytes() <= res.hbm_capacity_bytes


def test_residency_rejects_oversubscribed_hbm():
    config = MultiplexConfig(models=(M7, M13))
    weights = {M7.name: 50.0 * GIB, M13.name: 40.0 * GIB}
    workspace = {M7.name: 2.0 * GIB, M13.name: 2.0 * GIB}
    with pytest.raises(ValueError, match="leave no KV memory"):
        ModelResidency(config, A100, weights, workspace)


def test_residency_unknown_model():
    _, res = _residency()
    with pytest.raises(KeyError):
        res.ensure_resident("mystery-model")


# ----------------------------------------------------------------------
# Model-namespaced prefix caching
# ----------------------------------------------------------------------
def test_prefix_keys_namespaced_by_model():
    request = Request(request_id=0, prompt_len=256, output_len=8,
                      arrival_time=0.0)
    plain = prompt_block_keys(request, 16)
    a = prompt_block_keys(request, 16, namespace=M7.name)
    b = prompt_block_keys(request, 16, namespace=M13.name)
    assert len(plain) == len(a) == len(b)
    # No block hash is shared across models, nor with the unsalted chain.
    assert not set(a) & set(b)
    assert not set(plain) & set(a)
    # Same namespace, same keys: sharing within a model still works.
    again = Request(request_id=1, prompt_len=256, output_len=8,
                    arrival_time=0.0)
    assert prompt_block_keys(again, 16, namespace=M7.name) == a


# ----------------------------------------------------------------------
# Scheduler admission guard
# ----------------------------------------------------------------------
def test_scheduler_rejects_mistagged_requests():
    engine = ServingEngine(M7, A100, SYSTEM)
    scheduler = ContinuousBatchingScheduler(kv_manager=engine.new_kv_manager(),
                                            max_num_seqs=4,
                                            model_name=M7.name)
    wrong = Request(request_id=0, prompt_len=32, output_len=4,
                    arrival_time=0.0, model=M13.name)
    with pytest.raises(ValueError, match="targets model"):
        scheduler.submit([wrong])
    # Untagged and correctly tagged requests are both admitted.
    scheduler.submit([Request(request_id=1, prompt_len=32, output_len=4,
                              arrival_time=0.0),
                      Request(request_id=2, prompt_len=32, output_len=4,
                              arrival_time=0.0, model=M7.name)])


# ----------------------------------------------------------------------
# Model-aware router
# ----------------------------------------------------------------------
class _FakeReplica:
    def __init__(self, swap_cost, outstanding):
        self._swap_cost = swap_cost
        self.outstanding_requests = outstanding
        self.queue_cost_s = 0.05

    def swap_cost_s(self, model):
        return self._swap_cost

    def resolve_model(self, request):
        return request.model or M7.name


def test_model_aware_router_prefers_warm_replicas():
    router = get_router("model-aware")
    request = Request(request_id=0, prompt_len=32, output_len=4,
                      arrival_time=0.0, model=M7.name)
    warm_busy = _FakeReplica(swap_cost=0.0, outstanding=6)
    cold_idle = _FakeReplica(swap_cost=1.0, outstanding=0)
    assert router.route(request, [cold_idle, warm_busy]) == 1
    # ...until the warm queue outweighs the swap: 0.05 * 30 > 1.0.
    warm_swamped = _FakeReplica(swap_cost=0.0, outstanding=30)
    assert router.route(request, [cold_idle, warm_swamped]) == 0


def test_model_aware_router_degrades_to_least_outstanding():
    cluster = ClusterEngine(M7, A100, SYSTEM, num_replicas=2)
    wl = make_uniform_workload(num_requests=12, prompt_len=64, output_len=8,
                               arrival_rate=None, seed=3)
    baseline = cluster.serve(wl.copy_fresh(), router="least-outstanding")
    viaaware = cluster.serve(wl.copy_fresh(), router="model-aware")
    assert baseline.requests_per_replica == viaaware.requests_per_replica
    assert baseline.metrics.ttft.p99 == viaaware.metrics.ttft.p99


# ----------------------------------------------------------------------
# Multiplexed serving end to end
# ----------------------------------------------------------------------
def _serve_multiplexed(**overrides):
    wl = make_multi_model_workload(
        60, models=(M7.name, M13.name), weights=(0.8, 0.2),
        arrival_rate=12.0, prompt_len=128, output_len=32, seed=5)
    cluster = ClusterEngine(M7, A100, SYSTEM, num_replicas=2)
    kwargs = dict(router="model-aware", max_num_seqs=8,
                  multiplex=MultiplexConfig(models=(M7, M13),
                                            max_resident_models=1))
    kwargs.update(overrides)
    return cluster.serve(wl, **kwargs)


def test_multiplexed_serving_end_to_end():
    result = _serve_multiplexed()
    assert result.num_finished == 60
    assert result.multiplex is not None
    assert result.multiplex.swap_ins >= 1
    assert result.multiplex.swap_in_s > 0.0
    assert sum(result.multiplex.requests_by_model.values()) == 60
    # GPU-seconds price physical replicas, not (replica, model) slices.
    assert result.num_replicas == 4
    assert result.physical_replicas == 2
    assert result.gpu_seconds == pytest.approx(2 * result.total_time_s)


def test_multiplexed_by_model_breakouts():
    result = _serve_multiplexed()
    by_model = result.metrics.by_model()
    assert set(by_model) == {M7.name, M13.name}
    assert sum(len(m.requests) for m in by_model.values()) == 60
    for metrics in by_model.values():
        assert metrics.ttft.p50 > 0.0
    payload = result.metrics.to_json()["by_model"]
    assert set(payload) == {M7.name, M13.name}


def test_multiplexed_swap_counters_and_spans():
    result = _serve_multiplexed(telemetry=True)
    counters = result.counters().as_dict()
    assert counters["multiplex_swap_ins_total"] == result.multiplex.swap_ins
    assert counters["multiplex_swap_seconds_total"] == pytest.approx(
        result.multiplex.swap_in_s)
    swaps = [e for e in result.chrome_trace()["traceEvents"]
             if e.get("cat") == "swap"]
    assert len(swaps) == result.multiplex.swap_ins
    assert all(e["name"].startswith("swap:") for e in swaps)


def test_multiplexed_serving_is_deterministic():
    a, b = _serve_multiplexed(), _serve_multiplexed()
    assert a.multiplex.swap_ins == b.multiplex.swap_ins
    assert a.metrics.ttft.p99 == b.metrics.ttft.p99
    assert a.requests_per_replica == b.requests_per_replica


def test_multiplex_mutually_exclusive_modes():
    cluster = ClusterEngine(M7, A100, SYSTEM, num_replicas=2)
    wl = make_uniform_workload(num_requests=4, prompt_len=32, output_len=4,
                               arrival_rate=None, seed=0)
    config = MultiplexConfig(models=(M7, M13))
    with pytest.raises(ValueError, match="autoscaling"):
        cluster.serve(wl, multiplex=config,
                      autoscaler=AutoscalerConfig(min_replicas=1,
                                                  max_replicas=2))
    disagg = ClusterEngine(M7, A100, SYSTEM, num_replicas=2,
                           roles=["prefill", "decode"])
    with pytest.raises(ValueError, match="role-specialised"):
        disagg.serve(wl, multiplex=config)


def test_multiplexed_rejects_unknown_model():
    wl = Workload(requests=[Request(request_id=0, prompt_len=32, output_len=4,
                                    arrival_time=0.0, model="yi-34b")])
    cluster = ClusterEngine(M7, A100, SYSTEM, num_replicas=1)
    with pytest.raises(ValueError, match="multiplex set"):
        cluster.serve(wl, multiplex=MultiplexConfig(models=(M7, M13)))


def test_single_model_config_serves_untagged_workloads():
    wl = make_uniform_workload(num_requests=8, prompt_len=64, output_len=8,
                               arrival_rate=8.0, seed=2)
    cluster = ClusterEngine(M7, A100, SYSTEM, num_replicas=2)
    result = cluster.serve(wl, router="model-aware",
                           multiplex=MultiplexConfig(models=(M7,)))
    assert result.num_finished == 8
    assert result.multiplex.swap_ins == 0
    assert result.multiplex.requests_by_model == {M7.name: 8}


# ----------------------------------------------------------------------
# Traffic: model tags in traces and the multi-model generator
# ----------------------------------------------------------------------
def test_load_trace_rejects_unknown_model():
    lines = [
        '{"arrival_s": 0.0, "prompt_tokens": 8, "output_tokens": 2}',
        '{"arrival_s": 0.5, "prompt_tokens": 8, "output_tokens": 2, '
        '"model": "gpt-17"}',
    ]
    with pytest.raises(ValueError, match="trace line 2: unknown model"):
        load_trace(lines)


def test_load_trace_accepts_registered_model():
    lines = ['{"arrival_s": 0.0, "prompt_tokens": 8, "output_tokens": 2, '
             f'"model": "{M13.name}"}}']
    wl = load_trace(lines)
    assert wl.requests[0].model == M13.name


def test_make_multi_model_workload_mix_and_validation():
    wl = make_multi_model_workload(400, models=(M7.name, M13.name),
                                   weights=(0.9, 0.1), seed=4)
    counts = {M7.name: 0, M13.name: 0}
    for r in wl.requests:
        counts[r.model] += 1
    assert counts[M7.name] > counts[M13.name] * 4
    with pytest.raises(ValueError, match="unknown model"):
        make_multi_model_workload(4, models=("nope",))
    with pytest.raises(ValueError):
        make_multi_model_workload(4, models=(M7.name,), weights=(0.5, 0.5))
