"""Rotary positional embeddings (RoPE).

The implementation pairs channel ``i`` with channel ``i + D/2`` within each
head (the "rotate-half" formulation used by Llama), which is exactly the
pairing SmoothAttention must respect when constraining its per-channel scales
(Section 4.2, Equation 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RotaryEmbedding", "apply_rope"]


@dataclass
class RotaryEmbedding:
    """Precomputed cos/sin tables for rotary embeddings.

    Attributes
    ----------
    head_dim:
        Per-head dimension ``D`` (must be even).
    max_seq_len:
        Longest position for which tables are precomputed.
    theta:
        RoPE base frequency (10 000 for Llama-2, 500 000 for Llama-3).
    """

    head_dim: int
    max_seq_len: int
    theta: float = 10000.0

    def __post_init__(self) -> None:
        if self.head_dim % 2 != 0:
            raise ValueError("head_dim must be even for RoPE")
        half = self.head_dim // 2
        inv_freq = 1.0 / (self.theta ** (np.arange(half, dtype=np.float64) / half))
        positions = np.arange(self.max_seq_len, dtype=np.float64)
        freqs = np.outer(positions, inv_freq)          # [seq, half]
        self.cos = np.cos(freqs)
        self.sin = np.sin(freqs)

    def tables(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the cos/sin tables for the given absolute positions."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.max(initial=0) >= self.max_seq_len:
            raise ValueError(
                f"position {positions.max()} exceeds max_seq_len {self.max_seq_len}"
            )
        return self.cos[positions], self.sin[positions]


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary embedding to ``x`` of shape ``[tokens, heads, head_dim]``.

    ``cos`` / ``sin`` have shape ``[tokens, head_dim // 2]`` and broadcast over
    heads.  Channel ``i`` is rotated together with channel ``i + D/2``.
    """
    x = np.asarray(x, dtype=np.float64)
    half = x.shape[-1] // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    c = cos[:, None, :]
    s = sin[:, None, :]
    rotated_1 = x1 * c - x2 * s
    rotated_2 = x2 * c + x1 * s
    return np.concatenate([rotated_1, rotated_2], axis=-1)
