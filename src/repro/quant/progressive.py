"""Progressive group quantization — the core of the QoQ algorithm (Section 4.1).

Weights ``W`` with shape ``[out_channels, in_channels]`` are quantized in two
levels:

1. **Level 1** — per-(output-)channel *symmetric* INT8 quantization with the
   *protective range* ``[-119, 119]`` and FP16 scales ``s0``:

   ``W ≈ Q0_s8 * s0``.

2. **Level 2** — per-group *asymmetric* UINT4 quantization of the INT8
   intermediate with UINT8 scales ``s1`` and UINT4 zero points ``z``:

   ``Q0_s8 ≈ (Q_u4 - z) * s1``.

Because level-2 scales and zero points are themselves small integers, the
INT4→INT8 dequantization in the GEMM main loop is a pure integer multiply and
subtract, which is what enables the register-level-parallelism kernel of
Section 5.2.  The protective range guarantees that ``(Q_u4 - z) * s1`` can
never leave ``[-128, 127]`` (the overflow example in Figure 6 / Figure 14a is
exactly what goes wrong without it).

The module also implements the *legacy* two-level scheme of VSQuant /
DoubleQuant (quantize straight to 4 bits with FP16 group scales, then quantize
the scales) which the paper compares against at the bottom of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.dtypes import FP16, INT8, PROTECTIVE_INT8, UINT4, UINT8

__all__ = [
    "ProgressiveQuantizedWeight",
    "TwoLevelQuantizedWeight",
    "progressive_quantize",
    "progressive_dequantize_level1",
    "progressive_dequantize",
    "legacy_two_level_quantize",
    "legacy_two_level_dequantize",
]

_EPS = 1e-12


@dataclass
class ProgressiveQuantizedWeight:
    """QoQ W4A8 weight representation.

    Attributes
    ----------
    qweight:
        ``uint8`` array of shape ``[out, in]`` holding UINT4 codes (one code
        per byte; use :mod:`repro.quant.packing` for the packed layout).
    zeros:
        UINT4 zero points.  Shape ``[out, in // group_size]`` for per-group
        quantization or ``[out, 1]`` for per-channel quantization.
    scales_l2:
        UINT8 level-2 scales with the same shape as ``zeros``.  All ones for
        per-channel quantization (level 2 degenerates).
    scales_l1:
        FP16 level-1 per-channel scales of shape ``[out, 1]``.
    group_size:
        Group size ``g`` (None for per-channel quantization).
    """

    qweight: np.ndarray
    zeros: np.ndarray
    scales_l2: np.ndarray
    scales_l1: np.ndarray
    group_size: Optional[int]

    @property
    def out_channels(self) -> int:
        return self.qweight.shape[0]

    @property
    def in_channels(self) -> int:
        return self.qweight.shape[1]

    @property
    def is_per_channel(self) -> bool:
        return self.group_size is None

    def memory_bytes(self) -> int:
        """Storage footprint assuming INT4 weights are packed two per byte."""
        weight_bytes = self.qweight.size // 2 + (self.qweight.size % 2)
        zero_bytes = self.zeros.size // 2 + (self.zeros.size % 2)
        scale_l2_bytes = self.scales_l2.size
        scale_l1_bytes = self.scales_l1.size * 2  # fp16
        return weight_bytes + zero_bytes + scale_l2_bytes + scale_l1_bytes


@dataclass
class TwoLevelQuantizedWeight:
    """Legacy VSQuant/DoubleQuant-style representation (Figure 6, bottom)."""

    qweight: np.ndarray          # uint8 holding UINT4 codes, [out, in]
    zeros: np.ndarray            # uint8 holding UINT4 zero points, [out, n_groups]
    group_scales_q: np.ndarray   # uint8 quantized group scales, [out, n_groups]
    channel_scales: np.ndarray   # fp16 per-channel scales of the group scales, [out, 1]
    group_size: int


def _level1_int8(weight: np.ndarray, protective: bool) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel symmetric INT8 quantization (level 1)."""
    qmax = PROTECTIVE_INT8.qmax if protective else INT8.symmetric_qmax
    amax = np.max(np.abs(weight), axis=1, keepdims=True)
    scales = np.maximum(amax, _EPS) / qmax
    scales = scales.astype(FP16).astype(np.float64)  # fp16 storage, fp32+ math
    q0 = np.clip(np.round(weight / scales), -qmax, qmax).astype(np.int16)
    return q0, scales


def progressive_quantize(
    weight: np.ndarray,
    group_size: Optional[int] = 128,
    protective_range: bool = True,
) -> ProgressiveQuantizedWeight:
    """Quantize ``weight`` with QoQ progressive group quantization.

    Parameters
    ----------
    weight:
        Floating-point weight of shape ``[out_channels, in_channels]``.
    group_size:
        Level-2 group size ``g`` (128 in the paper).  ``None`` selects the
        per-channel W4A8 variant in which level 2 degenerates to a single
        asymmetric UINT4 quantization per output channel with unit scale
        folded into the FP16 level-1 scale.
    protective_range:
        If True (default) level 1 uses the protective ``[-119, 119]`` range.
        Disabling it reproduces the overflow discussed in Section 4.1 and is
        only exposed for the ablation benchmark.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {weight.shape}")
    out_ch, in_ch = weight.shape

    q0, scales_l1 = _level1_int8(weight, protective=protective_range)

    if group_size is None:
        # Per-channel W4A8: one asymmetric UINT4 quantization per row of the
        # INT8 intermediate.  Level-2 scales are folded into level-1 scales
        # (Section 5.2.2: "second-level scaling factors are omitted").
        qmin = q0.min(axis=1, keepdims=True).astype(np.float64)
        qmax = q0.max(axis=1, keepdims=True).astype(np.float64)
        span = np.maximum(qmax - qmin, _EPS)
        s1 = span / (UINT4.qmax - UINT4.qmin)
        zeros = np.clip(np.round(-qmin / s1), UINT4.qmin, UINT4.qmax)
        q4 = np.clip(np.round(q0 / s1 + zeros), UINT4.qmin, UINT4.qmax)
        # Fold the floating-point level-2 scale into the FP16 level-1 scale.
        scales_l1 = (scales_l1 * s1).astype(FP16).astype(np.float64)
        return ProgressiveQuantizedWeight(
            qweight=q4.astype(UINT4.storage_dtype),
            zeros=zeros.astype(UINT4.storage_dtype),
            scales_l2=np.ones_like(zeros, dtype=UINT8.storage_dtype),
            scales_l1=scales_l1.astype(FP16),
            group_size=None,
        )

    if in_ch % group_size != 0:
        raise ValueError(
            f"in_channels ({in_ch}) must be divisible by group_size ({group_size})"
        )
    n_groups = in_ch // group_size
    q0_grouped = q0.reshape(out_ch, n_groups, group_size).astype(np.float64)

    # Level 2: asymmetric UINT4 with *integer* scales and zero points.
    gmin = q0_grouped.min(axis=2)
    gmax = q0_grouped.max(axis=2)
    s1 = np.round((gmax - gmin) / (UINT4.qmax - UINT4.qmin))
    s1 = np.clip(s1, 1, UINT8.qmax)
    zeros = np.clip(np.round(-gmin / s1), UINT4.qmin, UINT4.qmax)
    q4 = np.round(q0_grouped / s1[..., None] + zeros[..., None])
    q4 = np.clip(q4, UINT4.qmin, UINT4.qmax)

    return ProgressiveQuantizedWeight(
        qweight=q4.reshape(out_ch, in_ch).astype(UINT4.storage_dtype),
        zeros=zeros.astype(UINT4.storage_dtype),
        scales_l2=s1.astype(UINT8.storage_dtype),
        scales_l1=scales_l1.astype(FP16),
        group_size=group_size,
    )


def progressive_dequantize_level1(pqw: ProgressiveQuantizedWeight) -> np.ndarray:
    """Dequantize only level 2, recovering the INT8 intermediate tensor.

    This is exactly the operation the QServe GEMM main loop performs on CUDA
    cores; the result must fit in signed INT8 — a property guaranteed by the
    protective range and asserted here.
    """
    q4 = pqw.qweight.astype(np.int32)
    if pqw.is_per_channel:
        zeros = pqw.zeros.astype(np.int32)
        q0 = q4 - zeros
    else:
        out_ch, in_ch = pqw.qweight.shape
        g = pqw.group_size
        n_groups = in_ch // g
        q4g = q4.reshape(out_ch, n_groups, g)
        s1 = pqw.scales_l2.astype(np.int32)[..., None]
        z = pqw.zeros.astype(np.int32)[..., None]
        q0 = ((q4g - z) * s1).reshape(out_ch, in_ch)
    if q0.min() < INT8.qmin or q0.max() > INT8.qmax:
        raise OverflowError(
            "level-1 intermediate escaped the INT8 range "
            f"[{q0.min()}, {q0.max()}]; protective range violated"
        )
    return q0.astype(np.int8)


def progressive_dequantize(pqw: ProgressiveQuantizedWeight) -> np.ndarray:
    """Full dequantization back to floating point (float64 math, fp16 scales)."""
    if pqw.is_per_channel:
        q4 = pqw.qweight.astype(np.float64)
        zeros = pqw.zeros.astype(np.float64)
        scales = pqw.scales_l1.astype(np.float64)
        return (q4 - zeros) * scales
    q0 = progressive_dequantize_level1(pqw).astype(np.float64)
    return q0 * pqw.scales_l1.astype(np.float64)


def legacy_two_level_quantize(weight: np.ndarray, group_size: int = 128) -> TwoLevelQuantizedWeight:
    """VSQuant / DoubleQuant-style two-level quantization (Figure 6, bottom).

    Weights are quantized directly to UINT4 with per-group *floating point*
    scales; those scales are then quantized to UINT8 with per-channel FP16
    scales.  Dequantizing the UINT4 codes with the integer group scales does
    **not** recover an INT8 tensor, which is why this scheme cannot run its
    GEMM on INT8 tensor cores (Section 4.1, "Compared to previous two-level
    quantization").
    """
    weight = np.asarray(weight, dtype=np.float64)
    out_ch, in_ch = weight.shape
    if in_ch % group_size != 0:
        raise ValueError("in_channels must be divisible by group_size")
    n_groups = in_ch // group_size
    wg = weight.reshape(out_ch, n_groups, group_size)

    gmin = wg.min(axis=2)
    gmax = wg.max(axis=2)
    scales_fp = np.maximum(gmax - gmin, _EPS) / (UINT4.qmax - UINT4.qmin)
    zeros = np.clip(np.round(-gmin / scales_fp), UINT4.qmin, UINT4.qmax)
    q4 = np.clip(np.round(wg / scales_fp[..., None] + zeros[..., None]),
                 UINT4.qmin, UINT4.qmax)

    # Second level: per-channel symmetric UINT8 quantization of the scales.
    smax = np.max(scales_fp, axis=1, keepdims=True)
    channel_scales = np.maximum(smax, _EPS) / UINT8.qmax
    channel_scales = channel_scales.astype(FP16).astype(np.float64)
    scales_q = np.clip(np.round(scales_fp / channel_scales), 1, UINT8.qmax)

    return TwoLevelQuantizedWeight(
        qweight=q4.reshape(out_ch, in_ch).astype(UINT4.storage_dtype),
        zeros=zeros.astype(UINT4.storage_dtype),
        group_scales_q=scales_q.astype(UINT8.storage_dtype),
        channel_scales=channel_scales.astype(FP16),
        group_size=group_size,
    )


def legacy_two_level_dequantize(tlw: TwoLevelQuantizedWeight) -> np.ndarray:
    """Dequantize a legacy two-level weight back to floating point."""
    out_ch, in_ch = tlw.qweight.shape
    g = tlw.group_size
    n_groups = in_ch // g
    q4 = tlw.qweight.astype(np.float64).reshape(out_ch, n_groups, g)
    zeros = tlw.zeros.astype(np.float64)[..., None]
    scales = (tlw.group_scales_q.astype(np.float64)
              * tlw.channel_scales.astype(np.float64))[..., None]
    return ((q4 - zeros) * scales).reshape(out_ch, in_ch)
