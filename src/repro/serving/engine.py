"""Serving engine: per-iteration latency model + event-driven serving loop.

``ServingEngine`` binds a model geometry, a GPU and a serving-system preset.
It answers two kinds of questions:

* *kernel-level*: how long does one decode iteration (or one prefill, or one
  mixed chunked-prefill+decode iteration) take at a given batch size and
  context length?  These latencies come from the GPU cost model
  (:mod:`repro.gpu.gemm`, :mod:`repro.gpu.attention_kernel`) and drive
  Figures 2a, 17 and the throughput tables.
* *system-level*: given a workload, a memory budget and a
  :class:`repro.serving.policies.SchedulingConfig`, run the continuous
  batching loop on a simulated clock and report generation throughput (the
  quantity Table 4 calls "maximum achievable throughput") together with
  per-request latency metrics (TTFT/TPOT/E2E percentiles, SLO goodput).

The engine is optionally tensor-parallel: a
:class:`repro.serving.parallel.ParallelConfig` shards every projection,
attention head and the KV cache across ``tp_degree`` GPUs and charges the
two per-layer activation all-reduces to the interconnect
(:class:`repro.gpu.specs.InterconnectSpec`).  ``tp_degree=1`` (the default)
is bitwise-identical to the single-GPU engine.

The serving loop itself is policy-free: admission order and head-of-line
bypass come from the scheduling config's :class:`SchedulerPolicy`, the
composition of each iteration from its :class:`IterationPlanner` (legacy
stall-the-world prefill, or chunked prefill where prompt tokens share
iterations with the decode batch), and page pressure is resolved by
preempt-and-recompute when the config enables it.  The default
``LEGACY_SCHEDULING`` preset reproduces the seed engine's behaviour exactly —
same admissions, same cost-model calls in the same order, bitwise-identical
throughput.

The loop is exposed at two granularities: :meth:`ServingEngine.serve` runs a
workload to completion, while :class:`EngineStepper` advances the same loop
one iteration at a time — the hook :class:`repro.serving.cluster.ClusterEngine`
uses to run several replica engines against one shared clock.

With a :class:`repro.serving.speculative.SpeculativeConfig` attached, decode
iterations run speculatively: a draft engine proposes ``k`` tokens per
request (priced as ``k`` real draft decode steps), the target verifies all
``k + 1`` positions in one batched step (:meth:`speculative_verify_step`,
which reuses the chunked-prefill GEMM/attention path plus a full-width LM
head), and the accepted prefix commits in a single multi-token scheduler
step.  ``speculative=None`` (the default) leaves every existing result
bitwise-identical.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.gpu.attention_kernel import (
    KERNEL_LAUNCH_OVERHEAD_S,
    KV_KERNELS,
    attention_decode_latency,
)
from repro.gpu.gemm import GEMM_PRECISIONS, gemm_latency
from repro.gpu.specs import GPUSpec
from repro.model.config import ModelConfig
from repro.serving.cost_cache import CostModelCache, cache_enabled_default
from repro.serving.kv_cache_manager import PagedKVCacheManager
from repro.serving.metrics import ServingMetrics
from repro.serving.parallel import ParallelConfig
from repro.serving.prefix_cache import PrefixCache, PrefixCacheStats
from repro.serving.policies import (
    IterationPlan,
    LEGACY_SCHEDULING,
    SchedulingConfig,
)
from repro.serving.precision import SystemConfig
from repro.serving.request import Request, RequestState, Workload
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.speculative import (
    SpeculationStats,
    SpeculativeConfig,
    SpeculativeDecoder,
)
from repro.serving.telemetry import (
    CounterRegistry,
    TelemetryConfig,
    Tracer,
    collect_counters,
)

__all__ = ["StepBreakdown", "ServingResult", "ServingEngine", "EngineStepper"]

#: Fixed per-iteration overhead for kernels not modelled explicitly
#: (normalisation, rotary embedding, sampling, python/runtime launch gaps).
_STEP_OVERHEAD_S = 100e-6

#: Guard against a non-terminating serving loop (scheduler/planner bugs).
_MAX_ITERATIONS = 10_000_000


def _resolve_tracer(telemetry: Union[None, bool, TelemetryConfig, Tracer]
                    ) -> Optional[Tracer]:
    """Normalize the ``telemetry=`` argument accepted by serve()/stepper."""
    if telemetry is None or telemetry is False:
        return None
    if telemetry is True:
        return Tracer()
    if isinstance(telemetry, TelemetryConfig):
        return Tracer(telemetry)
    if isinstance(telemetry, Tracer):
        return telemetry
    raise TypeError(f"telemetry must be None, bool, TelemetryConfig or "
                    f"Tracer, got {type(telemetry).__name__}")


@dataclass
class StepBreakdown:
    """Latency decomposition of one model iteration (seconds).

    ``comm`` is the tensor-parallel all-reduce time; it is zero on a
    single-GPU engine.
    """

    gemm: float
    attention: float
    other: float
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.gemm + self.attention + self.other + self.comm

    def fraction(self, part: str) -> float:
        value = getattr(self, part)
        return 0.0 if self.total == 0 else value / self.total


@dataclass
class ServingResult:
    """Outcome of a full serving-loop simulation."""

    total_time_s: float
    generated_tokens: int
    prompt_tokens: int
    peak_batch: int
    num_iterations: int
    num_finished: int = 0
    num_unserved: int = 0
    #: Requests shed by tier-aware admission (a subset of ``num_unserved``);
    #: zero unless ``tier_admission`` with a drop cutoff was on.
    num_dropped: int = 0
    num_preemptions: int = 0
    recomputed_prefill_tokens: int = 0
    #: Simulated seconds the GPU spent executing iterations (excludes idle
    #: gaps between arrivals); ``busy_time_s / total_time_s`` is the
    #: replica's utilization over the run.
    busy_time_s: float = 0.0
    metrics: Optional[ServingMetrics] = None
    #: Peak KV-page utilization observed across the run's iterations.
    kv_utilization_peak: float = 0.0
    #: Prefix-cache counters; ``None`` unless prefix caching was enabled.
    prefix_stats: Optional[PrefixCacheStats] = None
    #: Speculative-decoding counters; ``None`` unless speculation was enabled.
    spec_stats: Optional[SpeculationStats] = None
    #: Unified counter snapshot of the whole run
    #: (:class:`~repro.serving.telemetry.CounterRegistry`): every gauge the
    #: human-readable summaries print, reachable programmatically — and a
    #: Prometheus-style text dump via ``counters.prometheus_text()``.
    counters: Optional[CounterRegistry] = None
    #: The run's :class:`~repro.serving.telemetry.Tracer`; ``None`` unless
    #: the run was started with ``telemetry=`` enabled.
    telemetry: Optional[Tracer] = None

    @property
    def generation_throughput(self) -> float:
        """Generated tokens per second — the paper's headline metric."""
        return 0.0 if self.total_time_s == 0 else self.generated_tokens / self.total_time_s

    @property
    def tokens_per_iteration(self) -> float:
        """Mean generated tokens committed per executed iteration.

        Plain decoding commits at most one token per running sequence per
        iteration, so the decode batch size caps this gauge; speculative
        decoding is the only way past that cap.
        """
        return (0.0 if self.num_iterations == 0
                else self.generated_tokens / self.num_iterations)

    @property
    def acceptance_rate(self) -> float:
        """Draft-token acceptance rate (0 when speculation was off)."""
        return 0.0 if self.spec_stats is None else self.spec_stats.acceptance_rate

    @property
    def speculation_speedup(self) -> float:
        """Estimated decode speedup vs. one-token iterations (0 when off)."""
        return 0.0 if self.spec_stats is None else self.spec_stats.speedup

    @property
    def cache_hit_rate(self) -> float:
        """Prefix-cache token hit rate (0 when caching was off)."""
        return 0.0 if self.prefix_stats is None else self.prefix_stats.hit_rate

    @property
    def saved_prefill_tokens(self) -> int:
        """Prefill tokens skipped via prefix-cache hits (0 when off)."""
        return (0 if self.prefix_stats is None
                else self.prefix_stats.saved_prefill_tokens)

    def summary_text(self) -> str:
        """Human-readable summary: latency percentiles plus the KV-cache
        utilization and prefix-cache hit-rate gauges."""
        lines = [f"throughput: {self.generation_throughput:.1f} tok/s "
                 f"({self.num_finished} finished, {self.num_unserved} unserved)"]
        if self.metrics is not None and len(self.metrics):
            lines.append(self.metrics.summary_text())
        lines.append(f"KV utilization: peak {self.kv_utilization_peak * 100:.1f}%")
        lines.append(f"tokens/iteration: {self.tokens_per_iteration:.2f}")
        if self.spec_stats is not None:
            s = self.spec_stats
            lines.append(
                f"speculation: acceptance {s.acceptance_rate * 100:.1f}%, "
                f"{s.mean_accepted_per_step:.2f} accepted tokens/step, "
                f"est. speedup {s.speedup:.2f}x")
        if self.prefix_stats is not None:
            s = self.prefix_stats
            lines.append(
                f"prefix cache: hit rate {s.hit_rate * 100:.1f}%, "
                f"{s.saved_prefill_tokens} prefill tokens saved, "
                f"{s.evicted_pages} pages evicted")
            if s.demoted_pages_total:
                lines.append(
                    f"KV demotion: {s.demoted_pages_total} pages demoted "
                    f"(peak {s.peak_demoted_pages} resident), "
                    f"{s.promoted_pages_total} promoted, "
                    f"{s.demoted_hit_tokens} hit tokens dequantized")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """Structured (JSON-serializable) export of the whole result.

        Everything :meth:`summary_text` prints — and every derived gauge —
        appears here as plain dicts and numbers, so benchmark sweeps and
        notebooks consume results without parsing text.
        """
        payload: Dict = {
            "total_time_s": self.total_time_s,
            "generated_tokens": self.generated_tokens,
            "prompt_tokens": self.prompt_tokens,
            "peak_batch": self.peak_batch,
            "num_iterations": self.num_iterations,
            "num_finished": self.num_finished,
            "num_unserved": self.num_unserved,
            "num_dropped": self.num_dropped,
            "num_preemptions": self.num_preemptions,
            "recomputed_prefill_tokens": self.recomputed_prefill_tokens,
            "busy_time_s": self.busy_time_s,
            "kv_utilization_peak": self.kv_utilization_peak,
            "generation_throughput": self.generation_throughput,
            "tokens_per_iteration": self.tokens_per_iteration,
            "acceptance_rate": self.acceptance_rate,
            "speculation_speedup": self.speculation_speedup,
            "cache_hit_rate": self.cache_hit_rate,
            "saved_prefill_tokens": self.saved_prefill_tokens,
            "metrics": None if self.metrics is None else self.metrics.to_json(),
            "prefix_stats": (None if self.prefix_stats is None
                             else asdict(self.prefix_stats)),
            "spec_stats": (None if self.spec_stats is None
                           else asdict(self.spec_stats)),
            "counters": (None if self.counters is None
                         else self.counters.as_dict()),
        }
        return payload

    def chrome_trace(self) -> Dict:
        """Chrome trace-event JSON of the run (requires ``telemetry=`` on)."""
        if self.telemetry is None:
            raise ValueError(
                "this run was not traced; pass telemetry=True to serve()")
        return self.telemetry.chrome_trace()


class ServingEngine:
    """Cost-model-driven serving simulator for one (model, GPU, system) triple.

    ``parallel`` shards the replica across ``tp_degree`` GPUs (weights, KV
    cache, GEMM and attention work) and adds the per-layer all-reduce cost;
    omitted it defaults to the single-GPU identity.
    """

    def __init__(self, model: ModelConfig, gpu: GPUSpec, system: SystemConfig,
                 max_seq_len: int = 2048,
                 parallel: Optional[ParallelConfig] = None,
                 cost_cache: Optional[bool] = None) -> None:
        self.model = model
        self.gpu = gpu
        self.system = system
        self.max_seq_len = max_seq_len
        self.parallel = parallel or ParallelConfig()
        self.parallel.validate_for(model)
        self.gemm_precision = GEMM_PRECISIONS[system.gemm_precision]
        self.attention_kernel = KV_KERNELS[system.attention_kernel]
        #: Memoises the pure per-shape latency evaluations below (see
        #: :mod:`repro.serving.cost_cache`).  Everything that feeds the
        #: latency formulas besides the batch shape is fixed at construction,
        #: so hits are bitwise-identical to recomputation.  ``cost_cache``
        #: overrides the process-wide ``REPRO_COST_CACHE`` default.
        self.cost_cache = CostModelCache(
            enabled=cache_enabled_default() if cost_cache is None else cost_cache)

    @property
    def tp_degree(self) -> int:
        return self.parallel.tp_degree

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def weight_bytes(self) -> float:
        """Whole-model weight footprint (across all TP shards)."""
        return float(self.model.weight_bytes(self.system.weight_bits))

    def weight_bytes_per_gpu(self) -> float:
        """Per-GPU weight footprint under tensor-parallel sharding."""
        return self.weight_bytes() / self.parallel.tp_degree

    def kv_capacity_bytes(self) -> float:
        """Memory left for KV cache, aggregated across the TP group.

        Each GPU keeps ``1/tp`` of the weights plus its own activation
        workspace; KV heads shard the same way, so the replica's usable KV
        capacity is the per-GPU leftover times the TP degree.
        """
        weights = self.weight_bytes_per_gpu()
        workspace = weights * self.system.activation_workspace_factor + 1.0 * (1 << 30)
        per_gpu = max(0.0, self.gpu.memory_bytes - weights - workspace)
        return per_gpu * self.parallel.tp_degree

    def kv_bytes_per_token(self) -> float:
        """KV bytes per token under this engine's precision preset.

        Delegates to the preset's shared geometry formula, so the cluster's
        transfer pricing and the speculative decoder's draft-KV split read
        the exact float the page allocator uses — no rebuilt managers.
        """
        return self.system.kv_bytes_per_token(self.model)

    def new_kv_manager(self, capacity_bytes: Optional[float] = None
                       ) -> PagedKVCacheManager:
        """A fresh KV manager; ``capacity_bytes`` overrides the memory-model
        capacity (speculative decoding reserves part of it for the draft)."""
        if capacity_bytes is None:
            capacity_bytes = self.kv_capacity_bytes()
        return PagedKVCacheManager(
            model=self.model, system=self.system,
            capacity_bytes=capacity_bytes,
            max_seq_len=self.max_seq_len)

    # ------------------------------------------------------------------
    # Kernel-level latency
    # ------------------------------------------------------------------
    def _block_gemm_latency(self, tokens: int) -> float:
        """Sum of one transformer block's per-GPU GEMM latencies for ``tokens`` rows.

        Under tensor parallelism the QKV and gate/up projections shard their
        output dimension and the output/down projections shard their
        reduction dimension (Megatron column/row parallelism), so each GPU
        runs the same four GEMMs at ``1/tp`` of one matrix dimension.
        Memoised on ``tokens`` — a serving loop prices the same row counts
        (the decode batch sizes and chunk budgets in flight) thousands of
        times per run.
        """
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("gemm", tokens))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        h = self.model.hidden_size
        kv = self.model.kv_dim
        inter = self.model.intermediate_size
        tp = self.parallel.tp_degree
        p = self.gemm_precision
        shapes = [
            (tokens, (h + 2 * kv) // tp, h),    # fused QKV projection (column)
            (tokens, h, h // tp),               # output projection (row)
            (tokens, 2 * inter // tp, h),       # fused gate + up projection (column)
            (tokens, h, inter // tp),           # down projection (row)
        ]
        total = 0.0
        for m, n, k in shapes:
            total += gemm_latency(self.gpu, m, n, k, p).total
        if self.model.num_experts > 1:
            # MoE: each token is routed to `experts_per_token` experts; GEMM
            # work scales accordingly but weight traffic covers all experts'
            # parameters once per iteration (they all must be resident).
            moe_factor = self.model.experts_per_token
            ffn = (gemm_latency(self.gpu, tokens, 2 * inter // tp, h, p).total
                   + gemm_latency(self.gpu, tokens, h, inter // tp, p).total)
            total += ffn * (moe_factor - 1)
        if cache.enabled:
            cache.store[("gemm", tokens)] = total
        return total

    def _prefill_attention_latency(self, macs: float) -> float:
        """Compute-bound FP16 tensor-core attention latency for ``macs`` MACs."""
        return (2.0 * macs / (self.gpu.tensor_core_tops("fp16") * 1e12
                              * self.gpu.compute_efficiency)) * self.model.num_layers

    def _lm_head_latency(self, batch: int) -> float:
        """Latency of the (vocab-sharded) FP16 LM head for ``batch`` tokens."""
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("lm_head", batch))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        vocab = self.parallel.shard_ceil(self.model.vocab_size)
        value = gemm_latency(self.gpu, batch, vocab, self.model.hidden_size,
                             GEMM_PRECISIONS["fp16"]).total
        if cache.enabled:
            cache.store[("lm_head", batch)] = value
        return value

    def _comm_latency(self, tokens: int) -> float:
        """Tensor-parallel all-reduce time of one iteration over ``tokens`` rows."""
        if not self.parallel.is_parallel:
            return 0.0
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("comm", tokens))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        value = self.parallel.block_comm_latency(
            tokens, self.model.hidden_size, self.model.num_layers)
        if cache.enabled:
            cache.store[("comm", tokens)] = value
        return value

    def _decode_attention_latency(self, batch: int, context_len: int) -> float:
        """All-layer decode-attention latency for ``batch`` sequences over
        ``context_len`` cached tokens (memoised on the ``(batch, context)``
        shape — the pair a steady decode batch repeats step after step)."""
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("attn", batch, context_len))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        tp = self.parallel.tp_degree
        value = attention_decode_latency(
            self.gpu, self.attention_kernel, batch, max(1, context_len),
            self.model.num_heads // tp, self.model.num_kv_heads // tp,
            self.model.head_dim,
        ).total * self.model.num_layers
        if cache.enabled:
            cache.store[("attn", batch, context_len)] = value
        return value

    def _kv_reprice_latency(self, tokens: int, read_bytes_per_token: float,
                            write_bytes_per_token: float) -> float:
        """Cost of re-quantizing ``tokens`` of KV state on this engine's GPUs.

        One fused pass over the KV elements, shaped like the Fig. 18 dequant
        epilogue of the QServe KV4 kernel: memory moves the source bytes in
        and the target bytes out, CUDA cores pay the bit-trick dequantization
        plus control overhead per element in FP16, and the roofline max of
        the two plus one kernel launch is the cost.  KV heads shard across
        the TP group like everywhere else.
        """
        if tokens <= 0:
            return 0.0
        tp = self.parallel.tp_degree
        elements = 2.0 * tokens * self.model.num_layers * self.model.kv_dim / tp
        mem_bytes = (read_bytes_per_token + write_bytes_per_token) * tokens / tp
        mem_time = mem_bytes / (self.gpu.effective_bandwidth_gbps * 1e9)
        kernel = KV_KERNELS["kv4-qserve"]
        ops = kernel.dequant_ops_per_element + kernel.control_ops_per_element
        cuda_peak = (self.gpu.cuda_core_tops(kernel.compute_dtype) * 1e12
                     * self.gpu.compute_efficiency)
        compute_time = elements * ops / cuda_peak
        return ((max(mem_time, compute_time) + KERNEL_LAUNCH_OVERHEAD_S)
                / self.system.runtime_efficiency)

    def kv_dequant_latency(self, tokens: int) -> float:
        """Cost of promoting ``tokens`` of demoted (4-bit) KV state back to
        this system's native precision — charged when a request hits a
        prefix-cache block the cache demoted under memory pressure."""
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("kv_dequant", tokens))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        value = self._kv_reprice_latency(
            tokens,
            self.system.demoted_kv_bytes_per_token(self.model),
            self.system.kv_bytes_per_token(self.model))
        if cache.enabled:
            cache.store[("kv_dequant", tokens)] = value
        return value

    def kv_transcode_latency(self, tokens: int, source: SystemConfig) -> float:
        """Cost of re-quantizing ``tokens`` of KV state arriving from a
        replica running ``source`` into this engine's KV precision — the
        landing-side repricing of a mixed-precision KV migration."""
        cache = self.cost_cache
        if cache.enabled:
            value = cache.store.get(("kv_transcode", source.name, tokens))
            if value is not None:
                cache.hits += 1
                return value
            cache.misses += 1
        value = self._kv_reprice_latency(
            tokens,
            source.kv_bytes_per_token(self.model),
            self.system.kv_bytes_per_token(self.model))
        if cache.enabled:
            cache.store[("kv_transcode", source.name, tokens)] = value
        return value

    def decode_step(self, batch: int, context_len: int) -> StepBreakdown:
        """Latency of one decoding iteration for ``batch`` sequences."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        gemm = self._block_gemm_latency(batch) * self.model.num_layers
        attn = self._decode_attention_latency(batch, context_len)
        # LM head (kept in FP16 by every system).
        lm = self._lm_head_latency(batch)
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=(gemm + lm) / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff,
                             comm=self._comm_latency(batch))

    def prefill(self, batch: int, prompt_len: int) -> StepBreakdown:
        """Latency of prefilling ``batch`` prompts of ``prompt_len`` tokens."""
        tokens = batch * prompt_len
        gemm = self._block_gemm_latency(tokens) * self.model.num_layers
        # Prefill attention is a compute-bound FP16 matmul of cost
        # 2 * b * S^2 * H * D MACs per layer (QK^T and SV), on tensor cores;
        # head sharding divides the MACs across the TP group.
        macs = 2.0 * batch * prompt_len * prompt_len * self.model.num_heads * self.model.head_dim
        attn = self._prefill_attention_latency(macs / self.parallel.tp_degree)
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=gemm / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff,
                             comm=self._comm_latency(tokens))

    def mixed_step(self, prefill_chunks: List[Tuple[int, int]],
                   decode_batch: int, decode_context: int) -> StepBreakdown:
        """Latency of one chunked-prefill iteration.

        ``prefill_chunks`` holds ``(chunk_len, tokens_already_prefilled)``
        pairs: each chunk's queries attend to the KV state accumulated so far
        plus the chunk itself, so a prompt split into chunks costs the same
        order of attention MACs as the monolithic prefill.  ``decode_batch``
        sequences additionally each generate one token against
        ``decode_context`` tokens of KV cache.  GEMM cost is shared — all
        prefill-chunk and decode tokens go through the projections as one
        batched matmul, which is exactly why chunked prefill keeps the GPU
        saturated without stalling decodes.
        """
        tp = self.parallel.tp_degree
        chunk_tokens = sum(c for c, _ in prefill_chunks)
        tokens = chunk_tokens + decode_batch
        if tokens <= 0:
            raise ValueError("mixed_step needs at least one token of work")
        gemm = self._block_gemm_latency(tokens) * self.model.num_layers
        macs = 0.0
        for chunk_len, done in prefill_chunks:
            macs += 2.0 * chunk_len * (done + chunk_len) * \
                self.model.num_heads * self.model.head_dim
        attn = self._prefill_attention_latency(macs / tp) if macs else 0.0
        if decode_batch > 0:
            attn += self._decode_attention_latency(decode_batch, decode_context)
        # LM head only for the decode tokens; mid-prompt logits are discarded.
        lm = 0.0
        if decode_batch > 0:
            lm = self._lm_head_latency(decode_batch)
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=(gemm + lm) / eff, attention=attn / eff,
                             other=_STEP_OVERHEAD_S / eff,
                             comm=self._comm_latency(tokens))

    def speculative_verify_step(self, verify_chunks: List[Tuple[int, int]],
                                prefill_chunks: List[Tuple[int, int]] = (),
                                decode_batch: int = 0,
                                decode_context: int = 0) -> StepBreakdown:
        """Latency of one speculative verification iteration.

        ``verify_chunks`` holds one ``(tokens, context)`` pair per
        speculating request: the ``k + 1`` candidate positions (drafted
        tokens plus the bonus position) score against ``context`` tokens of
        KV state plus the block itself — the same GEMM/attention shape as a
        chunked-prefill chunk, so verification reuses :meth:`mixed_step`'s
        cost path and shares its projection GEMMs with any ``prefill_chunks``
        and plain decodes riding the iteration.  The one difference from a
        prefill chunk: *every* verified position needs logits to compare
        against the draft, so the LM head covers all verify tokens instead
        of being skipped for mid-chunk positions.
        """
        if not verify_chunks:
            raise ValueError("speculative_verify_step needs >= 1 verify chunk")
        chunks = list(prefill_chunks) + list(verify_chunks)
        base = self.mixed_step(chunks, decode_batch, decode_context)
        lm = self._lm_head_latency(sum(t for t, _ in verify_chunks))
        eff = self.system.runtime_efficiency
        return StepBreakdown(gemm=base.gemm + lm / eff, attention=base.attention,
                             other=base.other, comm=base.comm)

    # ------------------------------------------------------------------
    # System-level serving loop
    # ------------------------------------------------------------------
    def _plan_latency(self, plan: IterationPlan) -> float:
        """Cost-model latency of executing one iteration plan.

        Prefix-cache hits shrink the work: only a request's cold suffix is
        prefilled, but its queries still attend across the cached prefix, so
        cached tokens enter the attention context (the ``done`` offset of
        each chunk) without contributing projection GEMM rows.
        """
        if plan.stalled_prefill:
            if any(r.cached_tokens for r, _ in plan.prefill_chunks):
                # Cache-hit prompts attend to their cached prefix; the
                # monolithic prefill call cannot express that offset, so the
                # batch goes through the chunked cost path in one iteration.
                chunks = [(r.prefill_target, r.cached_tokens)
                          for r, _ in plan.prefill_chunks]
                return self.mixed_step(chunks, 0, 0).total
            # Legacy batched prefill: every admitted prompt is padded to the
            # longest one and prefilled in a single call.
            prompt_len = max(r.prefill_target for r, _ in plan.prefill_chunks)
            return self.prefill(len(plan.prefill_chunks), prompt_len).total
        decode = plan.decode
        if not plan.prefill_chunks:
            batch = len(decode)
            context = int(sum(r.context_len for r in decode) / batch)
            return self.decode_step(batch, context).total
        decode_context = 0
        if decode:
            decode_context = int(sum(r.context_len for r in decode) / len(decode))
        return self.mixed_step(plan.chunk_pairs(), len(decode),
                               decode_context).total

    def serve(self, workload: Workload, max_num_seqs: Optional[int] = None,
              scheduling: Optional[SchedulingConfig] = None,
              speculative: Optional[SpeculativeConfig] = None,
              telemetry: Union[None, bool, TelemetryConfig, Tracer] = None
              ) -> ServingResult:
        """Run the continuous-batching loop over ``workload`` on a simulated clock.

        ``scheduling`` selects the policy/planner/preemption preset; the
        default :data:`LEGACY_SCHEDULING` reproduces the seed engine exactly.
        ``speculative`` turns decode iterations into draft-and-verify steps
        (see :mod:`repro.serving.speculative`); ``None`` keeps every result
        bitwise-identical to the non-speculative engine.
        ``telemetry`` attaches a :class:`~repro.serving.telemetry.Tracer`
        (``True`` for the defaults, a :class:`TelemetryConfig` to tune the
        recorders, or a pre-built tracer); the trace rides back on
        ``ServingResult.telemetry``.  Tracing only *observes* — a traced run
        simulates the exact same schedule as an untraced one.
        Requests a configuration can never admit (e.g. a context larger than
        the whole KV cache under conservative reservation) are left unserved
        and counted in ``ServingResult.num_unserved`` rather than hanging the
        loop.
        """
        stepper = EngineStepper(self, scheduling=scheduling,
                                max_num_seqs=max_num_seqs,
                                speculative=speculative,
                                telemetry=telemetry)
        stepper.submit(list(workload.requests))
        stepper.run()
        return stepper.result(workload)


class EngineStepper:
    """Incremental driver of one engine's continuous-batching loop.

    Owns the scheduler, planner and simulated clock of a single serving run
    and advances them one iteration per :meth:`step`.
    :meth:`ServingEngine.serve` simply drives a stepper to completion;
    :class:`repro.serving.cluster.ClusterEngine` instead interleaves several
    steppers so that routing decisions observe each replica's queue state at
    the moment a request arrives.

    Unlike :meth:`ServingEngine.serve`, requests may be submitted
    incrementally between steps (arrival times must not precede work already
    simulated — the cluster router feeds requests in arrival order).
    """

    def __init__(self, engine: ServingEngine,
                 scheduling: Optional[SchedulingConfig] = None,
                 max_num_seqs: Optional[int] = None,
                 migrate_out: bool = False,
                 speculative: Optional[SpeculativeConfig] = None,
                 telemetry: Union[None, bool, TelemetryConfig, Tracer] = None,
                 model_name: Optional[str] = None,
                 kv_capacity_bytes: Optional[float] = None
                 ) -> None:
        self.engine = engine
        #: Multi-model serving: the model this stepper runs.  Guards
        #: admission (the scheduler rejects requests tagged for another
        #: model) and namespaces the prefix cache's block hashes so no two
        #: models can share KV blocks.  ``None`` (the default) is the
        #: single-model world, bitwise-identical to before.
        self.model_name = model_name
        #: Multiplexed serving attaches the replica's
        #: :class:`~repro.serving.multiplex.ModelResidency` to exactly one
        #: of the replica's steppers; counter collection picks it up there.
        self.residency = None
        #: Telemetry recorder; ``None`` (the default) records nothing and
        #: keeps the loop's hot path free of tracing work beyond one pointer
        #: test per hook site.
        self.tracer: Optional[Tracer] = _resolve_tracer(telemetry)
        #: Prefill-role behaviour (disaggregated serving): the instant a
        #: request completes its prefill it is exported from the scheduler
        #: and parked in :attr:`outbox` for the cluster to migrate, so this
        #: replica never runs a decode iteration.
        self.migrate_out = migrate_out
        self.outbox: List[Request] = []
        self.scheduling = scheduling or LEGACY_SCHEDULING
        self.planner = self.scheduling.build_planner()
        #: Speculative-decoding runtime; ``None`` runs plain decode
        #: iterations.  The draft model's weights and shadow KV cache come
        #: out of this replica's KV budget, so the page pool shrinks.
        self.spec: Optional[SpeculativeDecoder] = None
        #: ``kv_capacity_bytes`` overrides the engine memory model's KV
        #: budget (multiplexed serving carves one pool per resident-capable
        #: model); the speculative draft reservation then applies on top.
        kv_capacity: Optional[float] = kv_capacity_bytes
        if speculative is not None:
            self.spec = SpeculativeDecoder(engine, speculative)
            kv_capacity = self.spec.usable_kv_capacity(
                engine.kv_capacity_bytes() if kv_capacity_bytes is None
                else kv_capacity_bytes)
            if hasattr(self.planner, "decode_token_weight"):
                # A speculating request consumes lookahead + 1 iteration
                # tokens (its verified block), so the chunked planner's
                # per-iteration token budget must charge it accordingly —
                # otherwise speculation would silently blow the cap the
                # budget exists to enforce.
                self.planner.decode_token_weight = \
                    lambda r: self.spec.lookahead_for(r) + 1
        kv_manager = engine.new_kv_manager(capacity_bytes=kv_capacity)
        self.prefix_cache: Optional[PrefixCache] = None
        if self.scheduling.kv_demotion and not self.scheduling.prefix_caching:
            raise ValueError(
                "kv_demotion applies to shared prefix-cache blocks; enable "
                "prefix_caching alongside it")
        if self.scheduling.prefix_caching:
            if not engine.system.paged_kv:
                raise ValueError(
                    f"prefix caching requires a paged KV cache; system "
                    f"{engine.system.name!r} is non-paged")
            self.prefix_cache = PrefixCache(
                kv_manager, demotion=self.scheduling.kv_demotion,
                namespace=model_name)
        policy = self.scheduling.build_policy()
        if hasattr(policy, "prefix_cache"):
            # Cache-aware policies rank by live cache state.
            policy.prefix_cache = self.prefix_cache
        self.scheduler = ContinuousBatchingScheduler(
            kv_manager=kv_manager,
            max_num_seqs=max_num_seqs or 10**9,
            policy=policy,
            preemption=self.scheduling.preemption,
            prefix_cache=self.prefix_cache,
            tracer=self.tracer,
            model_name=model_name,
            tier_admission=self.scheduling.tier_admission,
            free_tier_page_headroom=self.scheduling.free_tier_page_headroom,
            free_tier_seq_headroom=self.scheduling.free_tier_seq_headroom,
            tier_aging_s=self.scheduling.tier_aging_s,
            free_tier_drop_after_s=self.scheduling.free_tier_drop_after_s)
        self.now = 0.0
        self.iterations = 0
        self.peak_batch = 0
        self.generated = 0
        self.busy_s = 0.0
        self.kv_utilization_peak = 0.0
        self._guard = 0

    # ------------------------------------------------------------------
    def submit(self, requests) -> None:
        """Queue more requests (a list, or one request) for this run."""
        if isinstance(requests, Request):
            requests = [requests]
        self.scheduler.submit(list(requests))

    @property
    def done(self) -> bool:
        """No waiting or running requests remain."""
        return self.scheduler.all_done

    # -- queue-state views used by cluster routers ----------------------
    @property
    def outstanding_requests(self) -> int:
        """Requests accepted but not yet finished (waiting + running)."""
        return len(self.scheduler.waiting) + len(self.scheduler.running)

    @property
    def pending_prefill_tokens(self) -> int:
        """Prefill (or recompute) tokens still owed to queued/prefilling requests."""
        scheduler = self.scheduler
        return (sum(r.prefill_remaining for r in scheduler.waiting)
                + sum(r.prefill_remaining for r in scheduler.prefilling_requests()))

    def cached_prefix_tokens(self, request: Request) -> int:
        """Prompt tokens this replica's prefix cache would serve ``request``.

        Zero when prefix caching is off; used by the cluster's
        prefix-affinity router to find the warmest replica.
        """
        if self.prefix_cache is None:
            return 0
        return self.prefix_cache.lookup_tokens(request)

    def pin_for_import(self, request: Request) -> int:
        """Pin the cached prefix an incoming migration will reuse; returns
        its token count.

        Called by the cluster when it routes a prefill→decode handoff here:
        the KV-transfer payload is priced minus these tokens, so the blocks
        are referenced immediately — eviction cannot pull them out while the
        transfer is in flight, keeping the priced payload and the pages
        adopted at admission consistent.  Admission detects the existing
        references and skips re-matching.
        """
        if self.prefix_cache is None:
            return 0
        nodes, tokens = self.prefix_cache.match(request)
        self.prefix_cache.acquire(request, nodes, count_stats=False)
        return tokens

    # -- multiplexed-replica hooks --------------------------------------
    def sync_clock(self, t: float) -> None:
        """Advance the idle clock to ``t`` (never backwards).

        Multiplexed serving serializes one replica's per-model steppers on
        one GPU timeline: while a sibling model's iteration (or a weight
        swap) ran, this stepper was stalled, so its clock must not lag the
        replica clock when it next executes.  Pure idle time — busy-seconds
        are untouched.
        """
        if t > self.now:
            self.now = t

    def charge_busy(self, seconds: float) -> float:
        """Occupy the replica for ``seconds`` (e.g. a weight swap-in).

        Advances the clock and busy-time without running an iteration;
        returns the window's start time so callers can record a span.
        """
        t0 = self.now
        self.now += seconds
        self.busy_s += seconds
        return t0

    def next_ready_time(self) -> Optional[float]:
        """Earliest instant this stepper could execute work.

        ``now`` when something is running (or an arrived request waits),
        the head waiting request's availability otherwise, ``None`` when
        the stepper is fully drained.  The multiplexed replica loop uses
        this to pick which model's stepper owns the GPU next.
        """
        scheduler = self.scheduler
        if scheduler.running:
            return self.now
        if not scheduler.waiting:
            return None
        return max(self.now, scheduler.waiting[0].available_time)

    # ------------------------------------------------------------------
    def step(self, horizon: Optional[float] = None) -> bool:
        """Run one pass of the serving-loop body.

        Returns ``False`` once no further progress is possible with the
        requests submitted so far: everything finished, or the remaining
        requests can never be admitted (they stay unserved).

        ``horizon`` bounds the idle jump: an idle replica never advances its
        clock past it to a strictly-later availability.  The cluster's event
        loop passes the current event time so that a replica waiting only on
        an in-flight KV transfer does not leap over events (arrivals,
        earlier migrations) the cluster has yet to deliver.  Iterations
        themselves stay atomic and may still overshoot.
        """
        scheduler = self.scheduler
        if scheduler.all_done:
            return False
        self._guard += 1
        if self._guard > _MAX_ITERATIONS:
            raise RuntimeError("serving loop failed to terminate")
        admitted = scheduler.admit(self.now)
        if self.scheduling.preemption:
            # Claim pages for every decode before planning; may preempt
            # any running request — including one admitted just above, so
            # drop evictees from the admitted list before planning.  With
            # speculation the claim covers the whole drafted block
            # (rejected tokens are trimmed back after verification).
            scheduler.prepare_decode(
                lookahead=None if self.spec is None else self.spec.lookahead_for)
            admitted = [r for r in admitted
                        if r.state is RequestState.PREFILLING]
        plan = self.planner.plan(scheduler, admitted)
        if plan.is_empty:
            # Nothing runnable: jump to the next arrival (for migrated
            # requests, the instant their KV transfer lands), or stop if the
            # remaining requests can never be admitted.  The scheduler keeps
            # ``waiting`` sorted by availability, so the next arrival is the
            # queue head and the first strictly-future one a bisect away —
            # no full-queue scan.
            waiting = scheduler.waiting
            if not waiting:
                return False
            next_arrival = waiting[0].available_time
            if next_arrival > self.now:
                if horizon is not None and next_arrival > horizon:
                    return False  # nothing more can happen before the horizon
                self.now = next_arrival
                return True
            # Admission, preemption and planning all made no progress at
            # ``now`` and the scheduler state is unchanged, so replanning at
            # the same clock would spin forever (the old loop did, until the
            # iteration guard fired).  Jump deterministically to the next
            # strictly-future arrival — only a new admission can unwedge the
            # loop — or stop and report the stuck requests as unserved.
            # This applies with or without a running batch: an arrived
            # request that can never be admitted (larger than the whole KV
            # cache) must strand only itself, not every later arrival.
            index = bisect_right(waiting, self.now,
                                 key=lambda r: r.available_time)
            if index == len(waiting):
                return False
            jump = waiting[index].available_time
            if horizon is not None and jump > horizon:
                return False
            self.now = jump
            return True
        self.kv_utilization_peak = max(self.kv_utilization_peak,
                                       self.scheduler.kv_manager.utilization())
        outcome = None
        if self.spec is not None and plan.decode:
            outcome = self.spec.run_iteration(plan.decode, plan.chunk_pairs())
            latency = outcome.latency_s
        else:
            latency = self.engine._plan_latency(plan)
        # A prefill starting over demoted prefix-cache blocks first pays the
        # dequantization pass that restores them (see kv_dequant_latency);
        # only a request's first chunk carries the charge.  Zero — and the
        # iteration latency bitwise-untouched — whenever demotion is off.
        dequant = 0.0
        for request, _ in plan.prefill_chunks:
            if request.prefilled == 0 and request.demoted_hit_tokens:
                cost = self.engine.kv_dequant_latency(
                    request.demoted_hit_tokens)
                dequant += cost
                if self.tracer is not None:
                    self.tracer.kv_dequant(request, self.now,
                                           request.demoted_hit_tokens, cost)
        if dequant:
            latency += dequant
        t0 = self.now
        self.now += latency
        self.busy_s += latency
        self.iterations += 1
        committed = 0
        if plan.decode:
            self.peak_batch = max(self.peak_batch, len(plan.decode))
            if outcome is not None:
                committed = outcome.committed_tokens
                self.generated += committed
                scheduler.record_decode_step(self.now, commits=outcome.commits)
            else:
                committed = len(plan.decode)
                self.generated += committed
                scheduler.record_decode_step(self.now)
        if self.tracer is not None:
            for request, tokens in plan.prefill_chunks:
                self.tracer.prefill_chunk(request, tokens, t0, self.now)
        for request, tokens in plan.prefill_chunks:
            scheduler.record_prefill(request, tokens, self.now)
        if self.migrate_out:
            # Prefill role: anything that just completed its prefill (state
            # DECODING, before any decode step could be planned for it) is
            # exported for migration to a decode replica.
            if self.tracer is not None:
                # Prefill replicas run no decode step, so the scheduler's
                # stashed clock is still the pre-iteration instant; exports
                # happen *after* this iteration's latency elapsed.
                scheduler._clock = self.now
            for request in list(scheduler.running):
                if request.state is RequestState.DECODING:
                    scheduler.export_request(request)
                    self.outbox.append(request)
        if self.tracer is not None:
            self.tracer.iteration(
                t0, self.now, sum(t for _, t in plan.prefill_chunks),
                len(plan.prefill_chunks), len(plan.decode), committed, self)
        return True

    def run(self) -> None:
        """Step until no further progress is possible."""
        while self.step():
            pass

    def run_until(self, t: float) -> None:
        """Advance the clock to (at least) ``t`` or until progress stops.

        The clock may overshoot ``t`` because iterations are atomic, but an
        idle replica never *jumps* past it: a replica whose only pending
        work becomes available after ``t`` (e.g. a migrated request with an
        in-flight KV transfer) keeps its clock and waits for a later call.
        """
        while not self.done and self.now < t:
            if not self.step(horizon=t):
                break

    # ------------------------------------------------------------------
    def result(self, workload: Workload) -> ServingResult:
        """Assemble the :class:`ServingResult` of the requests in ``workload``.

        Per-request statistics (prompt tokens, finished/unserved counts,
        latency metrics) cover exactly ``workload``'s requests; run-level
        counters (clock, iterations, generated tokens, preemptions) always
        describe the whole run, which for a stepper fed several workloads is
        more than this slice.
        """
        # Count only prompts that actually completed a prefill: a loop that
        # stops with requests still waiting must not claim their tokens.
        prefilled_prompt_tokens = sum(
            r.prompt_len for r in workload.requests
            if r.prefill_done_time is not None)
        finished = [r for r in workload.requests if r.finish_time is not None]
        scheduler = self.scheduler
        if self.tracer is not None:
            self.tracer.finalize(self)
        return ServingResult(
            total_time_s=self.now,
            generated_tokens=self.generated,
            prompt_tokens=prefilled_prompt_tokens,
            peak_batch=self.peak_batch,
            num_iterations=self.iterations,
            num_finished=len(finished),
            num_unserved=len(workload.requests) - len(finished),
            num_dropped=len(scheduler.dropped),
            num_preemptions=scheduler.num_preemptions,
            recomputed_prefill_tokens=scheduler.recomputed_prefill_tokens,
            busy_time_s=self.busy_s,
            metrics=ServingMetrics.from_requests(finished),
            kv_utilization_peak=self.kv_utilization_peak,
            prefix_stats=(None if self.prefix_cache is None
                          else self.prefix_cache.stats),
            spec_stats=None if self.spec is None else self.spec.stats,
            counters=collect_counters(self),
            telemetry=self.tracer,
        )
