"""Figure 3 — A100 roofline for LLM serving.

Reports the attainable throughput of W4A16, W8A8, W4A8 and W4A4 GEMMs as a
function of the decode batch size (= computation intensity), the attention
roofline for FP16/INT8/INT4 KV caches, and the W4A16↔W8A8 crossover point
(~78 on A100).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport
from repro.gpu import A100, GPUSpec, attention_roofline_tops, gemm_roofline_tops, \
    roofline_crossover_batch

__all__ = ["run"]

_GEMM_CONFIGS = [
    ("FP16xFP16", 16, 16),
    ("INT4xFP16 (W4A16)", 4, 16),
    ("INT8xINT8 (W8A8)", 8, 8),
    ("INT4xINT8 (W4A8)", 4, 8),
    ("INT4xINT4 (W4A4)", 4, 4),
]


def run(spec: GPUSpec = A100,
        batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 48, 64, 78, 96, 128, 160, 192),
        ) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig3",
        title=f"{spec.name} roofline: attainable TOPS vs computation intensity",
        headers=["Batch (intensity)", *[name for name, _, _ in _GEMM_CONFIGS]],
    )
    for m in batches:
        report.add_row(m, *[gemm_roofline_tops(spec, m, wb, ab)
                            for _, wb, ab in _GEMM_CONFIGS])
    crossover = roofline_crossover_batch(spec, 4, 16, 8, 8)
    attn = {bits: attention_roofline_tops(spec, bits) for bits in (16, 8, 4)}
    report.notes = (
        f"W4A16->W8A8 crossover at batch ~{crossover:.0f} (paper: ~78). "
        f"Attention roofline TOPS: FP16 KV {attn[16]:.0f}, INT8 KV {attn[8]:.0f}, "
        f"INT4 KV {attn[4]:.0f} (each halving of KV precision doubles the roof)."
    )
    report.extra["crossover"] = crossover
    report.extra["attention_roofline"] = attn
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.0f}"))
