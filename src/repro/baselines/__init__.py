"""Baseline post-training quantization methods the paper compares against.

Each baseline exposes a ``quantize_*`` function with the same shape as the QoQ
pipeline: it takes a :class:`~repro.model.transformer.TransformerModel` plus
calibration batches and returns a quantized model together with the
:class:`~repro.model.transformer.ForwardConfig` describing KV-cache handling.

* :mod:`repro.baselines.rtn` — round-to-nearest at arbitrary W/A/KV precision;
* :mod:`repro.baselines.smoothquant` — SmoothQuant W8A8 (per-channel weights,
  per-token activations, static KV8);
* :mod:`repro.baselines.awq` — AWQ-style activation-aware weight scaling
  (W4A16 g128 in the paper's Table 2, also usable as a W4A8 weight quantizer);
* :mod:`repro.baselines.gptq` — GPTQ error-compensated rounding with the
  activation-order ("reorder") trick, i.e. GPTQ-R;
* :mod:`repro.baselines.quarot` — QuaRot-style W4A4 with block-input rotation;
* :mod:`repro.baselines.atom` — Atom-style W4A4 g128 with mixed-precision
  salient channels and KV4.
"""

from repro.baselines.rtn import quantize_rtn
from repro.baselines.smoothquant import quantize_smoothquant
from repro.baselines.awq import quantize_awq, search_awq_scales
from repro.baselines.gptq import gptq_quantize_weight, quantize_gptq
from repro.baselines.quarot import quantize_quarot
from repro.baselines.atom import quantize_atom

__all__ = [
    "quantize_rtn",
    "quantize_smoothquant",
    "quantize_awq",
    "search_awq_scales",
    "gptq_quantize_weight",
    "quantize_gptq",
    "quantize_quarot",
    "quantize_atom",
]
