"""Property-based invariant suite over randomized serving scenarios.

The unit suites pin exact behaviour on hand-built cases; this suite attacks
the simulator from the other side.  A seeded generator (hand-rolled — the
container has no ``hypothesis``) samples serving scenarios across the whole
feature matrix — workload shape, scheduling preset (chunked prefill,
preemption, prefix caching, SLO tiers, shedding), speculative decoding,
single engine vs. static cluster vs. autoscaled fleet vs. disaggregated
prefill/decode vs. multiplexed multi-model fleet — and every scenario is
checked against the invariants that must hold for *any* knob combination:

* **Termination** — every request ends terminal (finished or dropped),
  the scheduler drains (no waiting/running leftovers), and the per-state
  accounting adds up to the workload size.
* **KV page conservation** — the paged KV manager's ledger balances:
  nothing double-freed, no pages leaked after the drain (every allocation
  matched by a free when prefix caching is off; only ref-counted shared
  pages may remain when it is on).
* **Monotone clock** — per-request timestamps are ordered
  (arrival <= admission/first token <= finish; drops stamped after
  arrival) and no request finishes after the run's makespan.
* **Counter sanity** — every counter in the unified registry snapshot is
  non-negative, for every replica of every topology.
* **Multiplex residency** — on multiplexed fleets, HBM conservation holds
  (weight budget + per-model KV pools fit the GPU, resident weights never
  exceed the budget or the residency limit) and no (replica, model) slice
  ever batched another model's requests — the observable face of
  model-namespaced prefix caching and admission.

A failing seed is a one-line repro: ``pytest tests/test_invariants.py -k
<seed>`` rebuilds the identical scenario.
"""

import numpy as np
import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    AutoscalerConfig,
    ClusterEngine,
    MultiplexConfig,
    RequestState,
    SCHEDULING_PRESETS,
    ServingEngine,
    SpeculativeConfig,
    assign_tenants,
    get_system,
    make_chat_workload,
    make_diurnal_workload,
    make_flash_crowd_workload,
    make_lognormal_workload,
    make_uniform_workload,
)

MODEL = get_config("llama-2-7b")
SYSTEM = get_system("qserve-w4a8kv4-chn")

#: Scenario count (acceptance floor: 25).  Seeds are the test IDs, so a
#: failure reproduces with ``-k scenario25``.  Seeds 0-27 cycle the four
#: historical topologies; 28+ run multiplexed multi-model fleets.
NUM_SCENARIOS = 36

#: Scheduling presets the generator samples; ``None`` is the legacy
#: stall-prefill path.  Disaggregation requires chunk-capable planners.
_PRESETS = [None, "chunked", "chunked-preempt", "prefix-aware",
            "tiered", "tiered-shed"]
_DISAGG_PRESETS = ["chunked", "chunked-preempt"]

_EPS = 1e-9


# ----------------------------------------------------------------------
# Scenario generator
# ----------------------------------------------------------------------
def _sample_workload(rng: np.random.Generator):
    """A modest workload whose requests are all individually admittable."""
    kind = rng.choice(["uniform", "lognormal", "diurnal", "flash", "chat"])
    n = int(rng.integers(16, 40))
    prompt = int(rng.integers(32, 384))
    output = int(rng.integers(4, 48))
    seed = int(rng.integers(0, 2**31))
    if kind == "uniform":
        rate = None if rng.random() < 0.3 else float(rng.uniform(2.0, 20.0))
        return make_uniform_workload(n, prompt_len=prompt, output_len=output,
                                     arrival_rate=rate, seed=seed)
    if kind == "lognormal":
        return make_lognormal_workload(
            n, max_prompt_len=512, max_output_len=64,
            arrival_rate=float(rng.uniform(2.0, 20.0)), seed=seed)
    if kind == "diurnal":
        return make_diurnal_workload(
            n, base_rate=float(rng.uniform(4.0, 16.0)),
            amplitude=float(rng.uniform(0.2, 0.9)),
            period_s=float(rng.uniform(4.0, 20.0)),
            prompt_len=prompt, output_len=output, seed=seed)
    if kind == "flash":
        return make_flash_crowd_workload(
            n, base_rate=float(rng.uniform(2.0, 6.0)),
            spikes=((float(rng.uniform(1.0, 4.0)),
                     float(rng.uniform(15.0, 40.0)),
                     float(rng.uniform(1.0, 4.0))),),
            prompt_len=prompt, output_len=output, seed=seed)
    return make_chat_workload(
        num_sessions=int(rng.integers(3, 7)),
        turns_per_session=int(rng.integers(2, 5)),
        system_prompt_len=256, user_len=48, assistant_len=output,
        think_time_s=float(rng.uniform(0.5, 4.0)),
        session_rate=2.0, seed=seed)


def _sample_scenario(seed: int):
    """Sample one full scenario description from ``seed``.

    The topology cycles deterministically so each of the four serving
    paths gets NUM_SCENARIOS/4 scenarios regardless of RNG draws; every
    other knob is sampled from the seeded generator.
    """
    rng = np.random.default_rng(0xC0FFEE + seed)
    if seed < 28:
        topology = ("engine", "cluster", "autoscale", "disagg")[seed % 4]
    else:
        topology = "multiplex"
    workload = _sample_workload(rng)
    preset_pool = _DISAGG_PRESETS if topology == "disagg" else _PRESETS
    preset = preset_pool[int(rng.integers(0, len(preset_pool)))]
    if preset in ("tiered", "tiered-shed") and not any(
            r.tenant for r in workload.requests):
        assign_tenants(workload, tenants=4, free_fraction=0.5,
                       seed=int(rng.integers(0, 2**31)))
    multiplex = None
    if topology == "multiplex":
        # Skewed two-model mix over the sampled workload; residency limit
        # 1 forces swaps, 2 fits both models warm.
        names = (MODEL.name, "llama-2-13b")
        picks = rng.choice(2, size=len(workload.requests), p=[0.7, 0.3])
        for request, pick in zip(workload.requests, picks):
            request.model = names[int(pick)]
        multiplex = MultiplexConfig(
            models=(MODEL, get_config("llama-2-13b")),
            max_resident_models=int(rng.integers(1, 3)))
    speculative = None
    if topology in ("engine", "cluster") and rng.random() < 0.3:
        speculative = SpeculativeConfig(
            draft_model=get_config("llama-160m"),
            lookahead=int(rng.integers(2, 5)),
            adaptive=bool(rng.random() < 0.5),
            seed=int(rng.integers(0, 2**31)))
    max_num_seqs = int(rng.integers(2, 17))
    scheduling = SCHEDULING_PRESETS[preset] if preset else None
    return {
        "topology": topology,
        "workload": workload,
        "preset": preset,
        "scheduling": scheduling,
        "prefix_on": preset == "prefix-aware",
        "speculative": speculative,
        "max_num_seqs": max_num_seqs,
        "multiplex": multiplex,
        "rng": rng,
    }


def _run_scenario(seed: int):
    """Build and run scenario ``seed``; return (scenario, result, counters).

    ``counters`` is one ``as_dict()`` snapshot per replica (a single-entry
    list for the plain engine), so the invariants below can quantify over
    replicas uniformly.
    """
    sc = _sample_scenario(seed)
    rng = sc["rng"]
    if sc["topology"] == "engine":
        engine = ServingEngine(MODEL, A100, SYSTEM, max_seq_len=2048)
        result = engine.serve(sc["workload"],
                              max_num_seqs=sc["max_num_seqs"],
                              scheduling=sc["scheduling"],
                              speculative=sc["speculative"])
        return sc, result, [result.counters.as_dict()]
    if sc["topology"] == "multiplex":
        num_replicas = int(rng.integers(2, 4))
        cluster = ClusterEngine(MODEL, A100, SYSTEM,
                                num_replicas=num_replicas, max_seq_len=2048)
        router = ("model-aware",
                  "least-outstanding")[int(rng.integers(0, 2))]
        result = cluster.serve(sc["workload"], router=router,
                               max_num_seqs=sc["max_num_seqs"],
                               scheduling=sc["scheduling"],
                               multiplex=sc["multiplex"])
        return sc, result, [r.counters.as_dict()
                            for r in result.replica_results]
    kwargs = {}
    if sc["topology"] == "disagg":
        roles_pool = (["prefill", "decode"],
                      ["prefill", "decode", "decode"],
                      ["prefill", "prefill", "decode"],
                      ["mixed", "prefill", "decode"])
        kwargs["roles"] = roles_pool[int(rng.integers(0, len(roles_pool)))]
        router = "disaggregated"
        num_replicas = len(kwargs["roles"])
    else:
        router = ("round-robin", "least-outstanding",
                  "shortest-queue")[int(rng.integers(0, 3))]
        num_replicas = int(rng.integers(2, 4))
    cluster = ClusterEngine(MODEL, A100, SYSTEM, num_replicas=num_replicas,
                            max_seq_len=2048, **kwargs)
    autoscaler = None
    if sc["topology"] == "autoscale":
        autoscaler = AutoscalerConfig(
            min_replicas=1, max_replicas=num_replicas,
            interval_s=float(rng.uniform(1.0, 3.0)),
            scale_up_queue_depth=float(rng.uniform(1.5, 5.0)),
            up_cooldown_s=2.0, down_cooldown_s=4.0,
            scale_down_outstanding=float(rng.uniform(2.0, 8.0)))
    result = cluster.serve(sc["workload"], router=router,
                           max_num_seqs=sc["max_num_seqs"],
                           scheduling=sc["scheduling"],
                           speculative=sc["speculative"],
                           autoscaler=autoscaler)
    return sc, result, [r.counters.as_dict() for r in result.replica_results]


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
def _check_terminal(sc, result) -> None:
    requests = sc["workload"].requests
    finished = [r for r in requests if r.state is RequestState.FINISHED]
    dropped = [r for r in requests if r.state is RequestState.DROPPED]
    nonterminal = [r for r in requests
                   if r.state not in (RequestState.FINISHED,
                                      RequestState.DROPPED)]
    assert not nonterminal, \
        f"non-terminal requests: {[(r.request_id, r.state) for r in nonterminal]}"
    assert len(finished) + len(dropped) == len(requests)
    assert result.num_finished == len(finished)
    for r in finished:
        assert r.generated == r.output_len


def _check_clock(sc, result) -> None:
    makespan = result.total_time_s
    for r in sc["workload"].requests:
        if r.state is RequestState.DROPPED:
            assert r.drop_time is not None
            assert r.drop_time >= r.arrival_time - _EPS
            continue
        assert r.admitted_time is not None
        assert r.admitted_time >= r.arrival_time - _EPS
        assert r.first_token_time is not None
        assert r.first_token_time >= r.arrival_time - _EPS
        assert r.finish_time is not None
        assert r.finish_time >= r.first_token_time - _EPS
        assert r.finish_time <= makespan + _EPS


def _check_kv_conservation(sc, counters) -> None:
    for i, c in enumerate(counters):
        assert c["kv_double_free_total"] == 0, f"replica {i} double-freed"
        assert 0 <= c["kv_used_pages"] <= c["kv_total_pages"]
        assert c["kv_pages_freed_total"] <= c["kv_pages_allocated_total"]
        if sc["prefix_on"]:
            # Prefix caching may retain ref-counted shared pages after the
            # drain (converted private->shared without a matching free);
            # everything still resident must be shared.
            assert c["kv_used_pages"] <= c["kv_shared_pages"]
        else:
            assert c["kv_used_pages"] == 0, f"replica {i} leaked pages"
            assert c["kv_pages_allocated_total"] == c["kv_pages_freed_total"]


def _check_drained(counters) -> None:
    for i, c in enumerate(counters):
        assert c["scheduler_waiting_requests"] == 0, f"replica {i} not drained"
        assert c["scheduler_running_requests"] == 0, f"replica {i} not drained"


def _check_counters_nonnegative(counters) -> None:
    for i, c in enumerate(counters):
        negative = {k: v for k, v in c.items() if v < 0}
        assert not negative, f"replica {i} negative counters: {negative}"


def _check_autoscale(result) -> None:
    report = getattr(result, "autoscale", None)
    if report is None:
        return
    for slot in report.windows:
        for start, end in slot:
            assert 0.0 <= start <= end + _EPS
        # A slot's provisioned windows never overlap.
        for (_, e0), (s1, _) in zip(slot, slot[1:]):
            assert s1 >= e0 - _EPS
    assert report.peak_replicas <= len(report.windows)
    assert report.gpu_seconds >= 0.0
    assert report.num_scale_downs <= report.num_scale_ups + len(report.windows)
    for event in report.events:
        assert event.action in ("up", "down")
        assert event.time_s >= 0.0


def _check_multiplex(sc, result) -> None:
    report = getattr(result, "multiplex", None)
    if report is None:
        return
    config = sc["multiplex"]
    capacity = float(A100.memory_bytes)
    for snap in report.replicas:
        # HBM conservation: the weight budget (peak weights + workspace)
        # plus every model's carved KV pool must fit the GPU.
        assert snap.weight_budget_bytes \
            + snap.kv_pool_bytes * len(config.models) <= capacity + _EPS
        assert snap.peak_resident_bytes <= snap.weight_budget_bytes + _EPS
        assert 1 <= len(snap.resident) <= config.resident_limit
        assert snap.swap_outs <= snap.swap_ins
        assert snap.swap_in_s >= 0.0
    # Per-model isolation: every (replica, model) slice batched only its
    # own model's requests — cross-model adoption would mix the tags.
    for slice_ in result.replica_results:
        models = {m.model for m in slice_.metrics.requests}
        assert len(models) <= 1, f"mixed models in one slice: {models}"
    assert sum(report.requests_by_model.values()) == len(
        sc["workload"].requests)


# ----------------------------------------------------------------------
# The suite: every scenario, every invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(NUM_SCENARIOS),
                         ids=[f"scenario{i}" for i in range(NUM_SCENARIOS)])
def test_invariants(seed):
    sc, result, counters = _run_scenario(seed)
    _check_terminal(sc, result)
    _check_clock(sc, result)
    _check_drained(counters)
    _check_kv_conservation(sc, counters)
    _check_counters_nonnegative(counters)
    _check_autoscale(result)
    _check_multiplex(sc, result)


def test_generator_covers_feature_matrix():
    """The sampled scenarios actually exercise the knobs they claim to."""
    scenarios = [_sample_scenario(seed) for seed in range(NUM_SCENARIOS)]
    topologies = {sc["topology"] for sc in scenarios}
    assert topologies == {"engine", "cluster", "autoscale", "disagg",
                          "multiplex"}
    resident_limits = {sc["multiplex"].resident_limit for sc in scenarios
                       if sc["multiplex"] is not None}
    assert resident_limits == {1, 2}
    presets = {sc["preset"] for sc in scenarios}
    assert len(presets) >= 4
    assert any(sc["speculative"] is not None for sc in scenarios)
    assert any(sc["prefix_on"] for sc in scenarios)
    assert any(any(r.tier == "free" for r in sc["workload"].requests)
               for sc in scenarios)


def test_generator_is_deterministic():
    """Same seed, same scenario — failures must be reproducible."""
    for seed in (0, 7, 13):
        a, b = _sample_scenario(seed), _sample_scenario(seed)
        assert a["topology"] == b["topology"]
        assert a["max_num_seqs"] == b["max_num_seqs"]
        wa, wb = a["workload"], b["workload"]
        assert [(r.arrival_time, r.prompt_len, r.output_len, r.tenant, r.tier)
                for r in wa.requests] == \
               [(r.arrival_time, r.prompt_len, r.output_len, r.tenant, r.tier)
                for r in wb.requests]
