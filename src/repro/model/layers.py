"""Basic neural-network layers used by the NumPy transformer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["rms_norm", "silu", "softmax", "swiglu", "Linear"]


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalisation (the Llama ``RMSNorm``)."""
    x = np.asarray(x, dtype=np.float64)
    variance = np.mean(x ** 2, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * np.asarray(weight, dtype=np.float64)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, computed stably for large negative inputs."""
    x = np.asarray(x, dtype=np.float64)
    return x * (0.5 * (1.0 + np.tanh(0.5 * x)))  # sigmoid(x) = 0.5*(1+tanh(x/2))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """SwiGLU gating: ``silu(gate) * up`` (the Llama FFN nonlinearity)."""
    return silu(gate) * np.asarray(up, dtype=np.float64)


@dataclass
class Linear:
    """A bias-free linear layer ``y = x @ W^T``.

    ``weight`` has shape ``[out_features, in_features]``.  The class exists so
    that the quantization pipelines can swap a dense layer for one of the
    integer-arithmetic implementations in :mod:`repro.model.quantized` while
    the transformer code stays unchanged (they share the ``__call__`` /
    ``weight`` interface).
    """

    weight: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError(f"Linear weight must be 2-D, got {self.weight.shape}")

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name or 'Linear'}: input features {x.shape[-1]} != "
                f"weight in_features {self.in_features}"
            )
        return x @ self.weight.T

    def replace_weight(self, weight: np.ndarray) -> "Linear":
        """Return a new layer with the same name but different weights."""
        return Linear(weight=np.asarray(weight, dtype=np.float64), name=self.name)
