"""SmoothAttention (Section 4.2).

Post-RoPE Key tensors have fixed outlier channels per head (~10x the typical
magnitude); 4-bit KV quantization cannot represent them without destroying the
rest of the channels.  SmoothAttention scales Key channel ``i`` down by
``λ_i = max(|K_i|)^α`` and scales the matching Query channel up by the same
factor, leaving the attention scores ``Q K^T`` unchanged (Equation 7/8).

Because RoPE mixes channel ``i`` with channel ``i + D/2``, the scale must be
shared between the two paired channels (Equation 9) so that the scaling
commutes with the rotary embedding and can be folded into the Q/K projection
weights offline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["compute_smooth_attention_scales", "apply_smooth_attention"]

_EPS = 1e-5


def compute_smooth_attention_scales(
    keys: np.ndarray,
    alpha: float = 0.5,
    rope_paired: bool = True,
) -> np.ndarray:
    """Per-channel SmoothAttention scales from sampled post-RoPE Keys.

    Parameters
    ----------
    keys:
        Sampled Key activations of shape ``[tokens, kv_heads, head_dim]``
        (post-RoPE, pre-quantization).
    alpha:
        Migration strength; the paper uses 0.5.
    rope_paired:
        Enforce ``λ_i == λ_{i + D/2}`` within each head (Equation 9) so the
        scaling commutes with RoPE.  Disabling this is only useful for the
        ablation tests.

    Returns
    -------
    ``[kv_heads, head_dim]`` array of strictly positive scales ``λ``.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 3:
        raise ValueError(f"expected [tokens, kv_heads, head_dim], got {keys.shape}")
    head_dim = keys.shape[2]
    absmax = np.max(np.abs(keys), axis=0)          # [kv_heads, head_dim]
    if rope_paired:
        if head_dim % 2 != 0:
            raise ValueError("head_dim must be even when rope_paired=True")
        half = head_dim // 2
        paired = np.maximum(absmax[:, :half], absmax[:, half:])
        absmax = np.concatenate([paired, paired], axis=1)
    scales = np.maximum(absmax, _EPS) ** alpha
    return np.maximum(scales, _EPS)


def apply_smooth_attention(
    q_weight: np.ndarray,
    k_weight: np.ndarray,
    scales: np.ndarray,
    gqa_ratio: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold SmoothAttention scales into the Q/K projection weights.

    ``q_weight`` is ``[num_heads * head_dim, hidden]`` and ``k_weight`` is
    ``[kv_heads * head_dim, hidden]``; ``scales`` is ``[kv_heads, head_dim]``.
    Query rows are multiplied by ``λ`` (each query head uses the scales of its
    KV head under GQA) and Key rows are divided by ``λ``, so ``Q K^T`` is
    unchanged while the Keys that get cached — and quantized — are smooth.
    """
    scales = np.asarray(scales, dtype=np.float64)
    kv_heads, head_dim = scales.shape
    flat_k = scales.reshape(-1)
    if k_weight.shape[0] != kv_heads * head_dim:
        raise ValueError("k_weight rows do not match scales")
    if q_weight.shape[0] != kv_heads * head_dim * gqa_ratio:
        raise ValueError("q_weight rows do not match scales * gqa_ratio")
    # Each query head h uses the scales of KV head h // gqa_ratio.
    flat_q = np.repeat(scales, gqa_ratio, axis=0).reshape(-1)
    new_q = q_weight * flat_q[:, None]
    new_k = k_weight / flat_k[:, None]
    return new_q, new_k
