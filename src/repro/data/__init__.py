"""Synthetic data and evaluation harnesses.

The paper evaluates on WikiText-2 perplexity, five zero-shot common-sense
tasks (lm-eval) and LongBench.  None of those datasets can be shipped offline,
so this package provides synthetic stand-ins with the same *metrics*:

* :mod:`repro.data.corpus` — a Zipfian bigram language over the model's
  vocabulary whose sequences are learnable by the synthetic models, so that
  perplexity differences between quantization settings are meaningful;
* :mod:`repro.data.calibration` — calibration-set sampling;
* :mod:`repro.data.perplexity` — token-level perplexity evaluation;
* :mod:`repro.data.tasks` — synthetic multiple-choice (zero-shot) and
  long-context retrieval (LongBench-like) suites scored by model likelihood.
"""

from repro.data.corpus import CorpusConfig, SyntheticCorpus
from repro.data.calibration import sample_calibration_batches
from repro.data.perplexity import evaluate_perplexity, perplexity_from_logits
from repro.data.tasks import (
    MultipleChoiceExample,
    build_zero_shot_suite,
    build_long_context_suite,
    evaluate_task_accuracy,
)

__all__ = [
    "CorpusConfig",
    "SyntheticCorpus",
    "sample_calibration_batches",
    "evaluate_perplexity",
    "perplexity_from_logits",
    "MultipleChoiceExample",
    "build_zero_shot_suite",
    "build_long_context_suite",
    "evaluate_task_accuracy",
]
