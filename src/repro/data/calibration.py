"""Calibration-set sampling.

QoQ (like SmoothQuant / AWQ / GPTQ) is a post-training method driven by a
small calibration set.  The paper calibrates on Pile samples; here calibration
batches are drawn from the synthetic corpus' training split.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.corpus import SyntheticCorpus

__all__ = ["sample_calibration_batches"]


def sample_calibration_batches(
    corpus: SyntheticCorpus,
    num_batches: int = 8,
    seq_len: int = 64,
    seed: int = 0,
) -> List[np.ndarray]:
    """Sample ``num_batches`` random sequences of ``seq_len`` tokens."""
    rng = np.random.default_rng(seed)
    stream = corpus.train_tokens
    if stream.size < seq_len:
        raise ValueError("calibration sequence length exceeds corpus size")
    starts = rng.integers(0, stream.size - seq_len, size=num_batches)
    return [stream[s:s + seq_len].copy() for s in starts]
