"""Benchmark regenerating Figure 3 (A100 roofline, W4A16/W8A8 crossover)."""

from repro.experiments import fig3_roofline


def test_fig3_roofline(benchmark):
    report = benchmark(fig3_roofline.run)
    print()
    print(report.to_text("{:.0f}"))
    assert abs(report.extra["crossover"] - 78) <= 3
