"""Table 2 — WikiText-2 perplexity across precisions and quantization methods.

Reproduces the rows of Table 2 on the synthetic substrate: FP16,
SmoothQuant W8A8, GPTQ-R / AWQ W4A16 g128, QuaRot / Atom W4A4, and
RTN / AWQ / QoQ at W4A8KV4 (per-channel and per-group).  Absolute perplexities
are not comparable to the paper's (different corpus and models); the
reproduced quantity is the *ordering and relative degradation* of the methods
against the shared FP16 reference.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import (
    quantize_atom,
    quantize_awq,
    quantize_gptq,
    quantize_quarot,
    quantize_rtn,
    quantize_smoothquant,
)
from repro.experiments.accuracy_common import AccuracySetup, build_setup
from repro.experiments.runner import ExperimentReport
from repro.qoq import QoQConfig, quantize_model_qoq

__all__ = ["run"]


def run(scale: str = "tiny", seed: int = 0,
        setup: Optional[AccuracySetup] = None) -> ExperimentReport:
    """Evaluate every Table 2 row and return the report."""
    setup = setup or build_setup(scale, seed=seed)
    g = setup.group_size
    model, calib = setup.model, setup.calibration
    report = ExperimentReport(
        experiment_id="table2",
        title="WikiText-2-style perplexity by precision and method (lower is better)",
        headers=["Precision", "Method", "Perplexity"],
        notes=(f"scale={setup.scale}, model={setup.spec.model_name}, "
               f"group size g={g}; FP16 row is the shared reference."),
    )

    fp16 = setup.perplexity(model)
    report.add_row("FP16", "-", fp16)

    mm, fwd = quantize_smoothquant(model, calib)
    report.add_row("W8A8", "SmoothQuant", setup.perplexity(mm, fwd))

    mm, fwd = quantize_gptq(model, calib, group_size=g)
    report.add_row(f"W4A16 g{g}", "GPTQ-R", setup.perplexity(mm, fwd))
    mm, fwd = quantize_awq(model, calib, group_size=g)
    report.add_row(f"W4A16 g{g}", "AWQ", setup.perplexity(mm, fwd))

    mm, fwd = quantize_quarot(model, calib, group_size=None)
    report.add_row("W4A4", "QuaRot", setup.perplexity(mm, fwd))
    mm, fwd = quantize_quarot(model, calib, group_size=g)
    report.add_row(f"W4A4 g{g}", "QuaRot", setup.perplexity(mm, fwd))
    mm, fwd = quantize_atom(model, calib, group_size=g)
    report.add_row(f"W4A4 g{g}", "Atom", setup.perplexity(mm, fwd))

    # W4A8KV4 family (per-channel weights).
    mm, fwd = quantize_rtn(model, weight_bits=4, act_bits=8, kv_bits=4)
    report.add_row("W4A8KV4", "RTN", setup.perplexity(mm, fwd))
    mm, fwd = quantize_awq(model, calib, act_bits=8, kv_bits=4, group_size=None)
    report.add_row("W4A8KV4", "AWQ", setup.perplexity(mm, fwd))
    res = quantize_model_qoq(model, calib, QoQConfig(group_size=None))
    report.add_row("W4A8KV4", "QoQ", setup.perplexity(res.model, res.forward_config))

    # W4A8KV4 g128-equivalent (per-group weights).
    mm, fwd = quantize_rtn(model, weight_bits=4, act_bits=8, kv_bits=4, group_size=g)
    report.add_row(f"W4A8KV4 g{g}", "RTN", setup.perplexity(mm, fwd))
    mm, fwd = quantize_awq(model, calib, act_bits=8, kv_bits=4, group_size=g)
    report.add_row(f"W4A8KV4 g{g}", "AWQ", setup.perplexity(mm, fwd))
    res = quantize_model_qoq(model, calib, QoQConfig(group_size=g))
    report.add_row(f"W4A8KV4 g{g}", "QoQ", setup.perplexity(res.model, res.forward_config))

    return report


if __name__ == "__main__":  # pragma: no cover
    import sys
    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "tiny").to_text("{:.3f}"))
