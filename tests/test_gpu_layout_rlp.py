"""Tests for the layout (Figure 12) and register-level parallelism (Figures 13/14)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    compute_aware_reorder,
    compute_thread_map,
    dequantize_subtract_after_multiply,
    dequantize_subtract_before_multiply,
    inverse_reorder,
    ldmatrix_thread_map,
    pointer_arithmetic_ops,
    simulate_rlp_dequant,
    simulate_vadd4,
)
from repro.gpu.layout import NUM_THREADS, TILE_COLS, TILE_ROWS
from repro.quant.progressive import progressive_quantize, progressive_dequantize_level1


def test_ldmatrix_matches_compute_for_int8_but_not_int4():
    compute = compute_thread_map()
    ld8 = ldmatrix_thread_map(8)
    ld4 = ldmatrix_thread_map(4)
    mismatches_8 = sum(set(compute[t]) != set(ld8[t]) for t in range(NUM_THREADS))
    mismatches_4 = sum(set(compute[t]) != set(ld4[t]) for t in range(NUM_THREADS))
    assert mismatches_8 == 0          # Figure 12a: ldmatrix works for W8A8
    assert mismatches_4 > NUM_THREADS // 2   # Figure 12b: fails for W4A8


def test_compute_aware_reorder_gives_each_thread_its_elements():
    tile = np.arange(TILE_ROWS * TILE_COLS).reshape(TILE_ROWS, TILE_COLS)
    reordered = compute_aware_reorder(tile)
    mapping = compute_thread_map()
    for t in range(NUM_THREADS):
        expected = np.array([tile[r, c] for (r, c) in mapping[t]])
        np.testing.assert_array_equal(reordered[t], expected)
    np.testing.assert_array_equal(inverse_reorder(reordered), tile)


def test_pointer_arithmetic_counts():
    naive = pointer_arithmetic_ops("naive")
    reordered = pointer_arithmetic_ops("reordered")
    assert reordered == pointer_arithmetic_ops("ldmatrix")
    assert naive == 4 * reordered  # 4-element segments vs 16-element loads
    with pytest.raises(ValueError):
        pointer_arithmetic_ops("bogus")


def test_vadd4_wraps_like_hardware():
    a = np.array([[120, -120, 5, 0]])
    b = np.array([[10, -10, -5, 0]])
    out = simulate_vadd4(a, b)
    assert list(out[0]) == [-126, 126, 0, 0]  # wrap-around on the first two lanes
    with pytest.raises(ValueError):
        simulate_vadd4(np.zeros((1, 3)), np.zeros((1, 3)))


def test_figure14_overflow_before_but_not_after_multiplication():
    # Figure 14's example: codes {7, 0, 3, 15}, zero = 8, scale = 2.
    codes = np.array([[7, 0, 3, 15]])
    before = dequantize_subtract_before_multiply(codes, zero=8, scale=2)
    after = dequantize_subtract_after_multiply(codes, zero=8, scale=2)
    reference = (codes - 8) * 2
    assert not after.overflowed
    np.testing.assert_array_equal(after.values, reference)
    assert before.overflowed or np.array_equal(before.values, reference)
    # The overflow case of Figure 14a: a larger spread makes it explicit.
    wide = np.array([[15, 0, 3, 15]])
    res = dequantize_subtract_before_multiply(wide, zero=0, scale=10)
    assert res.overflowed
    assert not np.array_equal(res.values, (wide - 0) * 10)


def test_rlp_instruction_count():
    q = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
    _, _, instructions = simulate_rlp_dequant(q, zeros=[1, 2], scales=[2, 3])
    assert instructions == 4  # two ALU instructions per packed group of four


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_progressive_codes_never_overflow_rlp(seed):
    """Progressive group quantization's protective range guarantees the
    subtraction-after-multiplication order is exact for every group."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(0, rng.uniform(0.05, 2.0), size=(4, 32))
    pqw = progressive_quantize(weight, group_size=8)
    reference = progressive_dequantize_level1(pqw).astype(np.int64)
    for row in range(4):
        for g in range(4):
            codes = pqw.qweight[row, g * 8:(g + 1) * 8].reshape(2, 4).astype(np.int64)
            zero = int(pqw.zeros[row, g])
            scale = int(pqw.scales_l2[row, g])
            values, overflow, _ = simulate_rlp_dequant(
                codes, zeros=[zero, zero], scales=[scale, scale])
            assert not overflow
            np.testing.assert_array_equal(
                values.reshape(-1), reference[row, g * 8:(g + 1) * 8])
