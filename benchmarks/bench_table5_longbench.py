"""Benchmark regenerating Table 5 (long-context accuracy, BF16 vs QoQ)."""

from repro.experiments import table5_longbench


def test_table5_longbench(benchmark, accuracy_setup):
    report = benchmark.pedantic(table5_longbench.run,
                                kwargs={"setup": accuracy_setup, "num_examples": 4},
                                rounds=1, iterations=1)
    print()
    print(report.to_text("{:.3f}"))
    bf16_avg = report.rows[0][-1]
    qoq_avg = report.rows[1][-1]
    # QoQ stays close to the full-precision long-context accuracy.
    assert qoq_avg >= bf16_avg - 0.2
