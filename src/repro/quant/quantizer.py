"""Generic integer quantization at multiple granularities.

Implements Equation (2)/(3) of the paper for symmetric and asymmetric
quantization with the four granularities discussed in Section 2.2:

* **per-tensor** — one ``(scale, zero_point)`` for the whole tensor;
* **per-channel** — one per output channel (row of a ``[out, in]`` weight);
* **per-token** — one per row of an activation matrix (identical arithmetic
  to per-channel, named separately for clarity at call sites);
* **per-group** — one per contiguous group of ``group_size`` columns within
  each row.

All functions are vectorised NumPy; quantized codes are returned in the
storage dtype of the target :class:`~repro.quant.dtypes.IntFormat`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quant.dtypes import IntFormat

__all__ = [
    "Granularity",
    "QuantParams",
    "QuantizedTensor",
    "compute_qparams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
]


class Granularity(str, enum.Enum):
    """Parameter-sharing granularity of a quantizer."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"
    PER_TOKEN = "per_token"
    PER_GROUP = "per_group"

    @property
    def is_rowwise(self) -> bool:
        """True for granularities that share parameters along rows."""
        return self in (Granularity.PER_CHANNEL, Granularity.PER_TOKEN)


@dataclass
class QuantParams:
    """Scale / zero-point pair plus the metadata needed to (de)quantize.

    ``scale`` and ``zero_point`` are broadcastable against the tensor shape
    produced by :func:`_reshape_for_groups`:

    * per-tensor: scalars (shape ``()``),
    * per-channel / per-token: shape ``(rows, 1)``,
    * per-group: shape ``(rows, n_groups, 1)``.
    """

    fmt: IntFormat
    granularity: Granularity
    symmetric: bool
    scale: np.ndarray
    zero_point: np.ndarray
    group_size: Optional[int] = None
    original_shape: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.scale = np.asarray(self.scale, dtype=np.float64)
        self.zero_point = np.asarray(self.zero_point, dtype=np.float64)
        if np.any(self.scale <= 0):
            raise ValueError("quantization scales must be strictly positive")

    @property
    def num_parameters(self) -> int:
        """Number of (scale, zero) pairs stored — memory accounting helper."""
        return int(np.prod(self.scale.shape)) if self.scale.shape else 1


@dataclass
class QuantizedTensor:
    """A quantized tensor together with its quantization parameters."""

    codes: np.ndarray
    params: QuantParams

    @property
    def shape(self) -> tuple:
        return tuple(self.params.original_shape)

    def dequantize(self) -> np.ndarray:
        return dequantize(self.codes, self.params)


_EPS = 1e-12


def _reshape_for_groups(x: np.ndarray, granularity: Granularity,
                        group_size: Optional[int]) -> np.ndarray:
    """Reshape ``x`` so that the last axis is the reduction axis of a group.

    Returns a view (or reshaped copy) with shape:

    * per-tensor: ``(1, numel)``
    * per-channel / per-token: ``(rows, cols)``
    * per-group: ``(rows, n_groups, group_size)``
    """
    x = np.asarray(x)
    if granularity is Granularity.PER_TENSOR:
        return x.reshape(1, -1)
    if x.ndim < 2:
        raise ValueError(f"{granularity.value} quantization requires >=2D input, got {x.ndim}D")
    rows = int(np.prod(x.shape[:-1]))
    cols = x.shape[-1]
    flat = x.reshape(rows, cols)
    if granularity.is_rowwise:
        return flat
    if granularity is Granularity.PER_GROUP:
        if not group_size or group_size <= 0:
            raise ValueError("per-group quantization requires a positive group_size")
        if cols % group_size != 0:
            raise ValueError(
                f"last dimension ({cols}) must be divisible by group_size ({group_size})"
            )
        return flat.reshape(rows, cols // group_size, group_size)
    raise ValueError(f"unsupported granularity: {granularity}")


def compute_qparams(
    x: np.ndarray,
    fmt: IntFormat,
    granularity: Granularity = Granularity.PER_TENSOR,
    symmetric: bool = True,
    group_size: Optional[int] = None,
    clip_ratio: float = 1.0,
    qmax_override: Optional[int] = None,
) -> QuantParams:
    """Compute scale/zero-point for ``x`` following Equation (2).

    Parameters
    ----------
    clip_ratio:
        Weight-clipping ratio ``alpha`` of Section 4.3.4 — the dynamic range
        is shrunk to ``alpha * [min, max]`` before computing the scale.
    qmax_override:
        Override the positive quantization bound, used to implement the
        protective range of progressive quantization (e.g. 119 instead of
        127 for INT8).
    """
    x = np.asarray(x, dtype=np.float64)
    grouped = _reshape_for_groups(x, granularity, group_size)
    reduce_axis = -1

    qmax = float(qmax_override if qmax_override is not None else fmt.qmax)
    if symmetric:
        if not fmt.signed:
            raise ValueError("symmetric quantization requires a signed format")
        amax = np.max(np.abs(grouped), axis=reduce_axis, keepdims=True) * clip_ratio
        scale = np.maximum(amax, _EPS) / qmax
        zero_point = np.zeros_like(scale)
    else:
        xmax = np.max(grouped, axis=reduce_axis, keepdims=True) * clip_ratio
        xmin = np.min(grouped, axis=reduce_axis, keepdims=True) * clip_ratio
        xmax = np.maximum(xmax, 0.0)
        xmin = np.minimum(xmin, 0.0)
        qrange = qmax - float(fmt.qmin)
        scale = np.maximum(xmax - xmin, _EPS) / qrange
        zero_point = np.round(fmt.qmin - xmin / scale)
        zero_point = np.clip(zero_point, fmt.qmin, qmax)

    return QuantParams(
        fmt=fmt,
        granularity=granularity,
        symmetric=symmetric,
        scale=scale,
        zero_point=zero_point,
        group_size=group_size,
        original_shape=tuple(x.shape),
    )


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize ``x`` to integer codes using ``params`` (Equation 2)."""
    x = np.asarray(x, dtype=np.float64)
    grouped = _reshape_for_groups(x, params.granularity, params.group_size)
    codes = np.round(grouped / params.scale + params.zero_point)
    codes = np.clip(codes, params.fmt.qmin, params.fmt.qmax)
    return codes.reshape(x.shape).astype(params.fmt.storage_dtype)


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Dequantize integer ``codes`` back to floating point (Equation 3)."""
    original_shape = params.original_shape or codes.shape
    grouped = _reshape_for_groups(
        np.asarray(codes, dtype=np.float64), params.granularity, params.group_size
    )
    values = (grouped - params.zero_point) * params.scale
    return values.reshape(original_shape)


def fake_quantize(
    x: np.ndarray,
    fmt: IntFormat,
    granularity: Granularity = Granularity.PER_TENSOR,
    symmetric: bool = True,
    group_size: Optional[int] = None,
    clip_ratio: float = 1.0,
    qmax_override: Optional[int] = None,
) -> np.ndarray:
    """Quantize-then-dequantize ``x`` (a.k.a. simulated or fake quantization).

    This is the workhorse for accuracy experiments: the returned tensor lives
    in floating point but only takes values representable under the requested
    integer format/granularity.
    """
    params = compute_qparams(
        x, fmt, granularity=granularity, symmetric=symmetric,
        group_size=group_size, clip_ratio=clip_ratio, qmax_override=qmax_override,
    )
    return dequantize(quantize(x, params), params)


def quantization_error(x: np.ndarray, x_hat: np.ndarray, ord: str = "mse") -> float:
    """Error between a tensor and its quantized reconstruction.

    ``ord`` is ``"mse"`` (mean squared error), ``"mae"`` or ``"fro"``
    (Frobenius norm of the difference).
    """
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    diff = x - x_hat
    if ord == "mse":
        return float(np.mean(diff ** 2))
    if ord == "mae":
        return float(np.mean(np.abs(diff)))
    if ord == "fro":
        return float(np.linalg.norm(diff))
    raise ValueError(f"unknown error order: {ord!r}")
