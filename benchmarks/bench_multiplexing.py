"""Multi-model multiplexing vs static fleet partitioning.

The deployment question the multiplexing layer answers: given a skewed
two-model traffic mix, does a shared fleet — every replica able to host
either model, weights swapped LRU at a priced cost, warm-first routing —
beat dedicating half the GPUs to each model?

``test_multiplexed_vs_partitioned`` serves the same 80/20 trace both ways
and compares aggregate SLO goodput and provisioned GPU-seconds, swap costs
priced in.  The win condition is the PR's acceptance claim: the shared
fleet must beat the equal-size static partition on goodput (the majority
model borrows the minority model's idle replicas), or match it with fewer
GPU-seconds.  ``test_swap_pricing_bounds_residency_churn`` pins the cost
side: every swap-in is charged at the autoscaler cold-start price and the
fleet converges to a stable partition instead of thrashing.
"""

from repro.gpu import A100, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    MultiplexConfig,
    SYSTEM_PRESETS,
    Workload,
    make_multi_model_workload,
    weight_transfer_s,
)

#: The comparison's latency SLO.
TTFT_SLO_S, TPOT_SLO_S = 1.0, 0.1
#: Fleet size: the multiplexed fleet shares all of it, the partitioned
#: baseline splits it evenly between the two models.
NUM_REPLICAS = 4
MODELS = ("llama-2-7b", "llama-2-13b")

_SYSTEM = SYSTEM_PRESETS["trt-fp16"]


def _skewed_workload(num_requests=240, arrival_rate=60.0, seed=11):
    """An 80/20 two-model mix hot enough to overload half the fleet."""
    return make_multi_model_workload(
        num_requests, models=MODELS, weights=(0.8, 0.2),
        arrival_rate=arrival_rate, prompt_len=256, output_len=64, seed=seed)


def _serve_shared(workload, max_resident=1):
    models = tuple(get_config(name) for name in MODELS)
    cluster = ClusterEngine(models[0], A100, _SYSTEM,
                            num_replicas=NUM_REPLICAS, max_seq_len=2048)
    return cluster.serve(workload.copy_fresh(), router="model-aware",
                         max_num_seqs=16,
                         multiplex=MultiplexConfig(
                             models=models,
                             max_resident_models=max_resident))


def _serve_partitioned(workload):
    """Half the fleet per model, each serving only its own trace slice."""
    per_model = {name: [] for name in MODELS}
    for request in workload.copy_fresh().requests:
        per_model[request.model].append(request)
    results = {}
    for name in MODELS:
        cluster = ClusterEngine(get_config(name), A100, _SYSTEM,
                                num_replicas=NUM_REPLICAS // 2,
                                max_seq_len=2048)
        results[name] = cluster.serve(Workload(requests=per_model[name]),
                                      router="least-outstanding",
                                      max_num_seqs=16)
    return results


def _aggregate_goodput(results):
    """Requests inside the SLO per second over the slowest partition."""
    ok = sum(r.slo_goodput(TTFT_SLO_S, TPOT_SLO_S) * r.total_time_s
             for r in results.values())
    return ok / max(r.total_time_s for r in results.values())


def test_multiplexed_vs_partitioned(benchmark, serving_json):
    """The acceptance claim: shared beats partitioned on SLO goodput."""
    workload = _skewed_workload()

    def run():
        return {"multiplexed": _serve_shared(workload),
                "partitioned": _serve_partitioned(workload)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    shared = results["multiplexed"]
    parts = results["partitioned"]
    serving_json.record("multiplex_ab",
                        {"multiplexed": shared, **parts})
    shared_goodput = shared.slo_goodput(TTFT_SLO_S, TPOT_SLO_S)
    part_goodput = _aggregate_goodput(parts)
    part_gpu_s = sum(r.gpu_seconds for r in parts.values())
    print(f"\nmultiplexed  goodput {shared_goodput:6.2f} req/s  "
          f"{shared.gpu_seconds:6.1f} GPU-s  "
          f"{shared.multiplex.swap_ins} swap-ins "
          f"({shared.multiplex.swap_in_s:.2f}s)")
    print(f"partitioned  goodput {part_goodput:6.2f} req/s  "
          f"{part_gpu_s:6.1f} GPU-s")
    assert shared.num_unserved == 0
    assert all(r.num_unserved == 0 for r in parts.values())
    # Swaps happened and were priced — the win is not free.
    assert shared.multiplex.swap_ins >= 1
    assert shared.multiplex.swap_in_s > 0.0
    # The claim: strictly better aggregate SLO goodput at equal fleet size
    # (or at worst equal goodput on fewer GPU-seconds).
    assert (shared_goodput > 1.05 * part_goodput
            or (shared_goodput >= part_goodput
                and shared.gpu_seconds < 0.95 * part_gpu_s))


def test_swap_pricing_bounds_residency_churn(benchmark, serving_json):
    """Swap-ins cost exactly the cold-start price and do not thrash."""
    workload = _skewed_workload(num_requests=160, arrival_rate=30.0)

    def run():
        return {"shared": _serve_shared(workload)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("multiplex_swap_pricing", results)
    shared = results["shared"]
    report = shared.multiplex
    m13 = get_config(MODELS[1])
    unit_cost = weight_transfer_s(
        float(m13.weight_bytes(_SYSTEM.weight_bits)), PCIE_GEN4)
    print(f"\n{report.swap_ins} swap-ins, {report.swap_in_s:.2f}s total, "
          f"13b unit cost {unit_cost:.2f}s")
    # Every replica stays within its residency limit and the fleet settles
    # into a stable partition: far fewer swaps than requests.
    assert 1 <= report.swap_ins <= NUM_REPLICAS
    for snapshot in report.replicas:
        assert len(snapshot.resident) == 1
    # Total swap seconds decompose into the per-model unit prices.
    expected = sum(
        count * weight_transfer_s(
            float(get_config(name).weight_bytes(_SYSTEM.weight_bits)),
            PCIE_GEN4)
        for snap in report.replicas
        for name, count in snap.swap_ins_by_model.items())
    assert abs(report.swap_in_s - expected) < 1e-9
