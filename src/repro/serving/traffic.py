"""Production traffic: trace replay, diurnal and flash-crowd arrivals, tenants.

The generators in :mod:`repro.serving.request` model *stationary* traffic
(Poisson, on/off bursts).  Production request streams are not stationary:
rates swing with the day, marketing launches produce step spikes, and the
stream is shared by many tenants with different SLO tiers.  This module adds
the open-loop traffic sources a capacity-planning study needs:

* :func:`make_diurnal_workload` — non-homogeneous Poisson arrivals whose
  rate follows a sinusoid ``rate(t) = base * (1 + amplitude *
  sin(2 * pi * (t - phase) / period))``, sampled exactly by thinning;
* :func:`make_flash_crowd_workload` — piecewise-constant rates: a baseline
  Poisson process overlaid with step/spike segments (e.g. a 10x spike for
  30 s), the trace behind "minimum GPUs to hold p99 TTFT under a spike";
* :func:`make_multi_model_workload` — Poisson arrivals whose requests are
  stamped with models drawn from a popularity mix (e.g. 80/20 across two
  registry models), the skewed trace multiplexing studies replay;
* :func:`load_trace` / :func:`save_trace` — a JSONL trace format
  (``arrival_s``, prompt/output tokens, ``tenant``, ``tier``, ``model``) so
  recorded or hand-authored traces can drive the engine reproducibly;
* :func:`assign_tenants` — stamp an existing workload with a deterministic
  tenant mix and paid/free SLO tiers.

All generators are seeded and return plain :class:`Workload` objects; none
of them changes engine behaviour by itself.  Tier semantics only activate
when the scheduler is built with ``tier_admission`` on (see
:mod:`repro.serving.policies`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.model.config import MODEL_REGISTRY
from repro.serving.request import (
    _OUTPUT_LOGNORMAL,
    _PROMPT_LOGNORMAL,
    _lognormal_lengths,
    Request,
    Workload,
)

__all__ = [
    "TIERS",
    "TenantSpec",
    "make_tenant_pool",
    "assign_tenants",
    "make_diurnal_workload",
    "make_flash_crowd_workload",
    "make_multi_model_workload",
    "load_trace",
    "save_trace",
]

#: Priority tiers recognised by tier-aware admission, best first.
TIERS = ("paid", "free")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant sharing the serving fleet.

    ``weight`` is the tenant's relative share of the request stream; tiers
    follow :data:`TIERS` ("paid" admits ahead of "free" under pressure).
    """

    name: str
    tier: str = "paid"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; expected {TIERS}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


def make_tenant_pool(num_tenants: int = 4,
                     free_fraction: float = 0.5) -> Tuple[TenantSpec, ...]:
    """A deterministic pool of equally weighted tenants.

    The first ``round(num_tenants * (1 - free_fraction))`` tenants are paid,
    the rest free — no randomness, so the pool is stable across runs.
    """
    if num_tenants <= 0:
        raise ValueError("num_tenants must be positive")
    if not 0.0 <= free_fraction <= 1.0:
        raise ValueError("free_fraction must be in [0, 1]")
    num_paid = int(round(num_tenants * (1.0 - free_fraction)))
    return tuple(
        TenantSpec(name=f"tenant-{i:02d}",
                   tier="paid" if i < num_paid else "free")
        for i in range(num_tenants))


def _sample_tenants(rng: np.random.Generator, n: int,
                    tenants: Sequence[TenantSpec]) -> List[TenantSpec]:
    weights = np.asarray([t.weight for t in tenants], dtype=np.float64)
    picks = rng.choice(len(tenants), size=n, p=weights / weights.sum())
    return [tenants[int(i)] for i in picks]


def assign_tenants(workload: Workload,
                   tenants: Union[int, Sequence[TenantSpec]] = 4,
                   free_fraction: float = 0.5,
                   seed: int = 0) -> Workload:
    """Stamp ``workload``'s requests with tenants and tiers, in place.

    ``tenants`` is either a tenant count (expanded via
    :func:`make_tenant_pool`) or an explicit sequence of
    :class:`TenantSpec`.  Assignment is an i.i.d. weighted draw from a
    dedicated seeded generator, so the same workload + seed always produces
    the same tenant mix.  Returns the workload for chaining.
    """
    if isinstance(tenants, int):
        tenants = make_tenant_pool(tenants, free_fraction=free_fraction)
    if not tenants:
        raise ValueError("tenants must be non-empty")
    rng = np.random.default_rng(seed)
    for request, spec in zip(workload.requests,
                             _sample_tenants(rng, len(workload), tenants)):
        request.tenant = spec.name
        request.tier = spec.tier
    return workload


def _lengths(rng: np.random.Generator, n: int,
             prompt_len: Optional[int],
             output_len: Optional[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform lengths when given, ShareGPT-like lognormal mixes otherwise."""
    if prompt_len is not None:
        prompts = np.full(n, prompt_len, dtype=np.int64)
    else:
        prompts = _lognormal_lengths(rng, n, *_PROMPT_LOGNORMAL)
    if output_len is not None:
        outputs = np.full(n, output_len, dtype=np.int64)
    else:
        outputs = _lognormal_lengths(rng, n, *_OUTPUT_LOGNORMAL)
    return prompts, outputs


def _build(rng: np.random.Generator, arrivals: Sequence[float],
           prompt_len: Optional[int], output_len: Optional[int],
           tenants: Optional[Union[int, Sequence[TenantSpec]]],
           free_fraction: float, tenant_seed: int) -> Workload:
    n = len(arrivals)
    prompts, outputs = _lengths(rng, n, prompt_len, output_len)
    workload = Workload(requests=[
        Request(request_id=i, prompt_len=int(prompts[i]),
                output_len=int(outputs[i]), arrival_time=float(arrivals[i]))
        for i in range(n)
    ])
    if tenants is not None:
        assign_tenants(workload, tenants, free_fraction=free_fraction,
                       seed=tenant_seed)
    return workload


def make_diurnal_workload(num_requests: int,
                          base_rate: float = 4.0,
                          amplitude: float = 0.6,
                          period_s: float = 120.0,
                          phase_s: float = 0.0,
                          prompt_len: Optional[int] = None,
                          output_len: Optional[int] = None,
                          tenants: Optional[Union[int, Sequence[TenantSpec]]] = None,
                          free_fraction: float = 0.5,
                          seed: int = 0) -> Workload:
    """Sinusoidally modulated Poisson arrivals (a compressed diurnal cycle).

    The instantaneous rate is ``base_rate * (1 + amplitude * sin(2 * pi *
    (t - phase_s) / period_s))``, sampled exactly with the standard thinning
    construction: candidate arrivals are drawn from a homogeneous process at
    the peak rate and accepted with probability ``rate(t) / peak``.  With
    ``amplitude < 1`` the rate never reaches zero; ``amplitude = 1`` gives
    fully silent troughs.  Lengths default to the ShareGPT-like lognormal
    mixes; pass ``prompt_len`` / ``output_len`` for uniform shapes.  With
    ``tenants`` set, requests are stamped via :func:`assign_tenants`.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if base_rate <= 0 or period_s <= 0:
        raise ValueError("base_rate and period_s must be positive")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    rng = np.random.default_rng(seed)
    peak = base_rate * (1.0 + amplitude)
    omega = 2.0 * math.pi / period_s
    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        t += float(rng.exponential(1.0 / peak))
        rate = base_rate * (1.0 + amplitude * math.sin(omega * (t - phase_s)))
        if rng.random() * peak <= rate:
            arrivals.append(t)
    return _build(rng, arrivals, prompt_len, output_len,
                  tenants, free_fraction, seed + 1)


def make_flash_crowd_workload(num_requests: int,
                              base_rate: float = 2.0,
                              spikes: Sequence[Tuple[float, float, float]] = (
                                  (30.0, 20.0, 10.0),),
                              prompt_len: Optional[int] = None,
                              output_len: Optional[int] = None,
                              tenants: Optional[Union[int, Sequence[TenantSpec]]] = None,
                              free_fraction: float = 0.5,
                              seed: int = 0) -> Workload:
    """Baseline Poisson traffic overlaid with step spikes (flash crowds).

    ``spikes`` is a sequence of ``(start_s, duration_s, multiplier)``
    segments; while inside a segment the instantaneous rate is ``base_rate *
    multiplier`` (overlapping segments multiply).  The default is a single
    10x spike from t=30 s to t=50 s — the "traffic spike" of the capacity
    question.  Sampling uses the memorylessness of the exponential: a draw
    that crosses a rate boundary is restarted at the boundary under the new
    rate, which is exact for piecewise-constant intensities.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    for start, duration, multiplier in spikes:
        if start < 0 or duration <= 0 or multiplier <= 0:
            raise ValueError("spike segments need start >= 0, duration > 0, "
                             "multiplier > 0")
    rng = np.random.default_rng(seed)
    boundaries = sorted({0.0}
                        | {float(s) for s, _, _ in spikes}
                        | {float(s + d) for s, d, _ in spikes})

    def rate_at(t: float) -> float:
        rate = base_rate
        for start, duration, multiplier in spikes:
            if start <= t < start + duration:
                rate *= multiplier
        return rate

    def next_boundary(t: float) -> float:
        for b in boundaries:
            if b > t:
                return b
        return math.inf

    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        candidate = t + float(rng.exponential(1.0 / rate_at(t)))
        boundary = next_boundary(t)
        if candidate > boundary:
            t = boundary  # re-draw under the new segment's rate
            continue
        t = candidate
        arrivals.append(t)
    return _build(rng, arrivals, prompt_len, output_len,
                  tenants, free_fraction, seed + 1)


def make_multi_model_workload(num_requests: int,
                              models: Sequence[str],
                              weights: Optional[Sequence[float]] = None,
                              arrival_rate: float = 8.0,
                              prompt_len: Optional[int] = None,
                              output_len: Optional[int] = None,
                              tenants: Optional[Union[int, Sequence[TenantSpec]]] = None,
                              free_fraction: float = 0.5,
                              seed: int = 0) -> Workload:
    """Poisson arrivals tagged with models drawn from a popularity mix.

    ``models`` names the registry models requests may target; ``weights``
    gives their relative popularity (uniform when omitted) — the skewed
    two-model trace of the multiplexing studies is
    ``models=("llama-2-7b", "llama-2-13b"), weights=(0.8, 0.2)``.  Model
    names are validated against the registry with the same contract as
    :func:`load_trace`.  Lengths default to the ShareGPT-like lognormal
    mixes; ``tenants`` stamps the result via :func:`assign_tenants`.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if not models:
        raise ValueError("models must be non-empty")
    for name in models:
        if name not in MODEL_REGISTRY:
            raise ValueError(f"unknown model {name!r}")
    probs = None
    if weights is not None:
        if len(weights) != len(models):
            raise ValueError(
                f"weights has {len(weights)} entries for "
                f"{len(models)} models")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with a "
                             "positive sum")
        total = float(sum(weights))
        probs = [w / total for w in weights]
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, num_requests))
    workload = _build(rng, [float(t) for t in arrivals],
                      prompt_len, output_len,
                      tenants, free_fraction, seed + 1)
    picks = rng.choice(len(models), size=num_requests, p=probs)
    for request, pick in zip(workload.requests, picks):
        request.model = models[int(pick)]
    return workload


#: JSONL trace schema: required and optional per-line fields.
_TRACE_REQUIRED = ("arrival_s", "prompt_tokens", "output_tokens")
_TRACE_OPTIONAL = ("tenant", "tier", "model")


def load_trace(source: Union[str, Path, IO[str], Iterable[str]]) -> Workload:
    """Load a JSONL request trace into a :class:`Workload`.

    Each line is one JSON object with required fields ``arrival_s``,
    ``prompt_tokens`` and ``output_tokens``, plus optional ``tenant``,
    ``tier`` (default ``"paid"``) and ``model``.  Requests are sorted by
    arrival time (ties broken by line order) and re-numbered 0..n-1, so the
    same file always replays into the identical workload regardless of line
    order.  ``source`` may be a path, an open text file, or any iterable of
    lines.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON") from exc
        for key in _TRACE_REQUIRED:
            if key not in record:
                raise ValueError(f"trace line {lineno}: missing {key!r}")
        tier = record.get("tier", "paid")
        if tier not in TIERS:
            raise ValueError(f"trace line {lineno}: unknown tier {tier!r}")
        model = record.get("model")
        if model is not None and model not in MODEL_REGISTRY:
            raise ValueError(
                f"trace line {lineno}: unknown model {model!r}")
        records.append((float(record["arrival_s"]), lineno, record, tier))
    records.sort(key=lambda item: (item[0], item[1]))
    requests = [
        Request(request_id=i, prompt_len=int(record["prompt_tokens"]),
                output_len=int(record["output_tokens"]), arrival_time=arrival,
                tenant=record.get("tenant"), tier=tier,
                model=record.get("model"))
        for i, (arrival, _, record, tier) in enumerate(records)
    ]
    return Workload(requests=requests)


def save_trace(workload: Workload,
               destination: Union[str, Path, IO[str]]) -> None:
    """Write ``workload`` as a JSONL trace readable by :func:`load_trace`.

    Only the trace-schema fields are written (arrival, lengths, tenant,
    tier, model), so a save/load round trip yields a pristine workload —
    engine-side progress (generated tokens, timestamps) is deliberately not
    serialised.
    """
    def dump(fh: IO[str]) -> None:
        for request in sorted(workload.requests,
                              key=lambda r: (r.arrival_time, r.request_id)):
            record = {
                "arrival_s": request.arrival_time,
                "prompt_tokens": request.prompt_len,
                "output_tokens": request.output_len,
            }
            if request.tenant is not None:
                record["tenant"] = request.tenant
            if request.tier != "paid":
                record["tier"] = request.tier
            if request.model is not None:
                record["model"] = request.model
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            dump(fh)
    else:
        dump(destination)
