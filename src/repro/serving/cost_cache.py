"""Memoization layer for the engine's pure cost-model evaluations.

The serving loop re-prices identical kernel shapes relentlessly: every decode
iteration at batch ``b`` runs the same four projection GEMMs, every chunked
prefill re-evaluates the same LM-head and all-reduce shapes, and a 100k
-request trace asks the GEMM model the same ``(m, n, k, precision)`` question
millions of times.  All of those calls are *pure* — the engine's model
geometry, GPU spec, precision preset and parallel plan are fixed at
construction — so each engine owns a :class:`CostModelCache` and keys its
hot-path latencies on the only thing that varies: the batch shape.

Correctness is trivial by construction: a hit returns the exact float the
miss computed, so cached and uncached runs are bitwise-identical (the
contract ``tests/test_perf_core.py`` locks in across schedulers, prefix
caching and speculation).  Invalidation is equally simple: there is none.
The cache never observes a key whose value could change, because everything
else that feeds the latency formulas is immutable for the engine's lifetime;
anything that *does* vary (context length, chunk boundaries, decode batch)
must be part of the key.  Code that mutates an engine's model/GPU/system in
place (no in-tree code does) must call :meth:`CostModelCache.clear`.

The cache can be disabled per engine (``ServingEngine(cost_cache=False)``)
or process-wide via ``REPRO_COST_CACHE=0`` — the A/B switch the equivalence
tests and the perf benchmark's ``--no-cost-cache`` flag use.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

__all__ = ["CostModelCache", "cache_enabled_default"]


def cache_enabled_default() -> bool:
    """Process-wide default for new engines (``REPRO_COST_CACHE``, on unless
    set to ``0``/``false``/``off``)."""
    return os.environ.get("REPRO_COST_CACHE", "1").lower() not in (
        "0", "false", "off")


class CostModelCache:
    """Hit-counted memo table for one engine's cost-model evaluations.

    Keys are ``(kind, *shape)`` tuples — e.g. ``("gemm", tokens)`` for one
    transformer block's projection GEMMs, ``("attn", batch, context)`` for
    the decode-attention kernel, or the precision-keyed KV repricing entries
    ``("kv_dequant", tokens)`` (demoted-block restoration, priced against
    the engine's own tiers) and ``("kv_transcode", source_system, tokens)``
    (mixed-precision migration landing, keyed on the *source* preset's name
    since the engine's own precision is construction-fixed) — and values are
    latencies in seconds.  The
    engine consults :attr:`store` directly on the hot path (a dict probe is
    the whole point; wrapping it in a method call would give back a third of
    the win) and uses :meth:`record_hit`/:meth:`record_miss` only to keep the
    hit-rate gauge honest.
    """

    __slots__ = ("enabled", "hits", "misses", "store")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.store: Dict[Tuple, float] = {}

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never probed)."""
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def clear(self) -> None:
        """Drop every memoised value (counters included)."""
        self.store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"CostModelCache({state}, {len(self.store)} entries, "
                f"hit rate {self.hit_rate * 100:.1f}%)")
