"""Capacity planning under flash-crowd traffic.

The production question behind the serving simulator: how many replicas
must a deployment hold so that p99 TTFT stays inside the SLO when traffic
spikes to 10x the baseline — and how much of that peak fleet can a
reactive autoscaler give back during the quiet hours?

``test_min_replicas_for_slo`` answers the first half with a static sweep:
serve the same 10x flash crowd on 1..4 replicas and report the smallest
fleet whose p99 TTFT meets the SLO.  ``test_autoscaled_vs_equal_peak_static``
answers the second: the reactive autoscaler against a static fleet sized at
the autoscaled peak, compared on provisioned GPU-seconds at equivalent SLO
attainment.
"""

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    AutoscalerConfig,
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_flash_crowd_workload,
)

#: The capacity plan's latency target.
TTFT_SLO_S = 0.5
#: Pool bound of the sweep (and the autoscaler's ceiling).
MAX_REPLICAS = 4

_MODEL = get_config("llama-2-7b")
_SYSTEM = SYSTEM_PRESETS["qserve-w4a8kv4-chn"]


def _spike_workload(num_requests=260, spike_rate=40.0):
    """Baseline 4 req/s with a 10x flash crowd six seconds in."""
    return make_flash_crowd_workload(
        num_requests, base_rate=4.0, spikes=((5.0, spike_rate, 6.0),),
        prompt_len=512, output_len=200, tenants=4, free_fraction=0.5, seed=7)


def _serve(num_replicas, workload, autoscaler=None):
    cluster = ClusterEngine(_MODEL, A100, _SYSTEM, num_replicas=num_replicas,
                            max_seq_len=2048)
    return cluster.serve(workload.copy_fresh(), router="least-outstanding",
                         max_num_seqs=8,
                         scheduling=SCHEDULING_PRESETS["tiered"],
                         autoscaler=autoscaler)


def test_min_replicas_for_slo(benchmark, serving_json):
    """Static sweep: the smallest fleet meeting p99 TTFT <= 0.5s at 10x."""
    workload = _spike_workload()

    def run():
        return {n: _serve(n, workload)
                for n in range(1, MAX_REPLICAS + 1)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("capacity_sweep", results)
    meeting = [n for n, r in results.items()
               if r.metrics.ttft.p99 <= TTFT_SLO_S]
    min_replicas = min(meeting) if meeting else None
    print(f"\nSLO: p99 TTFT <= {TTFT_SLO_S * 1e3:.0f} ms under 10x spike")
    for n, r in results.items():
        mark = " <- min" if n == min_replicas else ""
        print(f"{n} replica(s): p99 TTFT {r.metrics.ttft.p99 * 1e3:8.1f} ms  "
              f"{r.gpu_seconds:6.1f} GPU-s{mark}")
    assert all(r.num_unserved == 0 for r in results.values())
    assert min_replicas is not None, "pool bound too small for the SLO"
    # The spike genuinely requires scale: one replica must not suffice, and
    # every fleet below the minimum must violate the SLO.
    assert min_replicas > 1
    assert results[min_replicas - 1].metrics.ttft.p99 > TTFT_SLO_S
    # p99 TTFT improves monotonically with fleet size on this workload.
    p99s = [results[n].metrics.ttft.p99 for n in sorted(results)]
    assert p99s == sorted(p99s, reverse=True)


def test_autoscaled_vs_equal_peak_static(benchmark, serving_json):
    """Reactive autoscaling returns GPU-hours the static peak fleet burns.

    A gentler spike (the regime reactive scaling is built for — cold start
    is comparable to the ramp) so both fleets land in the same SLO
    attainment class; the comparison is then pure cost.
    """
    workload = make_flash_crowd_workload(
        220, base_rate=2.0, spikes=((5.0, 30.0, 6.0),),
        prompt_len=512, output_len=200, tenants=4, free_fraction=0.5, seed=7)
    autoscaler = AutoscalerConfig(
        min_replicas=1, max_replicas=MAX_REPLICAS, interval_s=2.0,
        scale_up_queue_depth=2.0, up_cooldown_s=2.0, down_cooldown_s=4.0,
        scale_down_outstanding=6.0, ttft_slo_s=TTFT_SLO_S)

    def run():
        auto = _serve(MAX_REPLICAS, workload, autoscaler=autoscaler)
        static = _serve(auto.autoscale.peak_replicas, workload)
        return {"autoscaled": auto, "static-peak": static}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("capacity_autoscale_ab", results)
    auto, static = results["autoscaled"], results["static-peak"]
    slo = {label: r.metrics.slo_attainment(1.0, 0.05)
           for label, r in results.items()}
    print()
    for label, r in results.items():
        print(f"{label:12s} {r.gpu_seconds:6.1f} GPU-s  "
              f"SLO attainment {slo[label]:.3f}  "
              f"p99 TTFT {r.metrics.ttft.p99 * 1e3:8.1f} ms")
    report = auto.autoscale
    print(f"autoscaler: peak {report.peak_replicas}, "
          f"{report.num_scale_ups} up / {report.num_scale_downs} down, "
          f"cold start {report.cold_start_s:.2f}s")
    assert auto.num_unserved == static.num_unserved == 0
    assert report.num_scale_ups > 0
    # The claim: fewer provisioned GPU-seconds at equivalent SLO attainment.
    assert auto.gpu_seconds < 0.95 * static.gpu_seconds
    assert slo["autoscaled"] >= slo["static-peak"] - 0.1
