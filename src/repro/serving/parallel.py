"""Tensor-parallel sharding and communication model.

A model too large for one device is served by sharding every transformer
block across ``tp_degree`` GPUs Megatron-style: the QKV and gate/up
projections are split along their output dimension (column parallel), the
output and down projections along their input dimension (row parallel), and
attention heads are divided across devices.  Each layer then needs exactly
two all-reduces of the activations — one after the attention output
projection and one after the FFN down projection — which
:class:`ParallelConfig` charges to the interconnect's ring-all-reduce cost
model (:class:`repro.gpu.specs.InterconnectSpec`).

The memory side is what makes tensor parallelism interesting for Table 4:
weights and KV cache divide across GPUs, so a model whose weights alone
overflow one device (the table's "OOM" entries) becomes servable at
``tp_degree >= 2``, at the price of per-layer communication and smaller
per-GPU GEMMs.

``tp_degree == 1`` is the strict identity: no sharding, no communication,
and every latency/memory quantity bitwise equal to the single-GPU engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.specs import InterconnectSpec, NVLINK
from repro.model.config import ModelConfig

__all__ = ["ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """Tensor-parallel execution plan for one replica engine.

    Attributes
    ----------
    tp_degree:
        Number of GPUs one model replica is sharded across (1 = no
        parallelism).
    interconnect:
        Link the per-layer all-reduces run over
        (:data:`repro.gpu.specs.NVLINK` or :data:`~repro.gpu.specs.PCIE_GEN4`).
    """

    tp_degree: int = 1
    interconnect: InterconnectSpec = field(default=NVLINK)

    def __post_init__(self) -> None:
        if self.tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")

    @property
    def is_parallel(self) -> bool:
        return self.tp_degree > 1

    def validate_for(self, model: ModelConfig) -> None:
        """Check that ``model`` shards evenly across ``tp_degree`` GPUs.

        Head sharding requires the query and KV head counts to divide by the
        TP degree (real deployments replicate KV heads below that point; the
        cost model keeps the honest constraint instead), and the FFN split
        requires the intermediate size to divide as well.
        """
        if self.tp_degree == 1:
            return
        for attr in ("num_heads", "num_kv_heads", "intermediate_size"):
            value = getattr(model, attr)
            if value % self.tp_degree != 0:
                raise ValueError(
                    f"{model.name}: {attr}={value} is not divisible by "
                    f"tp_degree={self.tp_degree}")

    # ------------------------------------------------------------------
    # Sharding helpers
    # ------------------------------------------------------------------
    def shard_ceil(self, dim: int) -> int:
        """Per-GPU share of a padded dimension (vocab-style sharding)."""
        return -(-dim // self.tp_degree)

    # ------------------------------------------------------------------
    # Communication cost
    # ------------------------------------------------------------------
    def allreduce_latency(self, payload_bytes: float) -> float:
        """Ring all-reduce time for one activation tensor (0 at tp=1)."""
        return self.interconnect.allreduce_latency(payload_bytes, self.tp_degree)

    def block_comm_latency(self, tokens: int, hidden_size: int,
                           num_layers: int) -> float:
        """Per-iteration all-reduce time across all transformer blocks.

        Each block all-reduces its FP16 activations twice (after the
        attention output projection and after the FFN down projection), so
        one iteration over ``tokens`` rows pays ``2 * num_layers`` ring
        all-reduces of ``tokens * hidden_size * 2`` bytes.
        """
        if not self.is_parallel:
            return 0.0
        payload = tokens * hidden_size * 2.0
        return 2 * num_layers * self.allreduce_latency(payload)
