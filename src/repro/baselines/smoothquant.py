"""SmoothQuant (Xiao et al., 2023) — the W8A8 baseline of Table 2.

Activation outliers are migrated into the weights of the *input modules* with
per-channel factors ``λ_j = act_absmax_j^α / weight_absmax_j^(1-α)`` (α = 0.5),
then weights are quantized per-channel INT8 and activations per-token INT8.
The KV cache uses static per-tensor INT8 quantization, matching the
TensorRT-LLM configuration the paper evaluates.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.model.quantized import W8A8Linear
from repro.model.transformer import (
    ForwardConfig,
    INPUT_MODULE_SUFFIXES,
    TransformerModel,
)
from repro.qoq.smoothing import compute_smoothing_scales
from repro.quant.kv_quant import KVQuantConfig

__all__ = ["quantize_smoothquant"]


def quantize_smoothquant(
    model: TransformerModel,
    calibration_batches: List[np.ndarray],
    alpha: float = 0.5,
    kv_bits: int = 8,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize ``model`` to W8A8 with SmoothQuant calibration."""
    work = model.clone()
    recorder = work.run_calibration(calibration_batches)
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=False))

    for name, layer in work.named_linears().items():
        weight = np.asarray(layer.weight, dtype=np.float64)
        input_scale = None
        if name.endswith(INPUT_MODULE_SUFFIXES):
            act_absmax = recorder.absmax[name]
            input_scale = compute_smoothing_scales(act_absmax, weight, alpha=alpha)
            weight = weight * input_scale[None, :]
        work.set_linear(name, W8A8Linear(weight, name=name, input_scale=input_scale))
    return work, fwd
