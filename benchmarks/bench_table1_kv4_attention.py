"""Benchmark regenerating Table 1 and the Section 6.4 KV4 kernel breakdown."""

from repro.experiments import table1_kv4_attention
from repro.gpu import A100, L40S


def test_table1_a100(benchmark):
    report = benchmark(table1_kv4_attention.run, gpu=A100)
    print()
    print(report.to_text("{:.2f}"))
    assert all(s < 1.0 for s in report.column("naive speedup"))
    assert all(s > 1.2 for s in report.column("QServe speedup"))


def test_table1_l40s(benchmark):
    report = benchmark(table1_kv4_attention.run, gpu=L40S)
    print()
    print(report.to_text("{:.2f}"))
    # On L40S even the naive KV4 kernel beats KV8 (Section 5.3).
    assert all(s > 1.0 for s in report.column("naive speedup"))


def test_table1_optimization_breakdown(benchmark):
    report = benchmark(table1_kv4_attention.run_breakdown)
    print()
    print(report.to_text("{:.2f}"))
    latencies = report.column("Latency (ms)")
    assert latencies == sorted(latencies, reverse=True)
