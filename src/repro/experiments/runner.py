"""Shared experiment reporting utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentReport", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_fmt: str = "{:.2f}") -> str:
    """Render rows as a fixed-width text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """Result of one experiment: an identifier, a table, and free-form notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} columns, got {len(values)}")
        self.rows.append(list(values))

    def to_text(self, float_fmt: str = "{:.2f}") -> str:
        body = format_table(self.headers, self.rows, float_fmt=float_fmt)
        header = f"== {self.experiment_id}: {self.title} =="
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_by(self, key_column: str, key: object) -> Optional[List[object]]:
        idx = self.headers.index(key_column)
        for row in self.rows:
            if row[idx] == key:
                return row
        return None
