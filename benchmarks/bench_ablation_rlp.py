"""Ablation benchmark: subtraction-after vs subtraction-before multiplication.

Reproduces the Figure 14 argument: with progressive quantization's integer
scales, the subtraction-after-multiplication order never overflows the packed
byte lanes (so register-level parallelism applies), whereas the
subtraction-before-multiplication order frequently does.
"""

import numpy as np

from repro.gpu import dequantize_subtract_after_multiply, dequantize_subtract_before_multiply
from repro.quant.progressive import progressive_quantize


def _overflow_counts(order: str, trials: int = 100) -> int:
    rng = np.random.default_rng(1)
    fn = (dequantize_subtract_after_multiply if order == "after"
          else dequantize_subtract_before_multiply)
    overflows = 0
    for _ in range(trials):
        weight = rng.normal(0, rng.uniform(0.05, 1.0), size=(4, 32))
        # Plant strong positive and negative outliers so that many groups span
        # (almost) the full INT8 range, as real salient channels do.
        weight[:, rng.integers(0, 32)] *= 25.0
        weight[:, rng.integers(0, 32)] *= -25.0
        pqw = progressive_quantize(weight, group_size=8)
        for row in range(4):
            for g in range(4):
                for half in range(2):
                    start = g * 8 + half * 4
                    codes = pqw.qweight[row, start:start + 4].astype(np.int64)[None, :]
                    res = fn(codes, int(pqw.zeros[row, g]),
                             int(pqw.scales_l2[row, g]))
                    overflows += int(res.overflowed)
    return overflows


def test_subtraction_after_multiplication_never_overflows(benchmark):
    after = benchmark.pedantic(_overflow_counts, args=("after",), rounds=1, iterations=1)
    before = _overflow_counts("before")
    print(f"\noverflow groups: after={after}, before={before}")
    assert after == 0
    assert before > 0
