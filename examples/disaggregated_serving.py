"""Disaggregated prefill/decode serving walkthrough.

Production fleets (DistServe, Splitwise, Mooncake) split prompt processing
and token generation onto separate replicas so that bursty prefill work
cannot inflate inter-token latency: a decode replica's iterations never
share the GPU with prompt chunks.  The price is a KV-state handoff — the
finished prefill's KV cache crosses an interconnect to the decode replica —
plus a replica-count split that must match the workload's prefill:decode
compute ratio.

Three sections, all on the bursty heavy-tailed router-study workload:

1. **Ratio sweep** — all prefill:decode splits of 4 replicas vs 4 mixed
   replicas: throughput, TTFT/TPOT tails, migrations and per-role
   utilization.  Mixed wins raw throughput and TTFT; every split wins the
   TPOT tail; utilization shows which ratio the workload actually supports.
2. **Transfer pricing** — the same split over NVLink vs PCIe, with and
   without layer-by-layer overlap of the transfer behind the first decode
   iteration.
3. **SLO view** — goodput under a tight TPOT SLO, where the split's steady
   decode cadence pays off.

Run with:  python examples/disaggregated_serving.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100, NVLINK, PCIE_GEN4
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_router_study_workload,
)

#: Latency SLO: generous TTFT (the split trades TTFT away), tight TPOT.
TTFT_SLO_S, TPOT_SLO_S = 2.5, 0.0045

RATIOS = {
    "mixed x4": ["mixed"] * 4,
    "1 prefill : 3 decode": ["prefill"] + ["decode"] * 3,
    "2 prefill : 2 decode": ["prefill"] * 2 + ["decode"] * 2,
    "3 prefill : 1 decode": ["prefill"] * 3 + ["decode"],
}


def _serve(cluster, workload):
    router = "disaggregated" if cluster.disaggregated else "least-outstanding"
    return cluster.serve(workload.copy_fresh(), router=router, max_num_seqs=6,
                         scheduling=SCHEDULING_PRESETS["chunked"])


def ratio_study(model_name: str) -> dict:
    cfg = get_config(model_name)
    workload = make_router_study_workload()
    results, rows = {}, []
    for name, roles in RATIOS.items():
        cluster = ClusterEngine(cfg, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                                num_replicas=len(roles), max_seq_len=4096,
                                roles=roles)
        result = _serve(cluster, workload)
        results[name] = result
        m = result.metrics
        util = result.role_utilization()
        rows.append([name,
                     round(result.generation_throughput, 1),
                     round(m.ttft.p95 * 1e3, 1),
                     round(m.tpot.p95 * 1e3, 2),
                     round(m.tpot.p99 * 1e3, 2),
                     result.num_migrations,
                     f"{util.get('prefill', util.get('mixed', 0.0)):.2f}",
                     f"{util.get('decode', util.get('mixed', 0.0)):.2f}"])
    print(f"Prefill:decode ratio sweep for {model_name} on 4x A100 "
          f"(QServe W4A8KV4, bursty heavy-tailed traffic):\n")
    print(format_table(
        ["Configuration", "Tok/s", "TTFT p95 (ms)", "TPOT p95 (ms)",
         "TPOT p99 (ms)", "Migrations", "Prefill util", "Decode util"], rows))
    print("\nEvery split beats mixed on the TPOT tail (decode iterations "
          "never share the GPU\nwith prompt chunks); mixed keeps the edge on "
          "TTFT and raw throughput.  Role\nutilization exposes the right "
          "ratio: prefill is the minority of this workload's\ncompute, so a "
          "single prefill replica suffices and 1:3 is the efficient split —\n"
          "every extra prefill replica idles while the decode tier saturates.")
    return results


def transfer_study(model_name: str) -> None:
    cfg = get_config(model_name)
    workload = make_router_study_workload()
    roles = RATIOS["1 prefill : 3 decode"]
    rows = []
    for name, link, overlap in (("NVLink, overlapped", NVLINK, True),
                                ("PCIe Gen4, overlapped", PCIE_GEN4, True),
                                ("PCIe Gen4, no overlap", PCIE_GEN4, False)):
        cluster = ClusterEngine(cfg, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                                num_replicas=len(roles), max_seq_len=4096,
                                roles=roles, transfer_link=link,
                                transfer_overlap=overlap)
        result = _serve(cluster, workload)
        xfer = result.transfer_delay
        rows.append([name,
                     round(xfer.mean * 1e6, 1), round(xfer.p95 * 1e6, 1),
                     round(result.metrics.ttft.p95 * 1e3, 1)])
    print(f"\nKV-transfer pricing (1:3 split, {model_name}): the prompt's KV "
          f"bytes cross the link;\nlayer-by-layer streaming hides them "
          f"behind the first decode iteration:\n")
    print(format_table(
        ["Transfer link", "Delay mean (us)", "Delay p95 (us)",
         "TTFT p95 (ms)"], rows))


def slo_study(results: dict) -> None:
    rows = [[name,
             round(result.metrics.slo_attainment(TTFT_SLO_S, TPOT_SLO_S) * 100, 1),
             round(result.slo_goodput(TTFT_SLO_S, TPOT_SLO_S), 2)]
            for name, result in results.items()]
    print(f"\nSLO view (TTFT < {TTFT_SLO_S:.1f} s, TPOT < "
          f"{TPOT_SLO_S * 1e3:.1f} ms/token):\n")
    print(format_table(["Configuration", "SLO attainment (%)",
                        "Goodput (req/s)"], rows))


def main(model_name: str = "llama-2-7b") -> None:
    results = ratio_study(model_name)
    transfer_study(model_name)
    slo_study(results)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
