"""Tests for the serving simulator: KV manager, scheduler, engine, throughput,
scheduling policies, chunked prefill, preemption, workload generators and
latency metrics."""

import numpy as np
import pytest

from repro.gpu import A100, L40S
from repro.model import get_config
from repro.serving import (
    ContinuousBatchingScheduler,
    LEGACY_SCHEDULING,
    LatencySummary,
    PageAllocationError,
    PagedKVCacheManager,
    Request,
    RequestMetrics,
    RequestState,
    SCHEDULING_PRESETS,
    SchedulingConfig,
    ServingEngine,
    ServingMetrics,
    SYSTEM_PRESETS,
    get_policy,
    get_system,
    make_bursty_workload,
    make_lognormal_workload,
    make_uniform_workload,
    max_achievable_batch,
    max_achievable_throughput,
    measure_throughput,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _manager(model, system="qserve-w4a8kv4-chn", capacity_gib=10.0):
    return PagedKVCacheManager(model=model, system=get_system(system),
                               capacity_bytes=capacity_gib * (1 << 30),
                               page_size=16, max_seq_len=1536)


# ----------------------------------------------------------------------
# KV cache manager
# ----------------------------------------------------------------------
def test_kv_bytes_per_token_scales_with_precision(llama7b):
    kv4 = _manager(llama7b, "qserve-w4a8kv4-chn").bytes_per_token()
    kv8 = _manager(llama7b, "trt-w8a8").bytes_per_token()
    kv16 = _manager(llama7b, "trt-fp16").bytes_per_token()
    assert kv4 < kv8 < kv16
    assert kv16 == pytest.approx(2 * 32 * 32 * 128 * 2)  # 2 * layers * kv_dim * 2B


def test_page_allocation_and_free(llama7b):
    mgr = _manager(llama7b)
    assert mgr.free_pages == mgr.total_pages
    pages = mgr.allocate(0, 100)
    assert pages == mgr.pages_for_tokens(100) == 7
    assert mgr.allocate(0, 100) == 0            # idempotent growth
    assert mgr.allocate(0, 120) == 1            # grow by one page
    assert mgr.used_pages == 8
    assert mgr.free(0) == 8
    assert mgr.used_pages == 0


def test_page_allocation_error_when_full(llama7b):
    mgr = _manager(llama7b, capacity_gib=0.001)
    with pytest.raises(PageAllocationError):
        mgr.allocate(0, 10_000)


def test_non_paged_system_reserves_max_seq(llama7b):
    paged = _manager(llama7b, "qserve-w4a8kv4-chn")
    non_paged = _manager(llama7b, "quarot-w4a4")
    assert non_paged.pages_for_tokens(10) == non_paged.pages_for_tokens(1000)
    assert paged.pages_for_tokens(10) < paged.pages_for_tokens(1000)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def test_scheduler_admission_and_completion(llama7b):
    mgr = _manager(llama7b, capacity_gib=4.0)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=4)
    requests = [Request(request_id=i, prompt_len=64, output_len=4) for i in range(6)]
    sched.submit(requests)
    admitted = sched.admit(now=0.0)
    assert len(admitted) == 4                    # capped by max_num_seqs
    sched.complete_prefill(now=1.0)
    for step in range(4):
        sched.record_decode_step(now=2.0 + step)
    assert len(sched.finished) == 4
    assert mgr.used_pages == 0 or len(sched.running) == 0
    # The remaining two requests can now be admitted.
    admitted = sched.admit(now=10.0)
    assert len(admitted) == 2


def test_scheduler_respects_arrival_times(llama7b):
    mgr = _manager(llama7b)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8)
    sched.submit([Request(request_id=0, prompt_len=8, output_len=1, arrival_time=5.0)])
    assert sched.admit(now=0.0) == []
    assert len(sched.admit(now=6.0)) == 1


# ----------------------------------------------------------------------
# Engine and throughput
# ----------------------------------------------------------------------
def test_decode_step_breakdown_attention_grows_with_batch(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    small = engine.decode_step(1, 1024)
    large = engine.decode_step(64, 1024)
    assert large.total > small.total
    assert large.fraction("attention") > small.fraction("attention")
    assert large.fraction("attention") > 0.5   # Figure 2a: >50% at batch 64


def test_prefill_latency_scales_with_tokens(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    assert engine.prefill(4, 1024).total > engine.prefill(1, 1024).total


def test_serving_loop_generates_all_tokens(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=160)
    workload = make_uniform_workload(4, prompt_len=128, output_len=32)
    result = engine.serve(workload, max_num_seqs=4)
    assert result.generated_tokens == 4 * 32
    assert result.peak_batch == 4
    assert result.generation_throughput > 0


def test_max_batch_ordering_across_systems(llama7b):
    batches = {name: max_achievable_batch(llama7b, A100, SYSTEM_PRESETS[name])
               for name in ("trt-fp16", "trt-w8a8", "qserve-w4a8kv4-chn")}
    assert batches["trt-fp16"] < batches["trt-w8a8"] < batches["qserve-w4a8kv4-chn"]


def test_fp16_oom_for_70b_on_both_gpus():
    cfg = get_config("llama-2-70b")
    assert max_achievable_batch(cfg, A100, SYSTEM_PRESETS["trt-fp16"]) == 0
    assert max_achievable_batch(cfg, L40S, SYSTEM_PRESETS["trt-fp16"]) == 0
    assert max_achievable_throughput(cfg, L40S, SYSTEM_PRESETS["trt-fp16"]).tokens_per_second == 0
    # QServe still serves the 70B model on the 48 GB L40S.
    assert max_achievable_batch(cfg, L40S, SYSTEM_PRESETS["qserve-w4a8kv4-chn"]) > 0


def test_qserve_beats_best_trt_throughput(llama7b):
    best_trt = max(
        max_achievable_throughput(llama7b, gpu, SYSTEM_PRESETS[name]).tokens_per_second
        for gpu in (A100,) for name in ("trt-fp16", "trt-w4a16", "trt-w8a8"))
    qserve = max_achievable_throughput(
        llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"]).tokens_per_second
    assert qserve > best_trt * 1.1


def test_w4a4_systems_slower_than_trt_w8a8(llama7b):
    w8a8 = max_achievable_throughput(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    for name in ("atom-w4a4", "quarot-w4a4"):
        result = max_achievable_throughput(llama7b, A100, SYSTEM_PRESETS[name])
        assert result.tokens_per_second < w8a8.tokens_per_second


def test_measure_throughput_validation(llama7b):
    with pytest.raises(ValueError):
        measure_throughput(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"], batch=0)
    with pytest.raises(KeyError):
        get_system("nonexistent")
    with pytest.raises(KeyError):
        get_policy("nonexistent")


# ----------------------------------------------------------------------
# Scheduling policies
# ----------------------------------------------------------------------
def test_legacy_preset_matches_default(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=160)
    workload = make_uniform_workload(6, prompt_len=128, output_len=16,
                                     arrival_rate=200.0, seed=3)
    default = engine.serve(workload.copy_fresh(), max_num_seqs=4)
    explicit = engine.serve(workload.copy_fresh(), max_num_seqs=4,
                            scheduling=LEGACY_SCHEDULING)
    assert default.total_time_s == explicit.total_time_s
    assert default.generated_tokens == explicit.generated_tokens
    assert default.num_iterations == explicit.num_iterations


def test_fcfs_bypass_vs_strict_fcfs(llama7b):
    # Capacity fits the small request but not the big one: plain FCFS lets
    # the small request overtake; strict-FCFS admits nothing.
    big = Request(request_id=0, prompt_len=1200, output_len=200)
    small = Request(request_id=1, prompt_len=32, output_len=8)
    for policy_name, expected in (("fcfs", [1]), ("strict-fcfs", [])):
        mgr = _manager(llama7b, capacity_gib=0.02)
        assert mgr.pages_for_tokens(1400) > mgr.total_pages
        assert mgr.pages_for_tokens(40) <= mgr.total_pages
        sched = ContinuousBatchingScheduler(
            kv_manager=mgr, max_num_seqs=8, policy=get_policy(policy_name))
        sched.submit([big.copy_fresh(), small.copy_fresh()])
        admitted = sched.admit(now=0.0)
        assert [r.request_id for r in admitted] == expected


def test_sjf_admits_short_jobs_first(llama7b):
    mgr = _manager(llama7b, capacity_gib=4.0)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=2,
                                        policy=get_policy("sjf"))
    long_req = Request(request_id=0, prompt_len=512, output_len=256)
    short_req = Request(request_id=1, prompt_len=32, output_len=8)
    mid_req = Request(request_id=2, prompt_len=128, output_len=64)
    sched.submit([long_req, short_req, mid_req])
    admitted = sched.admit(now=0.0)
    assert [r.request_id for r in admitted] == [1, 2]  # shortest two of three


# ----------------------------------------------------------------------
# Chunked prefill
# ----------------------------------------------------------------------
def test_mixed_step_reduces_to_decode_step(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    mixed = engine.mixed_step([], decode_batch=16, decode_context=1024)
    plain = engine.decode_step(16, 1024)
    assert mixed.total == plain.total


def test_mixed_step_chunk_cost_grows_with_context(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["trt-w8a8"])
    early = engine.mixed_step([(256, 0)], decode_batch=8, decode_context=512)
    late = engine.mixed_step([(256, 768)], decode_batch=8, decode_context=512)
    assert late.attention > early.attention


def test_chunked_prefill_serves_all_tokens(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=160)
    workload = make_uniform_workload(6, prompt_len=128, output_len=32)
    result = engine.serve(workload, max_num_seqs=6,
                          scheduling=SCHEDULING_PRESETS["chunked"])
    assert result.generated_tokens == 6 * 32
    assert result.num_finished == 6
    assert result.num_preemptions == 0


def test_chunked_prefill_improves_ttft_under_load(llama7b):
    """Acceptance: at a Poisson load, chunked prefill cuts mean TTFT while
    generation throughput stays within 5% of the stall-prefill loop."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    workload = make_uniform_workload(64, prompt_len=1024, output_len=512,
                                     arrival_rate=48.0, seed=1)
    legacy = engine.serve(workload.copy_fresh(), max_num_seqs=64)
    chunked = engine.serve(
        workload.copy_fresh(), max_num_seqs=64,
        scheduling=SchedulingConfig(chunked_prefill=True,
                                    prefill_chunk_size=1024))
    assert chunked.metrics.ttft.mean < legacy.metrics.ttft.mean
    assert chunked.metrics.ttft.p95 < legacy.metrics.ttft.p95
    ratio = chunked.generation_throughput / legacy.generation_throughput
    assert ratio > 0.95


def test_chunked_prefill_latency_accounting(llama7b):
    """A chunked prompt's prefill spans several iterations whose combined
    chunk tokens equal the prompt; TTFT lands after prefill completion."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=640)
    workload = make_uniform_workload(2, prompt_len=512, output_len=8)
    result = engine.serve(workload, max_num_seqs=2,
                          scheduling=SchedulingConfig(chunked_prefill=True,
                                                      prefill_chunk_size=128))
    # 2 * 512 prompt tokens at <=128 tokens/iteration => >= 8 prefill iterations
    # plus 8 decode iterations.
    assert result.num_iterations >= 16
    for request in workload.requests:
        assert request.prefill_done_time is not None
        assert request.first_token_time is not None
        assert request.first_token_time > request.prefill_done_time - 1e-12
        assert request.prefilled == request.prefill_target == 512


# ----------------------------------------------------------------------
# Preemption
# ----------------------------------------------------------------------
def test_preemption_recompute_in_scheduler(llama7b):
    mgr = _manager(llama7b, capacity_gib=0.02)  # 9 pages = 144 tokens
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8,
                                        policy=get_policy("fcfs"),
                                        preemption=True)
    a = Request(request_id=0, prompt_len=48, output_len=64)
    b = Request(request_id=1, prompt_len=48, output_len=64, arrival_time=0.1)
    sched.submit([a, b])
    assert len(sched.admit(now=0.5)) == 2  # optimistic: both fit their prompts
    sched.complete_prefill(now=1.0)
    # Decode until the cache fills; the later-arrived request gets preempted.
    for step in range(80):
        batch = sched.prepare_decode()
        if not batch:
            break
        sched.record_decode_step(now=2.0 + step)
        if sched.num_preemptions:
            break
    assert sched.num_preemptions >= 1
    assert b.state is RequestState.PREEMPTED
    assert b in sched.waiting
    assert mgr.allocated_tokens_capacity(b.request_id) == 0  # pages reclaimed
    generated_before = b.generated
    assert generated_before > 0
    # While queued, the remaining work already reflects the recompute cost.
    assert b.prefill_remaining == b.prompt_len + generated_before
    # Readmission re-prefills prompt + generated tokens (recompute).
    sched.running.clear()  # simulate request a finishing
    mgr.free(a.request_id)
    assert len(sched.admit(now=100.0)) == 1
    assert b.state is RequestState.PREFILLING
    assert b.prefill_target == b.prompt_len + generated_before
    assert sched.recomputed_prefill_tokens == b.prefill_target


def test_preemption_under_page_pressure_end_to_end(llama7b, monkeypatch):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 0.9 * (1 << 30))
    workload = make_uniform_workload(12, prompt_len=1024, output_len=512)
    result = engine.serve(workload,
                          scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert result.num_finished == 12
    assert result.generated_tokens == 12 * 512
    assert result.num_preemptions > 0
    assert result.recomputed_prefill_tokens > 0
    assert result.metrics.total_preemptions == result.num_preemptions


def test_optimistic_admission_beats_conservative_batch(llama7b, monkeypatch):
    """Optimistic admission packs more concurrent requests than reserving
    prompt+output up front, so early decode batches are larger."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 2.0 * (1 << 30))
    workload = make_uniform_workload(16, prompt_len=1024, output_len=512)
    conservative = engine.serve(workload.copy_fresh())
    optimistic = engine.serve(workload.copy_fresh(),
                              scheduling=SchedulingConfig(preemption=True))
    assert optimistic.peak_batch > conservative.peak_batch
    assert optimistic.num_finished == conservative.num_finished == 16


def test_stall_prefill_with_preemption_survives_admit_eviction(llama7b, monkeypatch):
    """A request admitted and then immediately preempted (as the lowest
    priority victim of a decode-growth claim) must simply drop out of the
    iteration plan, not crash the stall-prefill path."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=256)
    pages5 = 5 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages5)
    # req0 (3 prompt pages, final footprint exactly 5 pages) decodes while
    # req1 arrives just after admission and takes the last 2 pages; req0's
    # first page-boundary crossing then preempts the freshly admitted req1.
    from repro.serving import Workload
    req0 = Request(request_id=0, prompt_len=48, output_len=32)
    req1 = Request(request_id=1, prompt_len=32, output_len=16,
                   arrival_time=1e-9)
    result = engine.serve(Workload(requests=[req0, req1]),
                          scheduling=SchedulingConfig(preemption=True))
    assert result.num_preemptions >= 1
    assert result.num_finished == 2
    assert result.generated_tokens == 32 + 16


def test_optimistic_admission_refuses_never_fitting_request(llama7b, monkeypatch):
    """Under preemption, a request whose final footprint exceeds the whole
    cache is never admitted (reported unserved) instead of crashing
    mid-decode with an allocation failure."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=256)
    pages5 = 5 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages5)
    from repro.serving import Workload
    too_big = Request(request_id=0, prompt_len=48, output_len=64)  # 7 pages
    ok = Request(request_id=1, prompt_len=32, output_len=16)       # 3 pages
    result = engine.serve(Workload(requests=[too_big, ok]),
                          scheduling=SchedulingConfig(preemption=True))
    assert result.num_unserved == 1
    assert result.num_finished == 1
    assert result.generated_tokens == 16
    assert too_big.state is RequestState.WAITING


def test_unservable_request_terminates_and_prompt_tokens_fix(llama7b, monkeypatch):
    """A request that can never be admitted must not hang the loop nor be
    counted in ``prompt_tokens`` (only prefilled prompts count)."""
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 0.05 * (1 << 30))
    from repro.serving import Workload
    requests = [Request(request_id=0, prompt_len=1024, output_len=512),
                Request(request_id=1, prompt_len=64, output_len=16),
                Request(request_id=2, prompt_len=64, output_len=16)]
    workload = Workload(requests=requests)
    result = engine.serve(workload)
    assert result.num_unserved == 1
    assert result.num_finished == 2
    assert result.prompt_tokens == 2 * 64  # not workload.total_prompt_tokens
    assert requests[0].state is RequestState.WAITING


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def test_poisson_arrivals_are_monotonic_and_seeded():
    wl1 = make_uniform_workload(50, arrival_rate=10.0, seed=7)
    wl2 = make_uniform_workload(50, arrival_rate=10.0, seed=7)
    arrivals = [r.arrival_time for r in wl1.requests]
    assert arrivals == sorted(arrivals)
    assert arrivals[-1] > 0
    assert arrivals == [r.arrival_time for r in wl2.requests]


def test_lognormal_workload_shape():
    wl = make_lognormal_workload(500, seed=11)
    prompts = np.array([r.prompt_len for r in wl.requests])
    outputs = np.array([r.output_len for r in wl.requests])
    assert prompts.min() >= 4 and prompts.max() <= 3072
    assert outputs.min() >= 4 and outputs.max() <= 1024
    # Heavy right tail: mean well above median.
    assert prompts.mean() > np.median(prompts)
    assert len(set(prompts.tolist())) > 50  # genuinely mixed lengths


def test_bursty_workload_structure():
    wl = make_bursty_workload(200, burst_rate=20.0, mean_burst_s=2.0,
                              mean_idle_s=10.0, seed=5)
    arrivals = np.array([r.arrival_time for r in wl.requests])
    assert len(arrivals) == 200
    assert (np.diff(arrivals) >= 0).all()
    gaps = np.diff(arrivals)
    # On/off traffic: some gaps are idle periods far above the in-burst mean.
    assert gaps.max() > 10 * gaps.mean()
    # Burstier than Poisson: squared coefficient of variation well above 1.
    cv2 = gaps.var() / gaps.mean() ** 2
    assert cv2 > 2.0


def test_bursty_workload_serves_with_preemption(llama7b, monkeypatch):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                           max_seq_len=1536)
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: 2.0 * (1 << 30))
    workload = make_bursty_workload(24, burst_rate=60.0, mean_burst_s=1.0,
                                    mean_idle_s=4.0, prompt_len=1024,
                                    output_len=256, seed=2)
    result = engine.serve(workload,
                          scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert result.num_finished == 24
    assert result.generated_tokens == 24 * 256
    assert len(result.metrics) == 24


def test_workload_copy_fresh_is_independent():
    wl = make_uniform_workload(3, prompt_len=16, output_len=4)
    copy = wl.copy_fresh()
    wl.requests[0].generated = 2
    wl.requests[0].state = RequestState.DECODING
    assert copy.requests[0].generated == 0
    assert copy.requests[0].state is RequestState.WAITING


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_latency_summary_percentiles():
    values = list(range(1, 101))  # 1..100
    summary = LatencySummary.from_values(values)
    assert summary.mean == pytest.approx(50.5)
    assert summary.p50 == pytest.approx(np.percentile(values, 50))
    assert summary.p95 == pytest.approx(np.percentile(values, 95))
    assert summary.p99 == pytest.approx(np.percentile(values, 99))
    assert summary.maximum == 100
    empty = LatencySummary.from_values([])
    assert empty.mean == empty.p99 == 0.0


def test_request_metrics_math():
    m = RequestMetrics(request_id=0, prompt_len=100, output_len=11,
                       arrival_time=1.0, first_token_time=3.0, finish_time=8.0)
    assert m.ttft == pytest.approx(2.0)
    assert m.e2e_latency == pytest.approx(7.0)
    assert m.tpot == pytest.approx(0.5)  # (8-3)/(11-1)
    one_token = RequestMetrics(request_id=1, prompt_len=10, output_len=1,
                               arrival_time=0.0, first_token_time=1.0,
                               finish_time=1.0)
    assert one_token.tpot == 0.0


def test_slo_attainment_and_goodput():
    metrics = ServingMetrics(requests=[
        RequestMetrics(0, 10, 11, 0.0, 0.5, 2.0),   # ttft 0.5, tpot 0.15
        RequestMetrics(1, 10, 11, 0.0, 2.0, 12.0),  # ttft 2.0, tpot 1.0
    ])
    assert metrics.slo_attainment(ttft_slo_s=1.0, tpot_slo_s=0.2) == 0.5
    assert metrics.slo_attainment(ttft_slo_s=3.0, tpot_slo_s=2.0) == 1.0
    assert metrics.slo_goodput(1.0, 0.2, total_time_s=10.0) == pytest.approx(0.1)
    assert ServingMetrics().slo_attainment(1.0, 1.0) == 0.0


def test_serving_result_exposes_latency_percentiles(llama7b):
    result = measure_throughput(llama7b, A100,
                                SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                                batch=8, prompt_len=128, output_len=16).serving
    metrics = result.metrics
    assert metrics is not None and len(metrics) == 8
    for summary in (metrics.ttft, metrics.tpot, metrics.e2e):
        assert summary.p50 > 0
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
    # All requests arrive at t=0 and admit in the first iteration.
    assert metrics.queue_delay.maximum == 0.0
    assert all(r.queue_delay >= 0 for r in metrics.requests)
