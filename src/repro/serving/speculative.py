"""Speculative decoding: draft proposals, batched verification, acceptance.

Decode iterations are memory-bound — each one reads every weight byte to
produce a single token per sequence — so the serialized iteration count, not
FLOPs, bounds decode latency.  Speculative decoding (Leviathan et al.,
SpecInfer, vLLM/TensorRT-LLM speculative modes) attacks exactly that: a
cheap *draft* model proposes ``k`` tokens autoregressively, and the target
model scores all ``k + 1`` positions in one batched *verification* step.
Accepted draft tokens commit together with the target's own next token
(the "bonus" token a rejection falls back to), so one target iteration can
commit up to ``k + 1`` tokens — trading extra, largely-free FLOPs for fewer
serialized iterations.

This module models the technique from first principles through the existing
GPU cost model, never by fiat:

* **Draft cost** — the draft is any :class:`~repro.model.config.ModelConfig`
  served under any precision preset; its ``k`` proposal steps are priced as
  ``k`` real decode iterations of a (single-GPU, replicated) draft engine,
  and the draft's shadow KV cache is built lazily at real prefill cost — a
  request's first speculative iteration pays a draft prefill of its whole
  context, a preempted request pays a full rebuild (its shadow KV was
  reclaimed with the target's), and steady state pays one catch-up token
  per block (the target-produced bonus token).
* **Verification cost** — the target scores the drafted block via
  :meth:`repro.serving.engine.ServingEngine.speculative_verify_step`, which
  reuses the chunked-prefill GEMM/attention path (each draft block is a
  ``(k + 1, context)`` chunk) and charges the LM head for *every* verified
  position.
* **Acceptance** — whether a drafted token survives verification depends on
  how predictable the traffic is, not on the cost model, so it is sampled:
  per-request seeded RNG streams draw from a workload
  :class:`AcceptanceProfile` (chat vs. code vs. low-entropy presets, with
  per-request rate jitter and positional decay).  Explicit seeding makes
  every serving run bit-for-bit reproducible.
* **Memory** — the draft's weights (+ workspace) are replicated on every
  GPU of the tensor-parallel group and its KV cache grows with the same
  sequences the target tracks, so both come out of the target's KV budget
  (:meth:`SpeculativeDecoder.usable_kv_capacity`).  Pages for drafted
  tokens are claimed optimistically before the iteration and trimmed back
  after verification rejects them
  (:meth:`repro.serving.kv_cache_manager.PagedKVCacheManager.trim`).

The *acceptance-aware* part of scheduling: with ``adaptive=True`` the
per-request lookahead grows on fully-accepted blocks and collapses on full
rejections, so a request whose draft keeps missing stops paying draft steps
— and stops claiming speculative KV pages — while a predictable one
speculates deeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.model.config import ModelConfig
from repro.serving.precision import SystemConfig, get_system
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.engine import ServingEngine
    from repro.serving.policies import IterationPlan

__all__ = [
    "AcceptanceProfile",
    "ACCEPTANCE_PROFILES",
    "get_acceptance_profile",
    "AcceptanceSampler",
    "SpeculativeConfig",
    "SpeculationStats",
    "SpeculativeStepOutcome",
    "SpeculativeDecoder",
]


# ----------------------------------------------------------------------
# Acceptance model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AcceptanceProfile:
    """How often a workload's drafted tokens survive verification.

    ``base_rate`` is the probability the first drafted token is accepted;
    position ``j`` of the draft accepts with ``base_rate * position_decay**j``
    (conditional on every earlier position accepting — verification stops at
    the first rejection), modelling drafts drifting off-distribution the
    further they run ahead.  ``rate_jitter`` spreads a per-request base rate
    around the profile's (clipped normal), so a workload mixes easy and hard
    requests instead of behaving uniformly.
    """

    name: str
    base_rate: float
    position_decay: float = 1.0
    rate_jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_rate < 1.0:
            raise ValueError("base_rate must be in (0, 1)")
        if not 0.0 < self.position_decay <= 1.0:
            raise ValueError("position_decay must be in (0, 1]")
        if self.rate_jitter < 0.0:
            raise ValueError("rate_jitter must be non-negative")


#: Workload presets: how draft-able each traffic class is.  Code and other
#: low-entropy text (boilerplate, structured output) verify far more drafted
#: tokens than open-ended chat; creative/high-entropy sampling accepts least.
ACCEPTANCE_PROFILES: Dict[str, AcceptanceProfile] = {
    "chat": AcceptanceProfile("chat", base_rate=0.70, position_decay=0.97,
                              rate_jitter=0.08),
    "code": AcceptanceProfile("code", base_rate=0.85, position_decay=0.985,
                              rate_jitter=0.05),
    "low-entropy": AcceptanceProfile("low-entropy", base_rate=0.92,
                                     position_decay=0.995, rate_jitter=0.03),
    "high-entropy": AcceptanceProfile("high-entropy", base_rate=0.45,
                                      position_decay=0.93, rate_jitter=0.10),
}


def get_acceptance_profile(name: str) -> AcceptanceProfile:
    """Look up an acceptance profile preset by name."""
    try:
        return ACCEPTANCE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(ACCEPTANCE_PROFILES))
        raise KeyError(
            f"unknown acceptance profile {name!r}; known: {known}") from None


class AcceptanceSampler:
    """Per-request seeded stochastic acceptance of drafted tokens.

    Each request owns an independent RNG stream keyed by ``(seed,
    request_id)``, so a request's acceptance draws depend only on its own
    verification history — never on how the scheduler interleaved it with
    other requests.  Two runs with the same seed and workload therefore
    sample identically even across preemptions and replica reassignment.
    """

    def __init__(self, profile: AcceptanceProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._streams: Dict[int, Tuple[np.random.Generator, float]] = {}

    def request_rate(self, request_id: int) -> float:
        """The per-request base acceptance rate (jittered, deterministic)."""
        return self._stream(request_id)[1]

    def _stream(self, request_id: int) -> Tuple[np.random.Generator, float]:
        state = self._streams.get(request_id)
        if state is None:
            rng = np.random.default_rng((self.seed, request_id))
            rate = self.profile.base_rate
            if self.profile.rate_jitter > 0.0:
                rate = float(np.clip(rng.normal(rate, self.profile.rate_jitter),
                                     0.02, 0.98))
            state = (rng, rate)
            self._streams[request_id] = state
        return state

    def sample(self, request_id: int, k: int) -> int:
        """Leading accepted tokens of a ``k``-token draft (``0..k``).

        Position ``j`` accepts with ``rate * decay**j``; the first rejection
        ends verification (everything after a rejected token was drafted
        from a wrong prefix and is discarded).
        """
        if k <= 0:
            return 0
        rng, rate = self._stream(request_id)
        accepted = 0
        for j in range(k):
            if rng.random() >= rate * self.profile.position_decay ** j:
                break
            accepted += 1
        return accepted


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeculativeConfig:
    """One speculative-decoding configuration.

    Attributes
    ----------
    draft_model:
        Geometry of the draft; any registered :class:`ModelConfig` (the
        ``llama-68m`` / ``llama-160m`` / ``tinyllama-1.1b`` presets are the
        usual suspects for Llama-family targets).
    draft_system:
        Precision preset the draft is served under — a key into
        :data:`repro.serving.precision.SYSTEM_PRESETS` or a
        :class:`SystemConfig`.  Aggressively quantized drafts are the point:
        their decode steps are weight-traffic-bound too.
    lookahead:
        Draft tokens proposed per speculative iteration (``k``).  Per
        request it is always clamped to ``output_len - generated - 1`` so a
        committed block can never overshoot the requested output.
    adaptive:
        When true, each request's lookahead adapts to its observed
        acceptance — +1 after a fully accepted block, halved after a full
        rejection, bounded to ``[min_lookahead, max_lookahead]``.
    profile:
        Workload acceptance profile (preset name or
        :class:`AcceptanceProfile`).
    seed:
        Seed of the acceptance sampler's per-request RNG streams.
    """

    draft_model: ModelConfig
    draft_system: Union[str, SystemConfig] = "qserve-w4a8kv4-chn"
    lookahead: int = 4
    adaptive: bool = False
    min_lookahead: int = 1
    max_lookahead: int = 8
    profile: Union[str, AcceptanceProfile] = "chat"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if not 1 <= self.min_lookahead <= self.max_lookahead:
            raise ValueError("need 1 <= min_lookahead <= max_lookahead")
        if not self.min_lookahead <= self.lookahead <= self.max_lookahead:
            raise ValueError("lookahead must lie in "
                             "[min_lookahead, max_lookahead]")

    def resolved_system(self) -> SystemConfig:
        if isinstance(self.draft_system, SystemConfig):
            return self.draft_system
        return get_system(self.draft_system)

    def resolved_profile(self) -> AcceptanceProfile:
        if isinstance(self.profile, AcceptanceProfile):
            return self.profile
        return get_acceptance_profile(self.profile)


# ----------------------------------------------------------------------
# Run statistics
# ----------------------------------------------------------------------
@dataclass
class SpeculationStats:
    """Counters of one serving run's speculative-decoding behaviour.

    ``committed_tokens`` counts every token committed by speculative
    iterations, including each block's bonus token; requests that a given
    iteration served non-speculatively (one token left) contribute to
    ``committed_tokens`` but not to ``proposed`` / ``accepted``.
    ``baseline_time_s`` / ``spec_time_s`` accumulate, for pure-decode
    iterations only, the time the same token progress would have cost as
    plain one-token decode steps vs. what speculation actually charged — the
    ratio is the run's estimated speculation speedup.
    """

    spec_steps: int = 0
    proposed_tokens: int = 0
    accepted_tokens: int = 0
    committed_tokens: int = 0
    draft_time_s: float = 0.0
    verify_time_s: float = 0.0
    spec_time_s: float = 0.0
    baseline_time_s: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens that survived verification."""
        return (0.0 if self.proposed_tokens == 0
                else self.accepted_tokens / self.proposed_tokens)

    @property
    def mean_accepted_per_step(self) -> float:
        """Mean accepted draft tokens per speculative iteration."""
        return (0.0 if self.spec_steps == 0
                else self.accepted_tokens / self.spec_steps)

    @property
    def mean_committed_per_request_step(self) -> float:
        """Mean committed tokens per *speculating* request per iteration.

        A speculating request always commits ``accepted + 1`` (the bonus
        token), so the mean is derived from those counters alone — plain
        one-token riders inflate ``committed_tokens`` but not this gauge.
        """
        return (0.0 if self.spec_steps == 0
                else (self.accepted_tokens + self.spec_steps) / self.spec_steps)

    @property
    def speedup(self) -> float:
        """Estimated decode speedup vs. one-token-per-iteration serving.

        Ratio of the baseline-equivalent decode time to the speculative time
        actually charged, over pure-decode iterations; 0 when speculation
        never ran a pure-decode iteration.
        """
        return (0.0 if self.spec_time_s == 0.0
                else self.baseline_time_s / self.spec_time_s)


@dataclass
class SpeculativeStepOutcome:
    """What one speculative iteration committed and what it cost."""

    #: Committed tokens per decoding request (accepted drafts + the bonus
    #: token; always >= 1 for every participant).
    commits: Dict[int, int]
    committed_tokens: int
    latency_s: float


# ----------------------------------------------------------------------
# Decoder runtime
# ----------------------------------------------------------------------
class SpeculativeDecoder:
    """Runtime speculative-decoding state of one serving loop.

    Owns the draft engine (built on the target's GPU, single-GPU — drafts
    are far too small to shard, so tensor-parallel targets replicate the
    draft on every GPU of the group), the acceptance sampler and the
    per-request adaptive lookahead; prices and commits one speculative
    iteration per :meth:`run_iteration`.
    """

    def __init__(self, target: "ServingEngine", config: SpeculativeConfig) -> None:
        self.config = config
        self.target = target
        draft_system = config.resolved_system()
        # ``type(target)`` avoids a module cycle: engine.py imports this
        # module for the config/stats types, so the draft engine is built
        # through the target's own class.
        self.draft_engine: "ServingEngine" = type(target)(
            config.draft_model, target.gpu, draft_system,
            max_seq_len=target.max_seq_len)
        self.sampler = AcceptanceSampler(config.resolved_profile(), config.seed)
        self.stats = SpeculationStats()
        self._lookahead_state: Dict[int, int] = {}
        #: Draft-KV tokens built per request, with the preemption count they
        #: were built under: ``(tokens, preemptions)``.  A preemption reclaims
        #: the draft's shadow KV with everything else, so a stale count means
        #: the whole context must be re-prefilled on the draft too.
        self._draft_context: Dict[int, Tuple[int, int]] = {}
        self._target_bpt = target.kv_bytes_per_token()
        self._draft_bpt = self.draft_engine.kv_bytes_per_token()

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def draft_reserved_bytes_per_gpu(self) -> float:
        """Draft weights + activation workspace resident on *every* GPU."""
        weights = self.draft_engine.weight_bytes()
        return weights * (1.0 + self.draft_engine.system.activation_workspace_factor)

    def usable_kv_capacity(self, base_capacity_bytes: float) -> float:
        """Target-KV bytes left once the draft model moves in.

        The draft's weights (+ workspace) are replicated per GPU and its KV
        cache shadows every running sequence's context — on *every* GPU of
        the TP group, since the draft is replicated rather than sharded —
        so the remaining bytes are split pro rata between the target's
        (group-aggregate) and the draft's (per-GPU times ``tp``) per-token
        KV footprints; the target's page pool only gets its share.
        """
        tp = self.target.tp_degree
        reserved = self.draft_reserved_bytes_per_gpu() * tp
        remaining = max(0.0, base_capacity_bytes - reserved)
        draft_bpt = self._draft_bpt * tp
        return remaining * self._target_bpt / (self._target_bpt + draft_bpt)

    # ------------------------------------------------------------------
    # Lookahead (acceptance-aware)
    # ------------------------------------------------------------------
    def lookahead_for(self, request: Request) -> int:
        """Draft tokens to propose for ``request`` this iteration.

        The adaptive (or static) lookahead, clamped so that the largest
        possible commit (``k`` accepts + the bonus token) lands exactly on
        ``output_len`` — speculation never drafts past the requested output,
        which also keeps the speculative page claim inside the conservative
        ``prompt_len + output_len`` reservation.  Requests one token from
        completion get 0: they decode plainly inside the same iteration.
        """
        base = self.config.lookahead
        if self.config.adaptive:
            base = self._lookahead_state.get(request.request_id, base)
        return max(0, min(base, request.output_len - request.generated - 1))

    def _update_lookahead(self, request: Request, k: int, accepted: int) -> None:
        if not self.config.adaptive:
            return
        current = self._lookahead_state.get(request.request_id,
                                            self.config.lookahead)
        if accepted >= k:
            current = min(self.config.max_lookahead, current + 1)
        elif accepted == 0:
            current = max(self.config.min_lookahead, current // 2)
        self._lookahead_state[request.request_id] = current

    # ------------------------------------------------------------------
    # One speculative iteration
    # ------------------------------------------------------------------
    def _draft_catchup_latency(self, speculating: List[Request]) -> float:
        """Cost of bringing the draft's KV cache up to each request's context.

        The draft shadows the target's sequences but builds its KV lazily:
        a request's first speculative iteration pays a draft prefill of its
        whole context (the draft never saw the prompt — on a decode replica
        it arrived via KV transfer, and draft KV does not transfer), and a
        preempted request pays a full rebuild on its next speculation, just
        as the target pays its recompute prefill.  Deficits are priced as
        draft chunked-prefill chunks attending to the tokens already built.
        """
        chunks: List[Tuple[int, int]] = []
        for request in speculating:
            built, preemptions = self._draft_context.get(
                request.request_id, (0, request.preemptions))
            if preemptions != request.preemptions:
                built = 0  # the draft's shadow KV was reclaimed too
            deficit = request.context_len - built
            if deficit > 0:
                chunks.append((deficit, built))
        if not chunks:
            return 0.0
        return self.draft_engine.mixed_step(chunks, 0, 0).total

    def _draft_latency(self, lookaheads: List[Tuple[Request, int]]) -> float:
        """Cost of proposing every request's draft block.

        The draft decodes autoregressively: sub-step ``j`` batches all
        requests still drafting (``k > j``) at their current draft context
        (the target's context plus the ``j`` tokens drafted so far), each
        sub-step a full decode iteration of the draft engine.
        """
        total = self._draft_catchup_latency([r for r, _ in lookaheads])
        max_k = max((k for _, k in lookaheads), default=0)
        for j in range(max_k):
            batch = [r for r, k in lookaheads if k > j]
            context = int(sum(r.context_len for r in batch) / len(batch)) + j
            total += self.draft_engine.decode_step(len(batch), context).total
        return total

    def run_iteration(self, decode: List[Request],
                      prefill_chunks: List[Tuple[int, int]]
                      ) -> SpeculativeStepOutcome:
        """Price and commit one speculative iteration for ``decode``.

        Requests with lookahead 0 (a single token remaining) ride the same
        iteration as plain decodes; everyone else drafts ``k`` tokens,
        verifies ``k + 1`` positions in the batched target step and commits
        the accepted prefix plus the bonus token.  ``prefill_chunks`` is the
        plan's chunked-prefill work as ``(tokens, kv_offset)`` pairs
        (:meth:`repro.serving.policies.IterationPlan.chunk_pairs`); it
        shares the verification step's projection GEMMs, exactly as it
        shares a plain mixed iteration's.
        """
        lookaheads = [(r, self.lookahead_for(r)) for r in decode]
        spec = [(r, k) for r, k in lookaheads if k > 0]
        plain = [r for r, k in lookaheads if k == 0]

        draft_s = self._draft_latency(spec)
        verify_chunks = [(k + 1, r.context_len) for r, k in spec]
        chunk_pairs = list(prefill_chunks)
        plain_context = 0
        if plain:
            plain_context = int(sum(r.context_len for r in plain) / len(plain))
        if verify_chunks:
            verify_s = self.target.speculative_verify_step(
                verify_chunks, chunk_pairs, len(plain), plain_context).total
        else:
            # Every decode request is one token from done: nothing to draft,
            # the iteration is a plain (possibly mixed) decode step.
            verify_s = self.target.mixed_step(chunk_pairs, len(plain),
                                              plain_context).total
        latency = draft_s + verify_s

        commits: Dict[int, int] = {}
        committed_total = 0
        for request, k in lookaheads:
            if k == 0:
                committed = 1
            else:
                accepted = self.sampler.sample(request.request_id, k)
                committed = accepted + 1
                request.spec_steps += 1
                request.draft_proposed += k
                request.draft_accepted += accepted
                self.stats.spec_steps += 1
                self.stats.proposed_tokens += k
                self.stats.accepted_tokens += accepted
                self._update_lookahead(request, k, accepted)
                # The draft keeps KV only for the accepted prefix; the bonus
                # token (target-produced) is ingested by the next catch-up.
                self._draft_context[request.request_id] = (
                    request.context_len + accepted, request.preemptions)
            commits[request.request_id] = committed
            committed_total += committed

        self.stats.committed_tokens += committed_total
        self.stats.draft_time_s += draft_s
        self.stats.verify_time_s += verify_s
        if not prefill_chunks:
            # Speedup gauge over pure-decode iterations only: with prefill
            # chunks sharing the step there is no clean baseline to compare
            # against (the chunks would run once, not once per committed
            # token).
            context = int(sum(r.context_len for r in decode) / len(decode))
            baseline_iter = self.target.decode_step(len(decode), context).total
            self.stats.baseline_time_s += \
                baseline_iter * committed_total / len(decode)
            self.stats.spec_time_s += latency
        return SpeculativeStepOutcome(commits=commits,
                                      committed_tokens=committed_total,
                                      latency_s=latency)
