"""Tests for the prefix-sharing KV cache subsystem: block hashing, the
radix-tree cache (match/acquire/insert/release/evict), ref-counted shared
pages in the KV manager, scheduler/engine integration, chat and
shared-prefix workload generators, cache-aware admission, double-free
detection, zero-token page probes, and page-conservation invariants under
alloc/free/evict/preempt interleavings."""

import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ContinuousBatchingScheduler,
    PagedKVCacheManager,
    PrefixCache,
    Request,
    RequestState,
    SCHEDULING_PRESETS,
    SchedulingConfig,
    ServingEngine,
    SYSTEM_PRESETS,
    get_policy,
    get_system,
    make_chat_workload,
    make_shared_prefix_workload,
    make_uniform_workload,
    prompt_block_keys,
)


@pytest.fixture(scope="module")
def llama7b():
    return get_config("llama-2-7b")


def _manager(model, system="qserve-w4a8kv4-chn", capacity_gib=10.0,
             page_size=16):
    return PagedKVCacheManager(model=model, system=get_system(system),
                               capacity_bytes=capacity_gib * (1 << 30),
                               page_size=page_size, max_seq_len=1536)


def _request(rid, segments, output_len=8, arrival=0.0):
    return Request(request_id=rid,
                   prompt_len=sum(length for _, length in segments),
                   output_len=output_len, arrival_time=arrival,
                   prompt_segments=tuple(segments))


def _engine(llama7b, **kwargs):
    return ServingEngine(llama7b, A100, SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         **kwargs)


# ----------------------------------------------------------------------
# Block keys
# ----------------------------------------------------------------------
def test_block_keys_shared_prefix_and_divergence():
    a = _request(0, [(1, 64), (2, 32)])     # 96 tokens = 6 blocks @ 16
    b = _request(1, [(1, 64), (3, 32)])     # same 64-token prefix, then diverges
    ka, kb = prompt_block_keys(a, 16), prompt_block_keys(b, 16)
    assert len(ka) == len(kb) == 6
    assert ka[:4] == kb[:4]                 # blocks covering content id 1
    assert ka[4:] != kb[4:]                 # divergent content
    assert len(set(ka)) == 6                # chained keys are position-unique


def test_block_keys_partial_block_and_no_segments():
    aligned = _request(0, [(1, 32)])
    ragged = _request(1, [(1, 32), (2, 7)])  # 39 tokens: trailing partial block
    assert len(prompt_block_keys(aligned, 16)) == 2
    assert prompt_block_keys(ragged, 16)[:2] == prompt_block_keys(aligned, 16)
    assert len(prompt_block_keys(ragged, 16)) == 2   # partial block excluded
    no_segments = Request(request_id=2, prompt_len=64, output_len=4)
    assert prompt_block_keys(no_segments, 16) == []
    short = _request(3, [(1, 10)])           # shorter than one block
    assert prompt_block_keys(short, 16) == []


def test_block_keys_offset_sensitive():
    # The same content id at a different block offset must not collide.
    a = _request(0, [(1, 32)])
    b = _request(1, [(2, 16), (1, 16)])
    assert prompt_block_keys(a, 16)[0] != prompt_block_keys(b, 16)[0]


# ----------------------------------------------------------------------
# KV manager satellites: zero-token probes and double-free detection
# ----------------------------------------------------------------------
def test_zero_token_probe_costs_zero_pages(llama7b):
    paged = _manager(llama7b, "qserve-w4a8kv4-chn")
    non_paged = _manager(llama7b, "quarot-w4a4")
    assert paged.pages_for_tokens(0) == 0
    assert non_paged.pages_for_tokens(0) == 0       # regression: was max_seq_len
    # Non-zero probes on non-paged systems still reserve the full sequence.
    assert non_paged.pages_for_tokens(1) == non_paged.pages_for_tokens(1000)


def test_free_distinguishes_double_free_from_unknown(llama7b):
    mgr = _manager(llama7b)
    mgr.allocate(0, 100)
    assert mgr.free(0) > 0
    assert mgr.double_free_count == 0
    assert mgr.free(0) == 0                     # pages already released
    assert mgr.double_free_count == 1
    assert mgr.free(42) == 0                    # never allocated: legitimate
    assert mgr.double_free_count == 1
    # Reallocation clears the freed mark (preempt -> readmit -> finish).
    mgr.allocate(0, 50)
    assert mgr.free(0) > 0
    assert mgr.double_free_count == 1


def test_shared_page_pool_accounting(llama7b):
    mgr = _manager(llama7b)
    mgr.allocate(0, 64)                         # 4 private pages
    assert mgr.used_pages == 4
    mgr.convert_private_to_shared(0)
    mgr.convert_private_to_shared(0)
    assert mgr.shared_pages == 2
    assert mgr.used_pages == 4                  # ownership move, not growth
    assert mgr.pages_allocated_total == 4 and mgr.pages_freed_total == 0
    # A request whose leading pages are shared allocates only the remainder.
    assert mgr.pages_needed(1, 64, shared_pages=2) == 2
    assert mgr.allocate(1, 64, shared_pages=2) == 2
    mgr.drop_private_page(1)                    # dedup against a shared copy
    assert mgr.pages_freed_total == 1
    mgr.release_shared_page()
    assert mgr.shared_pages == 1
    assert mgr.pages_allocated_total - mgr.pages_freed_total == mgr.used_pages
    with pytest.raises(ValueError):
        mgr.convert_private_to_shared(99)
    with pytest.raises(ValueError):
        mgr.drop_private_page(99)
    empty = _manager(llama7b)
    with pytest.raises(ValueError):
        empty.release_shared_page()


# ----------------------------------------------------------------------
# PrefixCache unit behaviour
# ----------------------------------------------------------------------
def test_match_insert_reuse_cycle(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    first = _request(0, [(1, 64), (2, 32)])
    nodes, tokens = cache.match(first)
    assert nodes == [] and tokens == 0          # cold cache
    mgr.allocate(0, first.prompt_len)
    cache.acquire(first, nodes)
    cache.insert(first)                         # publish all 6 blocks
    assert cache.cached_pages == 6
    assert mgr.shared_pages == 6
    assert first.shared_kv_pages == 6
    # A same-prefix request hits the 4 blocks of content id 1.
    second = _request(1, [(1, 64), (3, 32)])
    nodes, tokens = cache.match(second)
    assert len(nodes) == 4 and tokens == 64
    cache.acquire(second, nodes)
    assert second.cached_tokens == 64
    assert cache.total_ref_count == 6 + 4
    cache.release(0)
    cache.release(1)
    assert cache.total_ref_count == 0
    assert cache.cached_pages == 6              # blocks stay for future hits


def test_full_aligned_match_recomputes_last_block(llama7b):
    """A fully cached, block-aligned prompt still prefills its last block:
    the final prompt token must be computed to produce the first logits."""
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    first = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(first, [])
    cache.insert(first)
    twin = _request(1, [(1, 64)])
    nodes, tokens = cache.match(twin)
    assert len(nodes) == 3 and tokens == 48     # 4 cached, 3 served
    assert cache.lookup_tokens(twin) == 48


def test_insert_dedups_concurrent_prefills(llama7b):
    """Two same-content requests prefilled concurrently: the second insert
    drops its private duplicate pages and references the published blocks."""
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    a, b = _request(0, [(1, 64)]), _request(1, [(1, 64)])
    mgr.allocate(0, 64)
    mgr.allocate(1, 64)
    cache.acquire(a, [])
    cache.acquire(b, [])
    cache.insert(a)
    used_before = mgr.used_pages
    cache.insert(b)
    assert cache.stats.deduped_pages == 4
    assert cache.cached_pages == 4              # no duplicate nodes
    assert mgr.used_pages == used_before - 4    # duplicates were freed
    assert b.shared_kv_pages == 4
    assert cache.total_ref_count == 8


def test_lru_eviction_leaves_first_and_protect(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    old = _request(0, [(1, 32)])
    new = _request(1, [(2, 32)])
    for request in (old, new):
        mgr.allocate(request.request_id, 32)
        cache.acquire(request, [])
        cache.insert(request)
    cache.release(0)
    cache.release(1)
    cache.match(new)                            # refresh "new"'s recency
    assert cache.evict(2) == 2
    assert cache.lookup_tokens(_request(2, [(1, 32), (3, 16)])) == 0  # old gone
    assert cache.lookup_tokens(_request(3, [(2, 32), (3, 16)])) == 32  # new kept
    # Protected nodes survive even as LRU candidates.
    nodes, _ = cache.match(_request(4, [(2, 32), (3, 16)]))
    assert cache.evict(10, protect=nodes) == 0
    assert cache.cached_pages == 2


def test_referenced_blocks_never_evicted(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    holder = _request(0, [(1, 64)])
    mgr.allocate(0, 64)
    cache.acquire(holder, [])
    cache.insert(holder)
    assert cache.evict(100) == 0                # every block referenced
    cache.release(0)
    assert cache.evict(100) == 4                # now reclaimable, leaf-first
    assert cache.cached_pages == 0
    assert mgr.shared_pages == 0


# ----------------------------------------------------------------------
# Scheduler integration
# ----------------------------------------------------------------------
def test_admission_skips_prefill_for_cached_prefix(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8,
                                        prefix_cache=cache)
    warm = _request(0, [(1, 64), (2, 32)])
    sched.submit([warm])
    sched.admit(now=0.0)
    assert warm.prefill_target == 96            # cold cache: full prompt
    sched.complete_prefill(now=1.0)
    for step in range(warm.output_len):
        sched.record_decode_step(now=2.0 + step)
    assert warm.state is RequestState.FINISHED
    hit = _request(1, [(1, 64), (3, 32)], arrival=5.0)
    sched.submit([hit])
    sched.admit(now=5.0)
    assert hit.cached_tokens == 64
    assert hit.prefill_target == 32             # only the cold suffix
    assert hit.shared_kv_pages == 4
    # Private pages cover just the suffix: 6 total - 4 shared.
    assert mgr.pages_needed(1, hit.prompt_len + hit.output_len, 4) <= 2


def test_preemption_releases_refs_and_rematches(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    sched = ContinuousBatchingScheduler(kv_manager=mgr, max_num_seqs=8,
                                        policy=get_policy("fcfs"),
                                        preemption=True, prefix_cache=cache)
    victim = _request(0, [(1, 64), (2, 32)], output_len=16)
    sched.submit([victim])
    sched.admit(now=0.0)
    sched.complete_prefill(now=1.0)
    assert victim.shared_kv_pages == 6
    sched._preempt(victim)
    assert victim.cached_tokens == 0 and victim.shared_kv_pages == 0
    assert cache.total_ref_count == 0
    assert cache.cached_pages == 6              # blocks survive the preemption
    # Readmission hits its own published prefix; only the cold tail (partial
    # prompt block + generated tokens) is recomputed.
    sched.admit(now=2.0)
    assert victim.state is RequestState.PREFILLING
    assert victim.cached_tokens == 80           # 5 complete blocks of 6
    assert victim.prefill_target == victim.context_len - 80
    assert sched.recomputed_prefill_tokens == victim.prefill_target
    assert mgr.double_free_count == 0


# ----------------------------------------------------------------------
# Engine-level behaviour
# ----------------------------------------------------------------------
def test_shared_prefix_workload_hits_and_improves_ttft(llama7b):
    engine = _engine(llama7b, max_seq_len=1024)
    workload = make_shared_prefix_workload(16, shared_prefix_len=512,
                                           unique_len=96, output_len=32,
                                           arrival_rate=20.0, seed=2)
    base = engine.serve(workload.copy_fresh(), max_num_seqs=16,
                        scheduling=SCHEDULING_PRESETS["chunked"])
    cached = engine.serve(workload.copy_fresh(), max_num_seqs=16,
                          scheduling=SCHEDULING_PRESETS["prefix"])
    assert cached.num_finished == base.num_finished == 16
    assert cached.generated_tokens == base.generated_tokens
    assert cached.prefix_stats is not None
    assert cached.saved_prefill_tokens > 0
    assert cached.cache_hit_rate > 0.5          # 15 of 16 requests hit 512/608
    assert cached.metrics.ttft.mean < base.metrics.ttft.mean
    assert cached.total_time_s < base.total_time_s


def test_chat_workload_multi_turn_hit_rate_grows(llama7b):
    engine = _engine(llama7b, max_seq_len=4096)
    workload = make_chat_workload(num_sessions=4, turns_per_session=5,
                                  system_prompt_len=256, user_len=48,
                                  assistant_len=96, think_time_s=8.0, seed=3)
    result = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                          scheduling=SCHEDULING_PRESETS["prefix"])
    assert result.num_finished == 20
    assert result.cache_hit_rate > 0.4
    # Histories grow: each session's last turn dwarfs its first.
    first_turns = [r for i, r in enumerate(workload.requests) if i % 5 == 0]
    assert all(r.prompt_len < workload.requests[i * 5 + 4].prompt_len
               for i, r in enumerate(first_turns))


def test_prefix_caching_off_is_bitwise_identical(llama7b):
    """Acceptance: with prefix caching disabled (default presets) the serving
    loop's outputs are bitwise-identical to the pre-cache code paths, and a
    cache enabled on segment-less prompts changes nothing either."""
    engine = _engine(llama7b, max_seq_len=1536)
    workload = make_uniform_workload(8, prompt_len=512, output_len=64,
                                     arrival_rate=30.0, seed=7)
    off = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                       scheduling=SCHEDULING_PRESETS["chunked"])
    on_no_segments = engine.serve(workload.copy_fresh(), max_num_seqs=8,
                                  scheduling=SCHEDULING_PRESETS["prefix"])
    assert on_no_segments.total_time_s == off.total_time_s
    assert on_no_segments.num_iterations == off.num_iterations
    assert on_no_segments.generated_tokens == off.generated_tokens
    assert on_no_segments.metrics.ttft.p95 == off.metrics.ttft.p95
    assert on_no_segments.saved_prefill_tokens == 0


def test_prefix_caching_requires_paged_kv(llama7b):
    engine = ServingEngine(llama7b, A100, SYSTEM_PRESETS["quarot-w4a4"],
                           max_seq_len=1536)
    with pytest.raises(ValueError, match="paged"):
        engine.serve(make_uniform_workload(1, 64, 8),
                     scheduling=SCHEDULING_PRESETS["prefix"])


def test_cache_aware_policy_prioritizes_warm_requests(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    warm_content = _request(0, [(1, 64), (2, 32)])
    mgr.allocate(0, 96)
    cache.acquire(warm_content, [])
    cache.insert(warm_content)
    cache.release(0)
    mgr.free(0)
    policy = get_policy("cache-aware")
    policy.prefix_cache = cache
    cold = _request(1, [(3, 64), (4, 32)], arrival=0.0)
    warm = _request(2, [(1, 64), (5, 32)], arrival=1.0)   # later but cached
    assert [r.request_id
            for r in policy.admission_order([cold, warm])] == [2, 1]
    # Victim order evicts the least-cached request first.
    assert policy.victim_order([cold, warm])[0] is cold


def test_eviction_under_page_pressure_end_to_end(llama7b, monkeypatch):
    """Under a tight page budget, cached-but-unreferenced blocks are evicted
    (LRU) to admit new prefixes instead of blocking or preempting."""
    engine = _engine(llama7b, max_seq_len=1024)
    pages = 64 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages)
    workload = make_shared_prefix_workload(12, shared_prefix_len=256,
                                           unique_len=64, output_len=16,
                                           num_prefix_groups=6,
                                           arrival_rate=2.0, seed=4)
    result = engine.serve(workload, max_num_seqs=2,
                          scheduling=SCHEDULING_PRESETS["prefix"])
    assert result.num_finished == 12
    assert result.prefix_stats.evicted_pages > 0
    assert result.kv_utilization_peak > 0.5


# ----------------------------------------------------------------------
# Conservation under the full lifecycle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset,pages,max_seqs,think_s", [
    ("prefix", 160, 4, 4.0),
    ("prefix-aware", 160, 4, 4.0),
    # Optimistic admission + a tight budget: evictions *and* preemptions.
    ("prefix-preempt", 120, 12, 0.5),
])
def test_page_conservation_through_full_lifecycle(llama7b, monkeypatch, preset,
                                                  pages, max_seqs, think_s):
    """Acceptance: alloc/free/evict/preempt interleavings end with
    ``pages_allocated_total - pages_freed_total == used_pages`` and every
    block refcount at zero after drain."""
    from repro.serving import EngineStepper

    engine = _engine(llama7b, max_seq_len=4096)
    # The budget admits every request alone, but the sessions' cached
    # histories (~560 distinct blocks) cannot all stay resident — the run
    # must evict, and under the preempt preset also preempt.
    capacity = pages * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: capacity)
    workload = make_chat_workload(num_sessions=6, turns_per_session=4,
                                  system_prompt_len=256, user_len=48,
                                  assistant_len=96, think_time_s=think_s,
                                  seed=5)
    stepper = EngineStepper(engine, scheduling=SCHEDULING_PRESETS[preset],
                            max_num_seqs=max_seqs)
    stepper.submit(workload.requests)
    stepper.run()
    result = stepper.result(workload)
    assert result.num_finished == 24
    assert result.prefix_stats.evicted_pages > 0
    if preset == "prefix-preempt":
        assert result.num_preemptions > 0
    kv = stepper.scheduler.kv_manager
    cache = stepper.prefix_cache
    # Conservation: what is still allocated is exactly the cached blocks.
    assert kv.pages_allocated_total - kv.pages_freed_total == kv.used_pages
    assert kv.used_pages == kv.shared_pages == cache.cached_pages
    assert cache.total_ref_count == 0
    assert kv.double_free_count == 0
    # Draining the cache returns the manager to empty, counters balanced.
    cache.clear()
    assert kv.used_pages == 0
    assert kv.pages_allocated_total == kv.pages_freed_total > 0


def test_hopeless_request_does_not_flush_cache(llama7b, monkeypatch):
    """Regression: a request that could never be admitted (footprint larger
    than the whole KV cache) must not trigger eviction of shared blocks on
    every admit pass — that would destroy reuse for everyone else."""
    engine = _engine(llama7b, max_seq_len=4096)
    pages = 200 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages)
    workload = make_shared_prefix_workload(16, shared_prefix_len=512,
                                           unique_len=96, output_len=32,
                                           arrival_rate=5.0, seed=8)
    baseline = engine.serve(workload.copy_fresh(), max_num_seqs=4,
                            scheduling=SCHEDULING_PRESETS["prefix"])
    # Same traffic plus one hopeless request arriving early.
    poisoned = workload.copy_fresh()
    poisoned.requests.append(
        Request(request_id=99, prompt_len=4000, output_len=200,
                arrival_time=0.05))
    result = engine.serve(poisoned, max_num_seqs=4,
                          scheduling=SCHEDULING_PRESETS["prefix"])
    assert result.num_unserved == 1
    assert result.num_finished == 16
    # Reuse survives: hit rate within noise of the clean run.
    assert result.cache_hit_rate > 0.9 * baseline.cache_hit_rate > 0


def test_evictable_pages_respects_pins(llama7b):
    mgr = _manager(llama7b)
    cache = PrefixCache(mgr)
    base = _request(0, [(1, 32)])                 # 2 blocks: A -> B
    extended = _request(1, [(1, 32), (2, 32)])    # 4 blocks: A -> B -> C -> D
    for request in (base, extended):
        mgr.allocate(request.request_id, request.prompt_len)
        cache.acquire(request, cache.match(request)[0])
        cache.insert(request)
    cache.release(1)
    # Request 0 still pins A and B; only the C -> D tail is reclaimable.
    assert cache.evictable_pages() == 2
    protect = cache._request_blocks[0]
    assert cache.evictable_pages(protect) == 2
    cache.release(0)
    assert cache.evictable_pages() == 4
    # Protecting the matched A -> B -> C chain leaves only the D leaf.
    assert cache.evictable_pages(cache.match(extended)[0]) == 1


def test_summary_text_reports_gauges(llama7b):
    engine = _engine(llama7b, max_seq_len=1024)
    workload = make_shared_prefix_workload(6, shared_prefix_len=256,
                                           unique_len=64, output_len=16)
    result = engine.serve(workload, max_num_seqs=6,
                          scheduling=SCHEDULING_PRESETS["prefix"])
    text = result.summary_text()
    assert "KV utilization" in text
    assert "prefix cache: hit rate" in text
    assert "TTFT" in text and "TPOT" in text
    # Without caching the hit-rate gauge is absent but KV utilization stays.
    plain = engine.serve(workload.copy_fresh(), max_num_seqs=6)
    plain_text = plain.summary_text()
    assert "KV utilization" in plain_text
    assert "prefix cache" not in plain_text


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def test_shared_prefix_workload_structure():
    wl = make_shared_prefix_workload(8, shared_prefix_len=128, unique_len=32,
                                     num_prefix_groups=2, seed=1)
    assert len(wl) == 8
    groups = {r.prompt_segments[0][0] for r in wl.requests}
    assert len(groups) == 2
    uniques = [r.prompt_segments[1][0] for r in wl.requests]
    assert len(set(uniques)) == 8               # suffixes never collide
    for request in wl.requests:
        assert request.prompt_len == 160
        assert sum(length for _, length in request.prompt_segments) == 160


def test_chat_workload_structure():
    wl = make_chat_workload(num_sessions=3, turns_per_session=4,
                            system_prompt_len=128, user_len=32,
                            assistant_len=64, think_time_s=5.0, seed=9)
    assert len(wl) == 12
    for s in range(3):
        turns = wl.requests[s * 4:(s + 1) * 4]
        arrivals = [r.arrival_time for r in turns]
        assert arrivals == sorted(arrivals)
        lengths = [r.prompt_len for r in turns]
        assert lengths == sorted(lengths) and lengths[0] < lengths[-1]
        # Every turn's prompt extends the previous turn's prompt segments.
        for prev, cur in zip(turns, turns[1:]):
            assert cur.prompt_segments[:len(prev.prompt_segments)] == \
                prev.prompt_segments
        # All sessions share one system prompt segment.
        assert turns[0].prompt_segments[0] == wl.requests[0].prompt_segments[0]
    unique_systems = make_chat_workload(num_sessions=2, turns_per_session=1,
                                        shared_system_prompt=False, seed=1)
    first, second = unique_systems.requests
    assert first.prompt_segments[0][0] != second.prompt_segments[0][0]


def test_chat_workload_copy_fresh_preserves_segments():
    wl = make_chat_workload(num_sessions=1, turns_per_session=2, seed=0)
    copy = wl.copy_fresh()
    assert [r.prompt_segments for r in copy.requests] == \
        [r.prompt_segments for r in wl.requests]


def test_request_segment_validation():
    with pytest.raises(ValueError, match="sum to prompt_len"):
        Request(request_id=0, prompt_len=100, output_len=4,
                prompt_segments=((1, 64),))
    with pytest.raises(ValueError):
        make_shared_prefix_workload(0)
    with pytest.raises(ValueError):
        make_chat_workload(num_sessions=0)
    with pytest.raises(ValueError):
        make_chat_workload(think_time_s=-1.0)
