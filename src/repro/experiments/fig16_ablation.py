"""Figure 16 — ablation of the QoQ techniques.

Starting from W8A8KV8 round-to-nearest, techniques are added one at a time in
the paper's order; for every stage the experiment reports (a) perplexity,
(b) end-to-end serving throughput on L40S at batch 64, and (c) the GPU memory
consumed by weights and KV cache — the three panels of Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.accuracy_common import AccuracySetup, build_setup
from repro.experiments.runner import ExperimentReport
from repro.gpu import L40S
from repro.model import get_config
from repro.qoq import QoQConfig, quantize_model_qoq
from repro.serving import SYSTEM_PRESETS, measure_throughput

__all__ = ["run", "ablation_stages", "AblationStage"]


@dataclass(frozen=True)
class AblationStage:
    """One cumulative stage of the Figure 16 ablation."""

    label: str
    config: QoQConfig
    #: Serving-system preset used for the throughput / memory panels.
    system: str

    def serving_system(self):
        """System config matching this stage's weight/KV precision.

        The preset supplies the GEMM dataflow; the attention kernel and
        memory precisions follow the stage (KV8 stages use the TensorRT-LLM
        KV8 kernel, KV4 stages use QServe's).
        """
        from dataclasses import replace as _replace
        base = SYSTEM_PRESETS[self.system]
        kv_bits = self.config.kv_bits
        kernel = "kv4-qserve" if kv_bits == 4 else ("kv8-trt" if kv_bits == 8 else "kv16")
        return _replace(base, kv_bits=kv_bits, attention_kernel=kernel,
                        weight_bits=float(self.config.weight_bits),
                        kv_param_overhead=8.0 if kv_bits == 4 else 0.0)


def ablation_stages(group_size: int = 128) -> List[AblationStage]:
    """The cumulative stages of Figure 16, in order."""
    off = dict(enable_rotation=False, enable_smoothing=False,
               enable_smooth_attention=False, enable_reorder=False,
               enable_clipping=False)
    stages = [
        AblationStage("8-bit Quant. (W8A8KV8)",
                      QoQConfig(weight_bits=8, kv_bits=8, group_size=None, **off),
                      "trt-w8a8"),
        AblationStage("+ 4-bit Weight Quant. (W4A8KV8)",
                      QoQConfig(weight_bits=4, kv_bits=8, group_size=None, **off),
                      "qserve-w4a8kv4-chn"),
        AblationStage("+ Block Rotation and Smoothing",
                      QoQConfig(weight_bits=4, kv_bits=8, group_size=None,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=False,
                                enable_reorder=False, enable_clipping=False),
                      "qserve-w4a8kv4-chn"),
        AblationStage("+ Block-MSE-based Weight Clip",
                      QoQConfig(weight_bits=4, kv_bits=8, group_size=None,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=False,
                                enable_reorder=False, enable_clipping=True),
                      "qserve-w4a8kv4-chn"),
        AblationStage("+ 4-bit KV Quant. (W4A8KV4)",
                      QoQConfig(weight_bits=4, kv_bits=4, group_size=None,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=False,
                                enable_reorder=False, enable_clipping=True),
                      "qserve-w4a8kv4-chn"),
        AblationStage("+ SmoothAttention",
                      QoQConfig(weight_bits=4, kv_bits=4, group_size=None,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=True,
                                enable_reorder=False, enable_clipping=True),
                      "qserve-w4a8kv4-chn"),
        AblationStage("+ Progressive Group Quant.",
                      QoQConfig(weight_bits=4, kv_bits=4, group_size=group_size,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=True,
                                enable_reorder=False, enable_clipping=True),
                      "qserve-w4a8kv4-grp"),
        AblationStage("+ Activation-aware Reorder",
                      QoQConfig(weight_bits=4, kv_bits=4, group_size=group_size,
                                enable_rotation=True, enable_smoothing=True,
                                enable_smooth_attention=True,
                                enable_reorder=True, enable_clipping=True),
                      "qserve-w4a8kv4-grp"),
    ]
    return stages


def run(scale: str = "tiny", seed: int = 0, batch: int = 64,
        throughput_model: str = "llama-2-7b",
        setup: Optional[AccuracySetup] = None) -> ExperimentReport:
    """Run the ablation; perplexity on the synthetic model, throughput on L40S."""
    setup = setup or build_setup(scale, seed=seed)
    serving_model = get_config(throughput_model)
    report = ExperimentReport(
        experiment_id="fig16",
        title="QoQ technique ablation: perplexity, L40S throughput, GPU memory",
        headers=["Stage", "Perplexity", "Throughput (tok/s)",
                 "Weight mem (GB)", "KV mem/token (KB)"],
        notes=(f"accuracy scale={setup.scale}; throughput/memory computed for "
               f"{throughput_model} at batch {batch} on L40S."),
    )
    for stage in ablation_stages(group_size=setup.group_size):
        result = quantize_model_qoq(setup.model, setup.calibration, stage.config)
        ppl = setup.perplexity(result.model, result.forward_config)
        system = stage.serving_system()
        throughput = measure_throughput(serving_model, L40S, system, batch=batch)
        weight_gb = serving_model.weight_bytes(stage.config.weight_bits) / (1 << 30)
        kv_kb = serving_model.kv_bytes_per_token(stage.config.kv_bits) / 1024.0
        report.add_row(stage.label, ppl, throughput.tokens_per_second,
                       weight_gb, kv_kb)
    return report


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text("{:.3f}"))
